#!/usr/bin/env python3
"""VLAN segmentation as an ARP-poisoning blast-radius control.

The same guest-attacker, two network designs:

* flat LAN — the guest poisons an engineering workstation's idea of the
  file server and relays the session;
* segmented LAN (engineering on VLAN 10, guests on VLAN 20) — the same
  forged frames never leave the guest VLAN, because ARP is a broadcast
  protocol and the broadcast domain just shrank.

Run:  python examples/vlan_segmentation.py
"""

from __future__ import annotations

from repro import Lan, Simulator
from repro.attacks import MitmAttack
from repro.stack import WINDOWS_XP


def build(segmented: bool):
    sim = Simulator(seed=404)
    lan = Lan(sim)
    workstation = lan.add_host("workstation", profile=WINDOWS_XP)
    fileserver = lan.add_host("fileserver")
    guest = lan.add_host("guest")
    if segmented:
        switch = lan.switch
        switch.set_access_port(lan.port_of("gateway"), 10)
        switch.set_access_port(lan.port_of("workstation"), 10)
        switch.set_access_port(lan.port_of("fileserver"), 10)
        switch.set_access_port(lan.port_of("guest"), 20)
    return sim, lan, workstation, fileserver, guest


def run(segmented: bool) -> None:
    label = "VLAN-segmented" if segmented else "flat"
    sim, lan, workstation, fileserver, guest = build(segmented)

    # The workstation works against the file server all day.
    replies = []
    cancel = sim.call_every(
        0.5,
        lambda: workstation.ping(fileserver.ip, on_reply=lambda s, r: replies.append(s)),
    )
    sim.run(until=5.0)

    mitm = MitmAttack(guest, workstation, fileserver)
    mitm.start()
    sim.run(until=20.0)
    mitm.stop()
    cancel()

    poisoned = workstation.arp_cache.get(fileserver.ip, sim.now) == guest.mac
    print(f"=== {label} LAN ===")
    print(f"  workstation->fileserver replies: {len(replies)}")
    print(f"  workstation poisoned: {poisoned}")
    print(f"  session packets relayed through the guest: {mitm.frames_relayed}")
    print()
    if segmented:
        assert not poisoned and mitm.frames_relayed == 0
    else:
        assert poisoned and mitm.frames_relayed > 0


def main() -> None:
    run(segmented=False)
    run(segmented=True)
    print("Segmentation did not *fix* ARP — it shrank the set of machines")
    print("that can lie to each other. The guest VLAN is still poisonable")
    print("from inside the guest VLAN.")


if __name__ == "__main__":
    main()
