#!/usr/bin/env python3
"""DHCP abuse lab: starvation + rogue server, with and without DAI.

Phase 1 (undefended): Mallory starves the gateway's DHCP pool, brings up
a rogue DHCP server advertising herself as the default gateway, and a
newcomer laptop binds straight into her hands.

Phase 2 (DHCP snooping + Dynamic ARP Inspection): the switch drops the
rogue server's messages at the access port, the legitimate pool recovers
as fake leases expire, and the newcomer binds to the real gateway.

Run:  python examples/dhcp_dai_lab.py
"""

from __future__ import annotations

from repro import Lan, Simulator
from repro.attacks import DhcpStarvation, RogueDhcpServer
from repro.schemes import make_scheme
from repro.stack import DhcpClient


def run(defended: bool) -> None:
    label = "DAI + DHCP snooping" if defended else "undefended"
    print(f"=== {label} ===")
    sim = Simulator(seed=99)
    lan = Lan(sim, network="10.0.3.0/24")
    server = lan.enable_dhcp(pool_start=100, pool_end=119, lease_time=30.0)
    mallory = lan.add_host("mallory")

    scheme = None
    if defended:
        scheme = make_scheme("dai")
        scheme.install(lan, protected=[lan.gateway, mallory])

    starve = DhcpStarvation(mallory, rate_per_second=25, greedy=True)
    rogue = RogueDhcpServer(mallory, lan.network, pool_start=200, pool_end=220)
    starve.start()
    rogue.start()
    sim.run(until=15.0)
    starve.stop()
    print(f"  after starvation: pool free={server.free_addresses}/20 "
          f"(fake leases captured: {starve.leases_captured})")

    laptop = lan.add_dhcp_host("laptop")
    client = DhcpClient(laptop, retry_timeout=5.0, max_retries=8)
    client.start()
    sim.run(until=60.0)
    rogue.stop()

    print(f"  newcomer bound: ip={laptop.ip} gateway={laptop.gateway}")
    if laptop.gateway == mallory.ip:
        print("  -> VICTIM: default gateway is the attacker; "
              "all off-LAN traffic transits Mallory")
    elif laptop.gateway == lan.gateway.ip:
        print("  -> SAFE: bound to the legitimate gateway")
    if scheme is not None:
        print(f"  DAI: rogue DHCP messages dropped={scheme.rogue_dhcp_drops}, "
              f"leases snooped={scheme.leases_snooped}")
        for alert in scheme.alerts[:3]:
            print(f"    {alert}")
    print()


def main() -> None:
    run(defended=False)
    run(defended=True)


if __name__ == "__main__":
    main()
