#!/usr/bin/env python3
"""The full analysis, end to end: every scheme against every variant.

Regenerates the paper's two headline tables — the qualitative comparison
matrix (Table 1) and the measured effectiveness matrix (Table 2) — plus
the false-positive table (Table 3) for the detection schemes, exactly as
the benchmark suite does, but as one readable report.

Run:  python examples/scheme_shootout.py          (~30 s)
"""

from __future__ import annotations

from repro import table_1_criteria, table_2_effectiveness, table_3_false_positives
from repro.core.experiment import ScenarioConfig


def main() -> None:
    print(table_1_criteria().rendered)
    print()

    config = ScenarioConfig(n_hosts=4, warmup=3.0, attack_duration=20.0, cooldown=2.0)
    print(table_2_effectiveness(config=config).rendered)
    print()

    detectors = ("arpwatch", "snort-arpspoof", "active-probe", "middleware", "hybrid")
    print(table_3_false_positives(schemes=detectors, duration=900.0).rendered)
    print()
    print(
        "Reading the tables together: crypto (S-ARP/TARP) and switch (DAI)\n"
        "schemes prevent everything but demand infrastructure; kernel patches\n"
        "protect warm caches cheaply; port security stops MAC games but not\n"
        "ARP lies; passive monitors detect but cry wolf under churn — and the\n"
        "hybrid detector keeps the coverage while silencing the false alarms."
    )


if __name__ == "__main__":
    main()
