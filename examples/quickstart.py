#!/usr/bin/env python3
"""Quickstart: poison a LAN, watch the hybrid detector catch it.

Builds the standard testbed (switch + gateway + monitor on a mirror
port), lets a victim talk to the gateway, launches an ARP-poisoning
man-in-the-middle, and prints what the monitor saw.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Lan, Simulator
from repro.attacks import MitmAttack
from repro.schemes import make_scheme
from repro.stack import WINDOWS_XP


def main() -> None:
    sim = Simulator(seed=2026)
    lan = Lan(sim)
    lan.add_monitor()

    victim = lan.add_host("victim", profile=WINDOWS_XP)
    mallory = lan.add_host("mallory")

    detector = make_scheme("hybrid")
    detector.install(
        lan, protected=[victim, lan.gateway, lan.monitor]
    )

    # Normal life: the victim pings its gateway every half second.
    sim.call_every(0.5, lambda: victim.ping(lan.gateway.ip))
    sim.run(until=10.0)

    print(f"[t={sim.now:5.1f}s] victim's idea of the gateway: "
          f"{victim.arp_cache.get(lan.gateway.ip, sim.now)} (truth: {lan.gateway.mac})")

    # Enter Mallory.
    mitm = MitmAttack(mallory, victim, lan.gateway)
    mitm.start()
    sim.run(until=30.0)
    mitm.stop()
    sim.run(until=32.0)

    print(f"[t={sim.now:5.1f}s] victim's idea of the gateway: "
          f"{victim.arp_cache.get(lan.gateway.ip, sim.now)} (mallory is {mallory.mac})")
    print(f"packets relayed through mallory: {mitm.frames_relayed}")
    print()
    print("monitor alerts:")
    for alert in detector.alerts:
        print(f"  {alert}")

    confirmed = [a for a in detector.alerts if a.kind == "verified-poisoning"]
    assert confirmed, "the hybrid detector should have confirmed the attack"
    print()
    print(f"verdict: poisoning confirmed {len(confirmed)} time(s); "
          f"first at t={confirmed[0].time:.2f}s")


if __name__ == "__main__":
    main()
