#!/usr/bin/env python3
"""Eavesdropping on a 'login' session — the paper's motivating attack.

A user posts credentials to a web service behind the gateway over
plaintext UDP (standing in for pre-TLS HTTP).  Mallory ARP-poisons the
user and the gateway, relays the session so nothing looks broken, and
harvests the payloads in transit.  The script then replays the exact
same scenario with S-ARP installed and shows the harvest is empty.

Run:  python examples/mitm_eavesdropping.py
"""

from __future__ import annotations

from typing import List, Optional

from repro import Ipv4Address, Lan, Simulator
from repro.attacks import MitmAttack
from repro.packets.ipv4 import IpProto
from repro.packets.udp import UdpDatagram
from repro.schemes import make_scheme
from repro.stack import WINDOWS_XP

WEB_SERVER = Ipv4Address("93.184.216.34")
SECRET = b"POST /login user=alice&password=hunter2"


def run_session(with_scheme: Optional[str]) -> tuple[int, List[bytes], int]:
    """Returns (requests sent, payloads harvested, responses received)."""
    sim = Simulator(seed=7)
    lan = Lan(sim)
    lan.add_monitor()
    alice = lan.add_host("alice", profile=WINDOWS_XP)
    mallory = lan.add_host("mallory")

    scheme = None
    if with_scheme is not None:
        scheme = make_scheme(with_scheme)
        scheme.install(lan, protected=[alice, lan.gateway, lan.monitor])

    # Alice already talks to her gateway before the attacker shows up.
    alice.ping(lan.gateway.ip)
    sim.run(until=5.0)

    # Mallory interposes and sniffs every relayed datagram.
    harvest: List[bytes] = []

    def sniff(packet):
        if packet.proto == IpProto.UDP:
            datagram = UdpDatagram.decode(packet.payload)
            if SECRET in datagram.payload:
                harvest.append(datagram.payload)
        return None

    mitm = MitmAttack(mallory, alice, lan.gateway)
    mallory.forward_taps.append(sniff)
    mitm.start()
    sim.run(until=8.0)

    # Alice logs in to the web service, with retries, like a browser would.
    responses = []
    alice.udp_bind(40000, lambda host, src, dg: responses.append(dg.payload))
    sent = 0
    for i in range(10):
        sim.schedule(0.5 * i, lambda: alice.send_udp(WEB_SERVER, 40000, 80, SECRET))
        sent += 1
    sim.run(until=20.0)
    mitm.stop()
    return sent, harvest, len(responses)


def main() -> None:
    sent, harvest, responses = run_session(with_scheme=None)
    print("=== undefended LAN ===")
    print(f"login requests sent:       {sent}")
    print(f"responses received:        {responses}  (the session works fine!)")
    print(f"credentials harvested:     {len(harvest)}")
    if harvest:
        print(f"first captured payload:    {harvest[0].decode()!r}")
    assert harvest, "the MITM should capture the plaintext credentials"

    sent, harvest, responses = run_session(with_scheme="s-arp")
    print()
    print("=== same LAN, S-ARP deployed ===")
    print(f"login requests sent:       {sent}")
    print(f"responses received:        {responses}")
    print(f"credentials harvested:     {len(harvest)}  (mallory saw nothing)")
    assert not harvest, "S-ARP should have kept mallory out of the path"


if __name__ == "__main__":
    main()
