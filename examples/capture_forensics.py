#!/usr/bin/env python3
"""Incident response on a stored capture — detection after the fact.

A mirror-port monitor recorded everything while (a) legitimate DHCP
churn and (b) an ARP-poisoning MITM both happened.  Long after the
attacker logged off, the analyst feeds the capture to the offline
analyzer, which separates the benign rebinding (explained by a DHCP
lease it also saw in the capture) from the hostile one (a reply storm
contradicting the asset database).

Run:  python examples/capture_forensics.py
"""

from __future__ import annotations

from repro import Lan, Simulator
from repro.analysis.forensics import OfflineArpAnalyzer
from repro.attacks import MitmAttack
from repro.stack import DhcpClient, WINDOWS_XP


def main() -> None:
    sim = Simulator(seed=31337)
    lan = Lan(sim, network="10.0.3.0/24")
    monitor = lan.add_monitor()
    lan.enable_dhcp(pool_start=100, pool_end=100)  # one-address pool
    victim = lan.add_host("victim", profile=WINDOWS_XP)
    mallory = lan.add_host("mallory")

    # --- benign churn: a phone joins, leaves, and its IP is reused -----
    phone = lan.add_dhcp_host("phone")
    lease1 = DhcpClient(phone)
    lease1.start()
    sim.run(until=10.0)
    lease1.release()
    phone.nic.shut()
    tablet = lan.add_dhcp_host("tablet")
    DhcpClient(tablet).start()
    sim.run(until=20.0)

    # --- the attack: 30 seconds of MITM against the victim -------------
    victim.ping(lan.gateway.ip)
    sim.run(until=25.0)
    mitm = MitmAttack(mallory, victim, lan.gateway)
    mitm.start()
    cancel = sim.call_every(0.5, lambda: victim.ping(lan.gateway.ip))
    sim.run(until=55.0)
    mitm.stop()
    cancel()
    sim.run(until=60.0)

    capture = monitor.recorder.records
    print(f"capture: {len(capture)} frames over {sim.now:.0f}s of simulated time")
    print()

    analyzer = OfflineArpAnalyzer(
        known_bindings={victim.ip: victim.mac, lan.gateway.ip: lan.gateway.mac},
        storm_threshold=8,
    )
    summary = analyzer.analyze(capture)
    print(
        f"ARP packets: {summary.arp_packets} "
        f"({summary.arp_requests} requests / {summary.arp_replies} replies, "
        f"{summary.gratuitous} gratuitous); DHCP messages: {summary.dhcp_messages}"
    )
    print(f"stations seen: {summary.stations}; rebinding events: {summary.rebindings}")
    print()
    print("findings:")
    for finding in summary.findings:
        print(f"  {finding}")
    print()

    benign = summary.findings_of("dhcp-explained-rebinding")
    hostile = summary.findings_of("known-binding-violation")
    storms = summary.findings_of("arp-reply-storm")
    assert benign, "the phone->tablet IP reuse should be DHCP-explained"
    assert hostile and all(f.mac == mallory.mac for f in hostile)
    assert storms, "the re-poisoning loop should register as a reply storm"
    print(
        f"verdict: {len(benign)} rebinding(s) explained by DHCP; "
        f"{len(hostile)} binding violation(s) and {len(storms)} reply storm(s) "
        f"all pointing at {mallory.mac} (mallory)"
    )


if __name__ == "__main__":
    main()
