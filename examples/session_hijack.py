#!/usr/bin/env python3
"""From ARP lie to hijacked TCP session — the full kill chain.

1. Alice keeps a TCP session open to an intranet app server.
2. Mallory ARP-poisons Alice and the server and relays the session.
3. Holding live sequence numbers, Mallory injects a forged response the
   app accepts as genuine — then tears the session down with one RST.

The same run with TARP installed shows the chain severed at step 2.

Run:  python examples/session_hijack.py
"""

from __future__ import annotations

from typing import List, Optional

from repro import Lan, Simulator
from repro.attacks import MitmAttack, SessionHijacker
from repro.schemes import make_scheme
from repro.stack import TcpClient, TcpServer, WINDOWS_XP


def run(with_scheme: Optional[str]) -> None:
    label = with_scheme or "undefended"
    sim = Simulator(seed=1337)
    lan = Lan(sim)
    alice = lan.add_host("alice", profile=WINDOWS_XP)
    appserver = lan.add_host("appserver")
    mallory = lan.add_host("mallory")

    if with_scheme is not None:
        scheme = make_scheme(with_scheme)
        scheme.install(lan, protected=[alice, appserver, lan.gateway])

    TcpServer(appserver, 8443,
              on_data=lambda conn, data: conn.send(b"balance: 1,024.00 EUR"))
    screen: List[bytes] = []
    conn = TcpClient(alice).connect(
        appserver.ip, 8443,
        on_connected=lambda c: c.send(b"SHOW BALANCE"),
        on_data=lambda c, d: screen.append(d),
    )
    sim.run(until=3.0)

    mitm = MitmAttack(mallory, alice, appserver)
    mitm.start()
    hijacker = SessionHijacker(mitm)
    hijacker.start()
    sim.run(until=6.0)
    conn.send(b"SHOW BALANCE")  # routine refresh, now through Mallory
    sim.run(until=7.0)

    injected = hijacker.inject(
        alice.ip, b"SECURITY NOTICE: wire your balance to ACCT 666 today"
    )
    sim.run(until=8.0)
    reset = hijacker.reset(alice.ip)
    sim.run(until=9.0)

    print(f"=== {label} ===")
    print(f"  flows observed by hijacker: {len(hijacker.flows)}")
    print(f"  forged injection delivered: {injected}")
    print(f"  alice's screen: {[m.decode() for m in screen]}")
    print(f"  forged RST delivered: {reset}  (session state: {conn.state})")
    print()
    if with_scheme is None:
        assert any(b"ACCT 666" in m for m in screen)
        assert conn.state == "closed"
    else:
        assert not any(b"ACCT 666" in m for m in screen)
        assert conn.state == "established"


def main() -> None:
    run(None)
    run("tarp")


if __name__ == "__main__":
    main()
