"""Scheme framework: profiles, alerts, and the installable-scheme contract.

Every surveyed defense implements :class:`Scheme`.  A scheme is *installed*
into a LAN (attaching to hosts, the switch, or the monitor station,
according to its placement), raises :class:`Alert` objects when it detects
something, and reports its state/overhead footprint for the resource
table.  The qualitative comparison matrix (Table 1) is generated from the
:class:`SchemeProfile` metadata rather than hand-written prose, so the
table and the code cannot drift apart.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SchemeError
from repro.hooks import HookPoint, TeardownStack
from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.obs.registry import REGISTRY
from repro.obs.trace import TRACER
from repro.perf import PERF
from repro.stack.host import Host

__all__ = [
    "Alert",
    "Severity",
    "Coverage",
    "SchemeProfile",
    "Scheme",
    "ATTACK_VARIANTS",
]

#: The attack variants the effectiveness matrix (Table 2) distinguishes.
ATTACK_VARIANTS = (
    "reply",        # unsolicited forged replies
    "request",      # forged requests
    "gratuitous",   # broadcast gratuitous announcements
    "reactive",     # race against solicited replies
)


class Severity:
    """Alert severities."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


class Coverage:
    """Per-attack coverage levels a scheme can claim/achieve."""

    PREVENTS = "prevents"
    DETECTS = "detects"
    PARTIAL = "partial"
    NONE = "none"


@dataclass(frozen=True)
class Alert:
    """One detection event raised by a scheme.

    ``frame_id`` — when tracing is on — is the provenance id of the frame
    being processed when the alert fired; chasing its parent chain in
    ``TRACER.provenance`` leads back to the injecting workload or attack.
    """

    time: float
    scheme: str
    severity: str
    kind: str
    ip: Optional[Ipv4Address] = None
    mac: Optional[MacAddress] = None
    message: str = ""
    frame_id: Optional[int] = None

    def __str__(self) -> str:
        subject = f" {self.ip}" if self.ip is not None else ""
        suspect = f" at {self.mac}" if self.mac is not None else ""
        return (
            f"[{self.time:10.3f}] {self.scheme} {self.severity.upper()} "
            f"{self.kind}{subject}{suspect} {self.message}".rstrip()
        )


@dataclass(frozen=True)
class SchemeProfile:
    """Qualitative metadata — the raw material of the comparison matrix."""

    key: str
    display_name: str
    kind: str  # "prevention" | "detection" | "hybrid"
    placement: str  # "host" | "switch" | "monitor" | "host+server"
    requires_infra_change: bool
    requires_host_change: bool
    requires_crypto: bool
    supports_dhcp_networks: bool
    cost: str  # "free" | "low" | "medium" | "high"
    claimed_coverage: Dict[str, str] = field(default_factory=dict)
    limitations: tuple[str, ...] = ()
    reference: str = ""

    def coverage_for(self, variant: str) -> str:
        return self.claimed_coverage.get(variant, Coverage.NONE)


class Scheme(ABC):
    """An installable defense.

    Lifecycle: construct → :meth:`install` into a LAN → run traffic →
    inspect :attr:`alerts` / footprint → :meth:`uninstall`.
    """

    profile: SchemeProfile

    #: Bound on the alert-dedup table (see :meth:`raise_alert`): long
    #: campaigns churn through unbounded (kind, ip, mac) combinations,
    #: so the table is an LRU capped here; evictions are counted in
    #: ``PERF.dedup_evictions``.
    DEDUP_CAP = 1024

    def __init__(self) -> None:
        self.alerts: List[Alert] = []
        self.installed = False
        self._lan: Optional[Lan] = None
        key = getattr(type(self), "profile", None)
        self._teardowns = TeardownStack(owner=key.key if key is not None else None)
        #: Extra frames this scheme itself put on the wire (probes,
        #: key-server queries...), for the overhead figures.
        self.messages_sent = 0
        self._dedup_seen: Dict[tuple, float] = {}
        #: Alerts suppressed by dedup (still counted, like syslog's
        #: "last message repeated N times").
        self.suppressed_alerts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self, lan: Lan, protected: Optional[List[Host]] = None) -> None:
        """Attach the scheme to ``lan``.

        ``protected`` restricts host-resident schemes to a subset of
        hosts; ``None`` protects every currently addressed host (the
        attacker is excluded by experiments, which add it afterwards or
        pass an explicit list).
        """
        if self.installed:
            raise SchemeError(f"{self.profile.key} already installed")
        self._lan = lan
        self._install(lan, protected if protected is not None else self._default_hosts(lan))
        self.installed = True

    def uninstall(self) -> None:
        """Detach the scheme.  Idempotent; every teardown runs even when
        some raise (failures are isolated, counted in
        ``hook_errors_total{point="scheme.teardown"}`` and attributed to
        this scheme)."""
        if not self.installed:
            return
        self._teardowns.close()
        self.installed = False
        self._lan = None

    @staticmethod
    def _default_hosts(lan: Lan) -> List[Host]:
        return [h for h in lan.hosts.values() if h.ip is not None]

    @abstractmethod
    def _install(self, lan: Lan, protected: List[Host]) -> None:
        """Scheme-specific attachment logic."""

    def _on_teardown(self, callback) -> None:
        self._teardowns.push(callback)

    def _attach(self, point: HookPoint, fn, priority: int = 0) -> None:
        """Install ``fn`` on a hook point, owned by this scheme.

        The hook is labeled for trace spans (:meth:`_mark_hook`), its
        faults/drops are attributed to this scheme's key, and its
        removal token is registered for :meth:`uninstall`.
        """
        token = point.add(self._mark_hook(fn), priority=priority,
                          owner=self.profile.key)
        self._on_teardown(token)

    def _mark_hook(self, fn):
        """Label a guard/filter/tap callable with this scheme's key.

        The tracer reads the ``_obs_scheme`` attribute to name
        ``scheme.inspect`` spans.  Bound methods don't take attributes, so
        the label lands on the underlying function; plain callables are
        labeled directly.  Returns ``fn`` for installation chaining.
        """
        target = getattr(fn, "__func__", fn)
        try:
            target._obs_scheme = self.profile.key
        except AttributeError:  # exotic callables (partial, C func): skip
            pass
        return fn

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def raise_alert(
        self,
        time: float,
        severity: str,
        kind: str,
        ip: Optional[Ipv4Address] = None,
        mac: Optional[MacAddress] = None,
        message: str = "",
        dedup_window: float = 0.0,
        dedup_key: Optional[tuple] = None,
    ) -> Optional[Alert]:
        """Record an alert.

        With ``dedup_window > 0`` a repeat of the same ``(kind, ip, mac)``
        (or of ``dedup_key`` when given) within the window is suppressed
        (syslog-style), so re-poisoning floods page the operator once per
        window, not once per frame.  Returns ``None`` when suppressed.
        """
        if dedup_window > 0:
            key = dedup_key if dedup_key is not None else (kind, ip, mac)
            last = self._dedup_seen.get(key)
            if last is not None and time - last < dedup_window:
                self.suppressed_alerts += 1
                return None
            # LRU-bounded: refresh recency on update, evict the oldest
            # entry past DEDUP_CAP so campaigns can run indefinitely.
            if last is not None:
                del self._dedup_seen[key]
            self._dedup_seen[key] = time
            if len(self._dedup_seen) > self.DEDUP_CAP:
                del self._dedup_seen[next(iter(self._dedup_seen))]
                PERF.dedup_evictions += 1
        frame_id = TRACER.current_frame if TRACER.enabled else None
        alert = Alert(
            time=time,
            scheme=self.profile.key,
            severity=severity,
            kind=kind,
            ip=ip,
            mac=mac,
            message=message,
            frame_id=frame_id,
        )
        self.alerts.append(alert)
        REGISTRY.counter(
            "scheme_alerts_total",
            "Alerts raised, by scheme and severity",
            labels=("scheme", "severity"),
        ).labels(scheme=self.profile.key, severity=severity).inc()
        if TRACER.enabled:
            TRACER.instant(
                "scheme.alert",
                scheme=self.profile.key,
                severity=severity,
                kind=kind,
                ip=str(ip) if ip is not None else None,
                mac=str(mac) if mac is not None else None,
                frame=frame_id,
            )
        return alert

    def alerts_between(self, start: float, end: float) -> List[Alert]:
        return [a for a in self.alerts if start <= a.time < end]

    def state_size(self) -> int:
        """Number of state entries the scheme maintains (Table 4)."""
        return 0

    def __repr__(self) -> str:
        state = "installed" if self.installed else "detached"
        return f"{type(self).__name__}({self.profile.key}, {state}, alerts={len(self.alerts)})"
