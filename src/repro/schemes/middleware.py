"""Scheme 11 — host-resident middleware checker.

A userspace agent on each host that watches its *own* ARP cache (the way
a middleware layer interposed above the stack would) and screams when a
binding it relies on changes under it — especially the default gateway's.
Unlike the kernel patches it blocks nothing: the analysis classifies it
as cheap, deployable-per-host detection with the same churn-driven false
positives as any passive observer, but with perfect placement (it sees
exactly the cache the attack must corrupt, so nothing on the wire can
hide from it).
"""

from __future__ import annotations

from typing import Dict, List

from repro.l2.topology import Lan
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.stack.arp_cache import ArpCacheChange, BindingSource
from repro.stack.host import Host

__all__ = ["HostMiddleware"]

#: Binding sources a middleware agent treats as higher-risk.
_SUSPECT_SOURCES = {
    BindingSource.UNSOLICITED_REPLY,
    BindingSource.GRATUITOUS,
}


class HostMiddleware(Scheme):
    """Per-host cache-change auditor."""

    profile = SchemeProfile(
        key="middleware",
        display_name="Host middleware checker",
        kind="detection",
        placement="host",
        requires_infra_change=False,
        requires_host_change=True,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="free",
        claimed_coverage={
            "reply": Coverage.DETECTS,
            "request": Coverage.DETECTS,
            "gratuitous": Coverage.DETECTS,
            "reactive": Coverage.DETECTS,
        },
        limitations=(
            "detects after the cache is already poisoned",
            "must run on every host to protect every host",
            "churn on monitored bindings raises false alarms",
            "an agent the attacker can kill once on the host",
        ),
        reference="middleware-layer detection as analyzed in the paper's survey",
    )

    def __init__(self, alert_on_suspect_source: bool = True) -> None:
        super().__init__()
        self.alert_on_suspect_source = alert_on_suspect_source
        self.rebinds_seen = 0
        self.suspect_installs = 0
        self._watched: Dict[str, Host] = {}

    def _install(self, lan: Lan, protected: List[Host]) -> None:
        for host in protected:
            self._watched[host.name] = host
            unsubscribe = host.arp_cache.on_change(self._make_listener(host))
            self._on_teardown(unsubscribe)

    def _make_listener(self, host: Host):
        def listener(change: ArpCacheChange) -> None:
            self._on_change(host, change)

        return listener

    def _on_change(self, host: Host, change: ArpCacheChange) -> None:
        gateway_hit = host.gateway is not None and change.ip == host.gateway
        if change.is_rebinding:
            self.rebinds_seen += 1
            severity = Severity.CRITICAL if gateway_hit else Severity.WARNING
            self.raise_alert(
                time=change.time,
                severity=severity,
                kind="cache-rebinding",
                ip=change.ip,
                mac=change.new_mac,
                dedup_window=60.0,
                message=(
                    f"{host.name}: {change.old_mac} -> {change.new_mac} "
                    f"via {change.source}"
                    + (" [default gateway!]" if gateway_hit else "")
                ),
            )
            return
        if (
            self.alert_on_suspect_source
            and change.old_mac is None
            and change.source in _SUSPECT_SOURCES
        ):
            self.suspect_installs += 1
            self.raise_alert(
                time=change.time,
                severity=Severity.INFO,
                kind="suspect-binding-source",
                ip=change.ip,
                mac=change.new_mac,
                message=f"{host.name}: new entry from {change.source}",
            )

    def state_size(self) -> int:
        return len(self._watched)
