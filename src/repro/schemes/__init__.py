"""The twelve analyzed defense schemes and their common framework."""

from repro.schemes.active_probe import ActiveProbe
from repro.schemes.anticap import Anticap
from repro.schemes.antidote import Antidote
from repro.schemes.arpwatch import ArpWatch
from repro.schemes.base import (
    ATTACK_VARIANTS,
    Alert,
    Coverage,
    Scheme,
    SchemeProfile,
    Severity,
)
from repro.schemes.dai import DynamicArpInspection, SnoopedBinding
from repro.schemes.darpi import DarpiHostInspection
from repro.schemes.hybrid import HybridDetector
from repro.schemes.middleware import HostMiddleware
from repro.schemes.monitor_base import BindingDatabase, MonitorScheme, ObservedStation
from repro.schemes.port_security import PortSecurity
from repro.schemes.registry import (
    ALL_SCHEMES,
    SCHEME_FACTORIES,
    all_profiles,
    make_defense,
    make_scheme,
    make_scheme_stack,
    parse_stack,
    validate_scheme_spec,
)
from repro.schemes.sarp import SecureArp
from repro.schemes.sdn_guard import SdnArpGuard
from repro.schemes.snort import SnortArpspoof
from repro.schemes.stack import STACK_SEPARATOR, SchemeStack
from repro.schemes.static_entries import StaticArpEntries
from repro.schemes.tarp import TicketArp

__all__ = [
    "Alert",
    "Severity",
    "Coverage",
    "Scheme",
    "SchemeProfile",
    "ATTACK_VARIANTS",
    "MonitorScheme",
    "BindingDatabase",
    "ObservedStation",
    "StaticArpEntries",
    "Anticap",
    "Antidote",
    "SecureArp",
    "TicketArp",
    "PortSecurity",
    "DynamicArpInspection",
    "DarpiHostInspection",
    "SdnArpGuard",
    "SnoopedBinding",
    "ArpWatch",
    "SnortArpspoof",
    "ActiveProbe",
    "HostMiddleware",
    "HybridDetector",
    "SchemeStack",
    "STACK_SEPARATOR",
    "ALL_SCHEMES",
    "SCHEME_FACTORIES",
    "make_scheme",
    "make_scheme_stack",
    "make_defense",
    "parse_stack",
    "validate_scheme_spec",
    "all_profiles",
]
