"""Scheme 13 (extension) — ArpON-style DARPI: Dynamic ARP Inspection on hosts.

ArpON's DARPI mode (cited in the calibration as prior art the paper's
novelty is measured against) hardens each host without any kernel patch:

* inbound replies are accepted **only** if this host has an outstanding
  request for that IP (a per-host pending list with a short window);
* every other cache-affecting packet (unsolicited replies, gratuitous
  announcements, sender bindings in requests) first *clears* the cached
  entry and triggers the host's **own** fresh request — whoever answers
  that solicited request wins, so the true owner re-establishes itself.

Compared to Anticap/Antidote it never trusts history, so there is no
blacklist to weaponize and legitimate rebinding works (the new NIC
answers the verification request).  The residual weakness is the same
race the "reactive" attack exploits: an attacker fast enough to answer
the verification request still wins.

This scheme is an *extension* beyond the paper's surveyed set — it is
included because the calibration explicitly names ArpON as covering this
space, and it slots into the same analysis matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.l2.topology import Lan
from repro.net.addresses import BROADCAST_MAC, Ipv4Address
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.stack.host import Host

__all__ = ["DarpiHostInspection"]


class DarpiHostInspection(Scheme):
    """Accept solicited replies only; re-verify everything else."""

    profile = SchemeProfile(
        key="darpi",
        display_name="DARPI host inspection (ArpON-style)",
        kind="prevention",
        placement="host",
        requires_infra_change=False,
        requires_host_change=True,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="low",
        claimed_coverage={
            "reply": Coverage.PREVENTS,
            "request": Coverage.PREVENTS,
            "gratuitous": Coverage.PREVENTS,
            "reactive": Coverage.PARTIAL,  # verification race remains
        },
        limitations=(
            "an attacker who wins the verification-request race still poisons",
            "extra request/reply pair on every unsolicited sighting",
            "userspace daemon required on every host",
        ),
        reference="ArpON DARPI mode (extension beyond the paper's survey)",
    )

    def __init__(self, verify_window: float = 1.0) -> None:
        super().__init__()
        self.verify_window = verify_window
        self.verifications_sent = 0
        self.unsolicited_blocked = 0
        #: (host name, ip) -> window deadline for our own verification
        self._verifying: Dict[Tuple[str, Ipv4Address], float] = {}

    def _install(self, lan: Lan, protected: List[Host]) -> None:
        for host in protected:
            self._attach(host.arp_guards, self._make_guard())

    def _make_guard(self):
        def guard(
            host: Host, arp: ArpPacket, frame: EthernetFrame
        ) -> Optional[bool]:
            return self._guard(host, arp, frame)

        return guard

    def _guard(
        self, host: Host, arp: ArpPacket, frame: EthernetFrame
    ) -> Optional[bool]:
        if arp.spa.is_unspecified:
            return None
        solicited = host.is_resolving(arp.spa)
        if arp.is_reply and not arp.is_gratuitous and solicited:
            return None  # we asked; normal solicited processing applies
        # Keep interoperating: answer requests for our own address before
        # suppressing their (unverified) sender binding.
        if (
            arp.is_request
            and not arp.is_gratuitous
            and host.ip is not None
            and arp.tpa == host.ip
            and host.arp_responder_enabled
        ):
            reply = ArpPacket.reply(
                sha=host.mac, spa=host.ip, tha=arp.sha, tpa=arp.spa
            )
            host.send_arp(reply, dst_mac=arp.sha)
        # Anything else that could touch the cache: block it, clear any
        # existing entry, and go ask the network ourselves.
        self.unsolicited_blocked += 1
        key = (host.name, arp.spa)
        now = host.sim.now
        deadline = self._verifying.get(key)
        if deadline is None or deadline <= now:
            self._verifying[key] = now + self.verify_window
            host.arp_cache.age_out(arp.spa)
            self.verifications_sent += 1
            self.messages_sent += 1
            host.resolve(arp.spa, on_resolved=lambda mac: None)
            host.sim.schedule(
                self.verify_window,
                lambda: self._verifying.pop(key, None),
                name="darpi.window",
            )
        return False

    def state_size(self) -> int:
        return len(self._verifying)
