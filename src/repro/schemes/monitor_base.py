"""Shared plumbing for monitor-resident (sniffer) detection schemes.

These schemes deploy as the classic "IDS on a mirror port" station: the
switch copies every frame to the monitor host, whose NIC runs
promiscuously, and the scheme inspects the stream.  The base class here
handles tapping, decoding, and the IP->MAC observation database that
arpwatch-style detectors keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import CodecError, SchemeError
from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
)
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.udp import UdpDatagram
from repro.schemes.base import Scheme
from repro.stack.host import Host

__all__ = [
    "MonitorScheme",
    "ObservedStation",
    "BindingDatabase",
    "probe_retries_counter",
]


def probe_retries_counter():
    """``probe_retries_total{scheme}`` — verification probes re-sent
    after an unanswered per-attempt timeout."""
    from repro.obs.registry import REGISTRY

    return REGISTRY.counter(
        "probe_retries_total",
        "Active-verification probes re-sent after an unanswered timeout, by scheme",
        labels=("scheme",),
    )


@dataclass
class ObservedStation:
    """What a passive monitor knows about one IP address."""

    ip: Ipv4Address
    mac: MacAddress
    first_seen: float
    last_seen: float
    previous_macs: List[MacAddress] = field(default_factory=list)

    @property
    def flip_flopped(self) -> bool:
        """True when the current MAC was seen before an intermediate one."""
        return self.mac in self.previous_macs


class BindingDatabase:
    """The arpwatch-style observation table: IP -> station record."""

    def __init__(self) -> None:
        self._stations: Dict[Ipv4Address, ObservedStation] = {}

    def __len__(self) -> int:
        return len(self._stations)

    def __contains__(self, ip: Ipv4Address) -> bool:
        return ip in self._stations

    def get(self, ip: Ipv4Address) -> Optional[ObservedStation]:
        return self._stations.get(ip)

    def observe(
        self, ip: Ipv4Address, mac: MacAddress, now: float
    ) -> tuple[str, Optional[MacAddress]]:
        """Record a sighting; returns ``(event, previous_mac)``.

        ``event`` is ``"new"``, ``"refresh"``, ``"changed"`` or
        ``"flip-flop"`` — the same distinctions arpwatch reports.
        """
        station = self._stations.get(ip)
        if station is None:
            self._stations[ip] = ObservedStation(
                ip=ip, mac=mac, first_seen=now, last_seen=now
            )
            return ("new", None)
        if station.mac == mac:
            station.last_seen = now
            return ("refresh", None)
        previous = station.mac
        station.previous_macs.append(previous)
        station.mac = mac
        station.last_seen = now
        event = "flip-flop" if mac in station.previous_macs[:-1] else "changed"
        return (event, previous)

    def forget(self, ip: Ipv4Address) -> None:
        self._stations.pop(ip, None)

    def stations(self) -> List[ObservedStation]:
        return list(self._stations.values())


class MonitorScheme(Scheme):
    """Base class: attaches to the LAN's mirror-port monitor station."""

    def _install(self, lan: Lan, protected: List[Host]) -> None:
        if lan.monitor is None:
            raise SchemeError(
                f"{self.profile.key} needs a monitor station; call lan.add_monitor() first"
            )
        self.monitor = lan.monitor
        self._attach(self.monitor.frame_taps, self._tap)
        self._setup(lan)

    def _setup(self, lan: Lan) -> None:
        """Extra scheme-specific initialization (optional)."""

    # ------------------------------------------------------------------
    def probe_previous_owner(
        self,
        ip,
        old_mac,
        *,
        timeout: float,
        retries: int = 0,
        on_reply: Callable[[object, float], None],
        answered: Callable[[], bool],
        on_conclude: Callable[[], None],
        name: str = "monitor.verify",
    ) -> None:
        """Actively verify a rebinding with a bounded retry/timeout loop.

        Sends an echo request framed at ``old_mac`` (the previous owner)
        and waits ``timeout`` simulated seconds; if the probe stays
        unanswered (``answered()`` false — lost frame, downed link) it
        is re-sent up to ``retries`` times before ``on_conclude`` runs.
        The wait is therefore always bounded by
        ``(retries + 1) * timeout``; there is no indefinite-wait path.

        Each re-send is counted in ``probe_retries_total{scheme}`` and in
        the scheme's ``probes_sent``/``messages_sent`` (kept equal, as
        every probe is one monitor transmission).  The verdict is still
        rendered on a timeout boundary — a reply marks the verification
        answered but conclusion waits for the attempt's timer, so
        detection latency remains ``timeout`` regardless of retries.
        """

        def fire(remaining: int) -> None:
            self.probes_sent += 1
            self.messages_sent += 1
            self.monitor.ping_via(
                dst_ip=ip, dst_mac=old_mac, on_reply=on_reply, timeout=timeout
            )
            self.monitor.sim.schedule(
                timeout, lambda: step(remaining), name=name
            )

        def step(remaining: int) -> None:
            if answered() or remaining <= 0:
                on_conclude()
                return
            probe_retries_counter().labels(scheme=self.profile.key).inc()
            fire(remaining - 1)

        fire(retries)

    # ------------------------------------------------------------------
    def _tap(self, frame: EthernetFrame, raw: bytes) -> None:
        now = self.monitor.sim.now
        if frame.src == self.monitor.mac:
            return  # ignore our own transmissions (probes etc.)
        self.on_any_frame(frame, now)
        if frame.ethertype == EtherType.ARP:
            try:
                arp = ArpPacket.decode(frame.payload)
            except CodecError:
                return
            self.on_arp(arp, frame, now)
        elif frame.ethertype == EtherType.IPV4:
            self._maybe_dhcp(frame, now)

    def _maybe_dhcp(self, frame: EthernetFrame, now: float) -> None:
        try:
            packet = Ipv4Packet.decode(frame.payload)
            if packet.proto != IpProto.UDP:
                return
            datagram = UdpDatagram.decode(packet.payload)
            if datagram.dst_port not in (DHCP_CLIENT_PORT, DHCP_SERVER_PORT):
                return
            message = DhcpMessage.decode(datagram.payload)
        except CodecError:
            return
        self.on_dhcp(message, frame, now)

    # -- subclass surface -------------------------------------------------
    def on_arp(self, arp: ArpPacket, frame: EthernetFrame, now: float) -> None:
        """Called for every ARP packet crossing the mirror port."""

    def on_dhcp(self, message: DhcpMessage, frame: EthernetFrame, now: float) -> None:
        """Called for every DHCP message crossing the mirror port."""

    def on_any_frame(self, frame: EthernetFrame, now: float) -> None:
        """Called for every frame (before protocol dispatch)."""
