"""Scheme 10 — active-probe verification (ArpON/XArp-style active module).

Passive monitors cannot tell a poisoning from a legitimate NIC swap;
active ones can ask.  On every observed rebinding the monitor pings the
*previous* MAC directly (frame addressed at the old NIC, bypassing ARP).
A reply means the old owner is alive and well — so the new claim is a
live impersonation and a high-confidence alarm fires.  Silence means the
station really changed and the database is updated quietly.

Costs the analysis charges: probe traffic on every rebinding, a
verification delay before the alarm, and a residual false-negative: an
attacker who first silences the victim (DoS, unplug) passes the probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, SchemeProfile, Severity
from repro.schemes.monitor_base import BindingDatabase, MonitorScheme

__all__ = ["ActiveProbe"]


@dataclass
class _ProbeState:
    old_mac: MacAddress
    new_mac: MacAddress
    started: float
    answered: bool = False


class ActiveProbe(MonitorScheme):
    """Verify rebindings by pinging the previous owner."""

    profile = SchemeProfile(
        key="active-probe",
        display_name="Active probe verifier",
        kind="detection",
        placement="monitor",
        requires_infra_change=False,
        requires_host_change=False,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="low",
        claimed_coverage={
            "reply": Coverage.DETECTS,
            "request": Coverage.DETECTS,
            "gratuitous": Coverage.DETECTS,
            "reactive": Coverage.DETECTS,
        },
        limitations=(
            "monitor needs an IP and send capability (not purely passive)",
            "attacker who silences the victim first passes verification",
            "probe traffic grows with rebinding rate",
            "cold start: the first observed binding is trusted",
        ),
        reference="active verification as in ArpON / XArp active modules",
    )

    def __init__(self, probe_timeout: float = 0.5, probe_retries: int = 2) -> None:
        super().__init__()
        self.db = BindingDatabase()
        self.probe_timeout = probe_timeout
        self.probe_retries = probe_retries
        self.probes_sent = 0
        self.confirmed_attacks = 0
        self.benign_rebinds = 0
        self._pending: Dict[Ipv4Address, _ProbeState] = {}

    def on_arp(self, arp: ArpPacket, frame: EthernetFrame, now: float) -> None:
        if arp.spa.is_unspecified:
            return
        if arp.spa in self._pending:
            pending = self._pending[arp.spa]
            if arp.sha == pending.old_mac:
                pending.answered = True  # old owner still talking
            return
        station = self.db.get(arp.spa)
        if station is None or station.mac == arp.sha:
            self.db.observe(arp.spa, arp.sha, now)
            return
        self._verify(arp.spa, station.mac, arp.sha, now)

    # ------------------------------------------------------------------
    def _verify(
        self, ip: Ipv4Address, old_mac: MacAddress, new_mac: MacAddress, now: float
    ) -> None:
        self._pending[ip] = _ProbeState(old_mac=old_mac, new_mac=new_mac, started=now)
        self.probe_previous_owner(
            ip,
            old_mac,
            timeout=self.probe_timeout,
            retries=self.probe_retries,
            on_reply=lambda src, rtt: self._on_probe_reply(ip),
            answered=lambda: self._answered(ip),
            on_conclude=lambda: self._conclude(ip),
            name="active-probe",
        )

    def _on_probe_reply(self, ip: Ipv4Address) -> None:
        pending = self._pending.get(ip)
        if pending is not None:
            pending.answered = True

    def _answered(self, ip: Ipv4Address) -> bool:
        pending = self._pending.get(ip)
        return pending is None or pending.answered

    def _conclude(self, ip: Ipv4Address) -> None:
        pending = self._pending.pop(ip, None)
        if pending is None:
            return
        now = self.monitor.sim.now
        if pending.answered:
            self.confirmed_attacks += 1
            self.raise_alert(
                time=now,
                severity=Severity.CRITICAL,
                kind="verified-poisoning",
                ip=ip,
                mac=pending.new_mac,
                message=f"previous owner {pending.old_mac} still alive",
                dedup_window=60.0,
            )
            # Keep the (probably legitimate) old binding on record.
        else:
            self.benign_rebinds += 1
            self.db.observe(ip, pending.new_mac, now)

    def state_size(self) -> int:
        return len(self.db) + len(self._pending)
