"""Scheme 6 — switch port security.

Limits how many (and optionally which) source MACs may appear on each
access port, with Cisco-style violation actions.  It shuts down MAC
flooding and cross-port MAC spoofing completely — but, as the analysis
stresses, it does *not* stop ARP poisoning at all: a poisoner uses its
own, perfectly port-legitimate MAC and lies only inside the ARP payload,
which port security never looks at.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.l2.device import Port
from repro.l2.topology import Lan
from repro.net.addresses import MacAddress
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.stack.host import Host

__all__ = ["PortSecurity"]

VIOLATION_PROTECT = "protect"    # silently drop offending frames
VIOLATION_RESTRICT = "restrict"  # drop + alert
VIOLATION_SHUTDOWN = "shutdown"  # err-disable the port


class PortSecurity(Scheme):
    """Per-port sticky MAC limiting on the access switch."""

    profile = SchemeProfile(
        key="port-security",
        display_name="Switch port security",
        kind="prevention",
        placement="switch",
        requires_infra_change=True,
        requires_host_change=False,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="medium",
        claimed_coverage={
            "reply": Coverage.NONE,
            "request": Coverage.NONE,
            "gratuitous": Coverage.NONE,
            "reactive": Coverage.NONE,
        },
        limitations=(
            "does not inspect ARP payloads: poisoning with the attacker's own MAC passes",
            "stops MAC flooding and cross-port MAC spoofing only",
            "managed switches required; per-port administration",
            "MAC limits break multi-device ports (VM hosts, phones+PCs)",
        ),
        reference="Cisco port security feature; standard hardening guidance",
    )

    def __init__(
        self,
        max_macs_per_port: int = 1,
        violation: str = VIOLATION_RESTRICT,
        trusted_ports: Optional[Set[int]] = None,
    ) -> None:
        super().__init__()
        if violation not in (VIOLATION_PROTECT, VIOLATION_RESTRICT, VIOLATION_SHUTDOWN):
            raise ValueError(f"unknown violation mode {violation!r}")
        self.max_macs = max_macs_per_port
        self.violation = violation
        self._configured_trusted = trusted_ports
        self._sticky: Dict[int, Set[MacAddress]] = {}
        self._trusted: Set[int] = set()
        self.violations = 0
        self.ports_shut = 0

    def _install(self, lan: Lan, protected: List[Host]) -> None:
        if self._configured_trusted is not None:
            self._trusted = set(self._configured_trusted)
        else:
            self._trusted = {lan.port_of("gateway")}
            if lan.monitor is not None:
                self._trusted.add(lan.port_of(lan.monitor.name))
            # Inter-switch trunks legitimately carry many MACs.
            self._trusted |= lan.trunk_ports
        self._attach(lan.switch.ingress_filters, self._filter)

    def _filter(self, port: Port, frame: EthernetFrame) -> bool:
        if port.index in self._trusted:
            return True
        allowed = self._sticky.setdefault(port.index, set())
        if frame.src in allowed:
            return True
        if len(allowed) < self.max_macs:
            allowed.add(frame.src)  # sticky-learn the first N stations
            return True
        self.violations += 1
        if self.violation == VIOLATION_RESTRICT or self.violation == VIOLATION_SHUTDOWN:
            self.raise_alert(
                time=port.device.sim.now,
                severity=Severity.WARNING,
                kind="port-security-violation",
                mac=frame.src,
                message=f"port {port.name} exceeded {self.max_macs} MAC(s)",
                dedup_window=10.0,
                dedup_key=("port-security-violation", port.index),
            )
        if self.violation == VIOLATION_SHUTDOWN and port.up:
            port.shut()
            self.ports_shut += 1
        return False

    def state_size(self) -> int:
        return sum(len(macs) for macs in self._sticky.values())
