"""Ordered scheme stacks — layered defenses installed as one unit.

The paper's matrix rates each scheme alone, but real deployments layer
them: DAI at the switch plus ArpWatch at the monitor station covers both
prevention and after-the-fact detection.  :class:`SchemeStack` composes
an *ordered* list of schemes behind the single-:class:`Scheme` contract
the experiment layer already speaks, so every ``run_*`` function and the
campaign grid accept a ``"dai+arpwatch"`` spec with no special cases:

* **install order is spec order** — schemes attach left to right, so
  their hooks dispatch in the order written (ties on hook priority keep
  insertion order, see :mod:`repro.hooks`);
* **mid-install failure unwinds** — if the third scheme's install
  raises, the first two are uninstalled (reverse order) before the
  error propagates, leaving the LAN clean;
* **uninstall is reverse order** and fault-isolated per member (via the
  base :class:`~repro.schemes.base.Scheme` teardown stack);
* **reporting is merged** — ``alerts`` interleaves member alerts by
  time, ``messages_sent``/``suppressed_alerts``/``state_size`` sum, and
  the synthetic :class:`~repro.schemes.base.SchemeProfile` combines the
  members' qualitative claims (best coverage per variant, OR of the
  infrastructure requirements, max cost).

Result dataclasses store the stack as its plain spec string
(``scheme="dai+arpwatch"``), so serialized results round-trip through
``result_from_dict`` unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SchemeError
from repro.schemes.base import Alert, Coverage, Scheme, SchemeProfile
from repro.stack.host import Host

__all__ = ["SchemeStack", "STACK_SEPARATOR"]

#: Spec-string separator: ``"dai+arpwatch"`` layers DAI under ArpWatch.
STACK_SEPARATOR = "+"

_COST_RANK = {"free": 0, "low": 1, "medium": 2, "high": 3}
_COVERAGE_RANK = {
    Coverage.NONE: 0,
    Coverage.PARTIAL: 1,
    Coverage.DETECTS: 2,
    Coverage.PREVENTS: 3,
}


def _combined_profile(schemes: Sequence[Scheme], key: str) -> SchemeProfile:
    """Fold member profiles into one synthetic stack profile."""
    profiles = [s.profile for s in schemes]
    kinds = {p.kind for p in profiles}
    placements: List[str] = []
    for p in profiles:
        if p.placement not in placements:
            placements.append(p.placement)
    coverage = {}
    for p in profiles:
        for variant, level in p.claimed_coverage.items():
            best = coverage.get(variant, Coverage.NONE)
            if _COVERAGE_RANK[level] > _COVERAGE_RANK[best]:
                coverage[variant] = level
    limitations = tuple(
        f"{p.key}: {item}" for p in profiles for item in p.limitations
    )
    return SchemeProfile(
        key=key,
        display_name=" + ".join(p.display_name for p in profiles),
        kind=kinds.pop() if len(kinds) == 1 else "hybrid",
        placement="+".join(placements),
        requires_infra_change=any(p.requires_infra_change for p in profiles),
        requires_host_change=any(p.requires_host_change for p in profiles),
        requires_crypto=any(p.requires_crypto for p in profiles),
        supports_dhcp_networks=all(p.supports_dhcp_networks for p in profiles),
        cost=max((p.cost for p in profiles), key=lambda c: _COST_RANK.get(c, 0),
                 default="free"),
        claimed_coverage=coverage,
        limitations=limitations,
        reference="composed stack",
    )


class SchemeStack(Scheme):
    """An ordered composite of schemes, installed and reported as one."""

    def __init__(self, schemes: Sequence[Scheme], key: Optional[str] = None) -> None:
        members = list(schemes)
        if not members:
            raise SchemeError("a scheme stack needs at least one member")
        self.schemes: List[Scheme] = members
        super().__init__()
        stack_key = key or STACK_SEPARATOR.join(s.profile.key for s in members)
        self.profile = _combined_profile(members, stack_key)
        self._teardowns.owner = stack_key

    # -- merged reporting ----------------------------------------------
    # The base class assigns these as instance attributes in __init__;
    # the setters stash that into the stack's *own* tally while the
    # getters fold the members in, so ``scheme.alerts`` and the overhead
    # counters keep their single-scheme meaning for callers.
    @property
    def alerts(self) -> List[Alert]:  # type: ignore[override]
        merged = list(self._own_alerts)
        for scheme in self.schemes:
            merged.extend(scheme.alerts)
        merged.sort(key=lambda a: a.time)
        return merged

    @alerts.setter
    def alerts(self, value: List[Alert]) -> None:
        self._own_alerts = list(value)

    @property
    def messages_sent(self) -> int:  # type: ignore[override]
        return self._own_messages + sum(s.messages_sent for s in self.schemes)

    @messages_sent.setter
    def messages_sent(self, value: int) -> None:
        self._own_messages = value

    @property
    def suppressed_alerts(self) -> int:  # type: ignore[override]
        return self._own_suppressed + sum(s.suppressed_alerts for s in self.schemes)

    @suppressed_alerts.setter
    def suppressed_alerts(self, value: int) -> None:
        self._own_suppressed = value

    # -- lifecycle ------------------------------------------------------
    def _install(self, lan, protected: List[Host]) -> None:
        try:
            for scheme in self.schemes:
                scheme.install(lan, protected=protected)
                self._on_teardown(scheme.uninstall)
        except Exception:
            # Unwind the members that already attached so a failed stack
            # leaves the LAN exactly as it found it (the teardowns
            # registered so far cover exactly those members).
            self._teardowns.close()
            raise

    def state_size(self) -> int:
        return sum(s.state_size() for s in self.schemes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "installed" if self.installed else "detached"
        return f"SchemeStack({self.profile.key}, {state}, members={len(self.schemes)})"
