"""Scheme 1 — static ARP entries.

The oldest advice in the book: pin the critical bindings (at minimum the
gateway's) into every host's cache so dynamic updates cannot displace
them.  Perfectly effective for the pinned addresses, and perfectly
unmanageable at scale: every host must be touched on every NIC swap, and
DHCP networks cannot use it at all for client-to-client bindings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.schemes.base import Coverage, Scheme, SchemeProfile
from repro.stack.host import Host

__all__ = ["StaticArpEntries"]


class StaticArpEntries(Scheme):
    """Pin operator-supplied bindings into each protected host's cache."""

    profile = SchemeProfile(
        key="static-arp",
        display_name="Static ARP entries",
        kind="prevention",
        placement="host",
        requires_infra_change=False,
        requires_host_change=True,
        requires_crypto=False,
        supports_dhcp_networks=False,
        cost="free",
        claimed_coverage={
            "reply": Coverage.PREVENTS,
            "request": Coverage.PREVENTS,
            "gratuitous": Coverage.PREVENTS,
            "reactive": Coverage.PREVENTS,
        },
        limitations=(
            "unmanageable beyond a handful of hosts",
            "incompatible with DHCP-assigned addresses",
            "silently breaks on legitimate NIC replacement",
            "some stacks historically still overwrote 'static' entries",
        ),
        reference="traditional practice; discussed in every ARP-security survey",
    )

    def __init__(self, bindings: Optional[Dict[Ipv4Address, MacAddress]] = None) -> None:
        """``bindings`` is the operator's inventory; ``None`` means pin the
        LAN's full (true) static inventory at install time — equivalent to
        an administrator provisioning from their asset database."""
        super().__init__()
        self._configured = bindings
        self._pinned_count = 0

    def _install(self, lan: Lan, protected: List[Host]) -> None:
        bindings = self._configured if self._configured is not None else lan.true_bindings()
        for host in protected:
            for ip, mac in bindings.items():
                if host.ip is not None and ip == host.ip:
                    continue
                host.arp_cache.pin(ip, mac, now=lan.sim.now)
                self._pinned_count += 1

            def unpin(h: Host = host, pinned=dict(bindings)) -> None:
                for ip in pinned:
                    h.arp_cache.unpin(ip)

            self._on_teardown(unpin)

    def state_size(self) -> int:
        return self._pinned_count
