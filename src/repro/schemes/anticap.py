"""Scheme 2 — Anticap (kernel patch).

Anticap changes one rule in the stack: an ARP message that would *change*
an existing cache entry to a different MAC is dropped.  Cheap and quite
effective against rebinding, with two structural blind spots the analysis
highlights: (a) an attacker who gets there *first* (before the legitimate
binding exists, or right after expiry) is accepted like anyone else, and
(b) it violates the ARP RFC for legitimate rebinding (NIC swap, failover)
— the entry must age out before the new NIC can communicate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.l2.topology import Lan
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.stack.host import Host

__all__ = ["Anticap"]


class Anticap(Scheme):
    """Refuse cache updates that change an existing entry's MAC."""

    profile = SchemeProfile(
        key="anticap",
        display_name="Anticap kernel patch",
        kind="prevention",
        placement="host",
        requires_infra_change=False,
        requires_host_change=True,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="low",
        claimed_coverage={
            "reply": Coverage.PREVENTS,
            "request": Coverage.PREVENTS,
            "gratuitous": Coverage.PREVENTS,
            "reactive": Coverage.PARTIAL,  # first-claim race still wins
        },
        limitations=(
            "blind before the first legitimate binding (cold cache)",
            "attacker can wait for entry expiry and claim first",
            "breaks legitimate rebinding until the stale entry ages out",
            "must be deployed on every host (kernel patch)",
        ),
        reference="Anticap patch (Barnaba), analyzed alongside Antidote",
    )

    def __init__(self, log_rejections: bool = True) -> None:
        super().__init__()
        self.log_rejections = log_rejections
        self.rejections = 0

    def _install(self, lan: Lan, protected: List[Host]) -> None:
        for host in protected:
            self._attach(host.arp_guards, self._guard)

    def _guard(
        self, host: Host, arp: ArpPacket, frame: EthernetFrame
    ) -> Optional[bool]:
        if arp.spa.is_unspecified:
            return None
        entry = host.arp_cache.entry(arp.spa)
        if entry is None:
            return None  # no existing binding: default policy applies
        if entry.mac == arp.sha:
            return None  # consistent refresh
        # A change attempt: Anticap drops the packet outright.
        self.rejections += 1
        if self.log_rejections:
            # kern.info noise, not a page: Anticap is prevention, and its
            # refusals fire on legitimate rebinding too.
            self.raise_alert(
                time=host.sim.now,
                severity=Severity.INFO,
                kind="rebind-refused",
                ip=arp.spa,
                mac=arp.sha,
                message=f"kept {entry.mac} on {host.name}",
                dedup_window=60.0,
            )
        return False
