"""Scheme 12 — the paper's proposal: a hybrid passive+active detector.

The analysis's conclusion is that no single cheap technique suffices:
passive databases drown the operator in churn alarms, and naive active
probing wastes traffic verifying changes DHCP already explains.  The
hybrid combines three information sources on the monitor station:

1. an arpwatch-style passive binding database;
2. DHCP awareness — ACK/RELEASE traffic snooped off the mirror port
   explains most legitimate rebindings before they are ever flagged;
3. active verification — only the rebindings DHCP cannot explain get a
   probe of the previous owner, and only a *live* previous owner raises
   the alarm.

It also keeps the cheap instantaneous signatures (Ethernet/ARP header
mismatch, reply storms), because they catch lazy tools at zero cost.
The result, quantified in Tables 2–3 and Figure 1: detection coverage of
a passive monitor, false-positive behaviour close to zero under churn,
at the price of a small probe budget and a verification delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.dhcp import DhcpMessage, DhcpMessageType
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, SchemeProfile, Severity
from repro.schemes.monitor_base import BindingDatabase, MonitorScheme

__all__ = ["HybridDetector"]


@dataclass
class _Verification:
    old_mac: MacAddress
    new_mac: MacAddress
    started: float
    answered: bool = False


class HybridDetector(MonitorScheme):
    """Passive DB + DHCP awareness + targeted active verification."""

    profile = SchemeProfile(
        key="hybrid",
        display_name="Hybrid passive+active detector (this paper)",
        kind="detection",
        placement="monitor",
        requires_infra_change=False,
        requires_host_change=False,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="low",
        claimed_coverage={
            "reply": Coverage.DETECTS,
            "request": Coverage.DETECTS,
            "gratuitous": Coverage.DETECTS,
            "reactive": Coverage.DETECTS,
        },
        limitations=(
            "detection only: the first poisoned packets still land",
            "attacker who silences the victim first evades the probe",
            "needs a mirror port and a monitor with send capability",
        ),
        reference="the modest scheme proposed by the analyzed paper",
    )

    def __init__(
        self,
        probe_timeout: float = 0.5,
        probe_retries: int = 0,
        dhcp_grace: float = 30.0,
        storm_threshold: int = 12,
        storm_window: float = 10.0,
        scan_threshold: int = 16,
        scan_window: float = 10.0,
    ) -> None:
        super().__init__()
        self.db = BindingDatabase()
        self.probe_timeout = probe_timeout
        self.probe_retries = probe_retries
        self.dhcp_grace = dhcp_grace
        self.storm_threshold = storm_threshold
        self.storm_window = storm_window
        self.scan_threshold = scan_threshold
        self.scan_window = scan_window
        #: source MAC -> [(time, distinct target)] for sweep detection
        self._request_fanout: Dict[MacAddress, List[Tuple[float, Ipv4Address]]] = {}
        #: ip -> (mac, time of last DHCP ACK)
        self.dhcp_recent: Dict[Ipv4Address, Tuple[MacAddress, float]] = {}
        self._pending: Dict[Ipv4Address, _Verification] = {}
        self._reply_times: Dict[Tuple[Ipv4Address, MacAddress], list] = {}
        self._storm_alerted: Dict[Tuple[Ipv4Address, MacAddress], float] = {}
        self.probes_sent = 0
        self.confirmed_attacks = 0
        self.dhcp_explained = 0
        self.benign_rebinds = 0

    # ------------------------------------------------------------------
    # DHCP awareness
    # ------------------------------------------------------------------
    def on_dhcp(self, message: DhcpMessage, frame: EthernetFrame, now: float) -> None:
        if message.message_type == DhcpMessageType.ACK and not message.yiaddr.is_unspecified:
            self.dhcp_recent[message.yiaddr] = (message.chaddr, now)
        elif message.message_type == DhcpMessageType.RELEASE:
            self.dhcp_recent.pop(message.ciaddr, None)

    def _dhcp_explains(self, ip: Ipv4Address, mac: MacAddress, now: float) -> bool:
        record = self.dhcp_recent.get(ip)
        if record is None:
            return False
        lease_mac, when = record
        return lease_mac == mac and now - when <= self.dhcp_grace

    # ------------------------------------------------------------------
    # ARP path
    # ------------------------------------------------------------------
    def on_arp(self, arp: ArpPacket, frame: EthernetFrame, now: float) -> None:
        # Cheap instantaneous signature: header/payload source mismatch.
        if not arp.spa.is_unspecified and frame.src != arp.sha:
            self.raise_alert(
                time=now,
                severity=Severity.WARNING,
                kind="ether-arp-mismatch",
                ip=arp.spa,
                mac=arp.sha,
                message=f"frame src {frame.src}",
                dedup_window=60.0,
            )
        if arp.is_request and not arp.is_gratuitous:
            self._note_request(arp, frame, now)
        if arp.spa.is_unspecified:
            return
        if arp.is_reply:
            self._note_reply(arp, now)
        pending = self._pending.get(arp.spa)
        if pending is not None:
            if arp.sha == pending.old_mac:
                pending.answered = True
            return
        station = self.db.get(arp.spa)
        if station is None:
            self.db.observe(arp.spa, arp.sha, now)
            return
        if station.mac == arp.sha:
            self.db.observe(arp.spa, arp.sha, now)
            return
        # A rebinding.  First ask DHCP.
        if self._dhcp_explains(arp.spa, arp.sha, now):
            self.dhcp_explained += 1
            self.db.observe(arp.spa, arp.sha, now)
            return
        # DHCP cannot explain it: verify the old owner actively.
        self._verify(arp.spa, station.mac, arp.sha, now)

    def _note_request(
        self, arp: ArpPacket, frame: EthernetFrame, now: float
    ) -> None:
        """Sweep heuristic: one source asking about many distinct targets
        in a short window is reconnaissance, not resolution."""
        fanout = self._request_fanout.setdefault(frame.src, [])
        fanout.append((now, arp.tpa))
        cutoff = now - self.scan_window
        while fanout and fanout[0][0] < cutoff:
            fanout.pop(0)
        distinct = {target for _, target in fanout}
        if len(distinct) >= self.scan_threshold:
            self.raise_alert(
                time=now,
                severity=Severity.WARNING,
                kind="arp-scan",
                mac=frame.src,
                message=(
                    f"{len(distinct)} distinct targets probed in "
                    f"{self.scan_window:.0f}s"
                ),
                dedup_window=60.0,
                dedup_key=("arp-scan", frame.src),
            )

    def _note_reply(self, arp: ArpPacket, now: float) -> None:
        """Reply-storm heuristic: re-poisoning tools repeat themselves."""
        key = (arp.spa, arp.sha)
        times = self._reply_times.setdefault(key, [])
        times.append(now)
        cutoff = now - self.storm_window
        while times and times[0] < cutoff:
            times.pop(0)
        if len(times) >= self.storm_threshold:
            last = self._storm_alerted.get(key, -1e18)
            if now - last >= self.storm_window:
                self._storm_alerted[key] = now
                self.raise_alert(
                    time=now,
                    severity=Severity.WARNING,
                    kind="arp-reply-storm",
                    ip=arp.spa,
                    mac=arp.sha,
                    message=f"{len(times)} replies in {self.storm_window:.0f}s",
                )

    # ------------------------------------------------------------------
    # Active verification
    # ------------------------------------------------------------------
    def _verify(
        self, ip: Ipv4Address, old_mac: MacAddress, new_mac: MacAddress, now: float
    ) -> None:
        self._pending[ip] = _Verification(old_mac=old_mac, new_mac=new_mac, started=now)
        self.probe_previous_owner(
            ip,
            old_mac,
            timeout=self.probe_timeout,
            retries=self.probe_retries,
            on_reply=lambda src, rtt: self._on_probe_reply(ip),
            answered=lambda: self._answered(ip),
            on_conclude=lambda: self._conclude(ip),
            name="hybrid.verify",
        )

    def _on_probe_reply(self, ip: Ipv4Address) -> None:
        pending = self._pending.get(ip)
        if pending is not None:
            pending.answered = True

    def _answered(self, ip: Ipv4Address) -> bool:
        pending = self._pending.get(ip)
        return pending is None or pending.answered

    def _conclude(self, ip: Ipv4Address) -> None:
        pending = self._pending.pop(ip, None)
        if pending is None:
            return
        now = self.monitor.sim.now
        if pending.answered:
            self.confirmed_attacks += 1
            self.raise_alert(
                time=now,
                severity=Severity.CRITICAL,
                kind="verified-poisoning",
                ip=ip,
                mac=pending.new_mac,
                message=f"previous owner {pending.old_mac} answered the probe",
                dedup_window=60.0,
            )
        else:
            self.benign_rebinds += 1
            self.db.observe(ip, pending.new_mac, now)
            self.raise_alert(
                time=now,
                severity=Severity.INFO,
                kind="station-changed",
                ip=ip,
                mac=pending.new_mac,
                message=f"previous owner {pending.old_mac} silent; accepted",
            )

    def state_size(self) -> int:
        return len(self.db) + len(self.dhcp_recent) + len(self._pending)
