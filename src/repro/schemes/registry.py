"""Registry of all analyzed schemes, in the paper's presentation order."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.schemes.active_probe import ActiveProbe
from repro.schemes.anticap import Anticap
from repro.schemes.antidote import Antidote
from repro.schemes.arpwatch import ArpWatch
from repro.schemes.base import Scheme, SchemeProfile
from repro.schemes.dai import DynamicArpInspection
from repro.schemes.darpi import DarpiHostInspection
from repro.schemes.hybrid import HybridDetector
from repro.schemes.middleware import HostMiddleware
from repro.schemes.port_security import PortSecurity
from repro.schemes.sarp import SecureArp
from repro.schemes.snort import SnortArpspoof
from repro.schemes.static_entries import StaticArpEntries
from repro.schemes.tarp import TicketArp

__all__ = ["ALL_SCHEMES", "SCHEME_FACTORIES", "make_scheme", "all_profiles"]

#: Scheme classes in canonical (paper) order.
ALL_SCHEMES = (
    StaticArpEntries,
    Anticap,
    Antidote,
    SecureArp,
    TicketArp,
    PortSecurity,
    DynamicArpInspection,
    ArpWatch,
    SnortArpspoof,
    ActiveProbe,
    HostMiddleware,
    HybridDetector,
    # Extension beyond the paper's surveyed set (see its docstring):
    DarpiHostInspection,
)

SCHEME_FACTORIES: Dict[str, Callable[[], Scheme]] = {
    cls.profile.key: cls for cls in ALL_SCHEMES
}


def make_scheme(key: str, **kwargs) -> Scheme:
    """Instantiate a scheme by its registry key."""
    try:
        factory = SCHEME_FACTORIES[key]
    except KeyError:
        known = ", ".join(sorted(SCHEME_FACTORIES))
        raise KeyError(f"unknown scheme {key!r}; known: {known}") from None
    return factory(**kwargs)


def all_profiles() -> List[SchemeProfile]:
    """All scheme profiles, paper order."""
    return [cls.profile for cls in ALL_SCHEMES]
