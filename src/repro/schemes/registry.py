"""Registry of all analyzed schemes, in the paper's presentation order.

Besides single-scheme lookup (:func:`make_scheme`), the registry speaks
*stack specs*: ``"dai+arpwatch"`` names an ordered
:class:`~repro.schemes.stack.SchemeStack` of registry schemes, layered
left to right.  :func:`make_defense` is the one entry point the
experiment layer, campaign grids and CLI use — it accepts either form.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.schemes.active_probe import ActiveProbe
from repro.schemes.anticap import Anticap
from repro.schemes.antidote import Antidote
from repro.schemes.arpwatch import ArpWatch
from repro.schemes.base import Scheme, SchemeProfile
from repro.schemes.dai import DynamicArpInspection
from repro.schemes.darpi import DarpiHostInspection
from repro.schemes.hybrid import HybridDetector
from repro.schemes.middleware import HostMiddleware
from repro.schemes.port_security import PortSecurity
from repro.schemes.sarp import SecureArp
from repro.schemes.sdn_guard import SdnArpGuard
from repro.schemes.snort import SnortArpspoof
from repro.schemes.stack import STACK_SEPARATOR, SchemeStack
from repro.schemes.static_entries import StaticArpEntries
from repro.schemes.tarp import TicketArp

__all__ = [
    "ALL_SCHEMES",
    "SCHEME_FACTORIES",
    "make_scheme",
    "all_profiles",
    "parse_stack",
    "validate_scheme_spec",
    "make_scheme_stack",
    "make_defense",
]

#: Scheme classes in canonical (paper) order.
ALL_SCHEMES = (
    StaticArpEntries,
    Anticap,
    Antidote,
    SecureArp,
    TicketArp,
    PortSecurity,
    DynamicArpInspection,
    ArpWatch,
    SnortArpspoof,
    ActiveProbe,
    HostMiddleware,
    HybridDetector,
    # Extensions beyond the paper's surveyed set (see their docstrings):
    DarpiHostInspection,
    SdnArpGuard,
)

SCHEME_FACTORIES: Dict[str, Callable[[], Scheme]] = {
    cls.profile.key: cls for cls in ALL_SCHEMES
}


def make_scheme(key: str, **kwargs) -> Scheme:
    """Instantiate a single scheme by its registry key."""
    try:
        factory = SCHEME_FACTORIES[key]
    except KeyError:
        known = ", ".join(sorted(SCHEME_FACTORIES))
        raise KeyError(f"unknown scheme {key!r}; known: {known}") from None
    return factory(**kwargs)


def parse_stack(spec: str) -> List[str]:
    """Split a stack spec into its ordered scheme keys, validating each.

    ``"dai"`` → ``["dai"]``; ``"dai+arpwatch"`` → ``["dai",
    "arpwatch"]``.  Raises :class:`KeyError` for unknown keys and
    :class:`ValueError` for malformed specs (empty segments, duplicate
    members — installing one scheme twice in a stack is never
    meaningful and usually a typo).
    """
    keys = [k.strip() for k in spec.split(STACK_SEPARATOR)]
    if not spec or any(not k for k in keys):
        raise ValueError(
            f"malformed scheme spec {spec!r}: expected key or key+key+..."
        )
    seen = set()
    for key in keys:
        if key not in SCHEME_FACTORIES:
            known = ", ".join(sorted(SCHEME_FACTORIES))
            raise KeyError(f"unknown scheme {key!r} in spec {spec!r}; known: {known}")
        if key in seen:
            raise ValueError(f"duplicate scheme {key!r} in stack spec {spec!r}")
        seen.add(key)
    return keys


def validate_scheme_spec(spec: str) -> bool:
    """``True`` iff ``spec`` names a known scheme or a well-formed stack."""
    try:
        parse_stack(spec)
    except (KeyError, ValueError):
        return False
    return True


def make_scheme_stack(spec: str) -> SchemeStack:
    """Instantiate an ordered :class:`SchemeStack` from a spec string.

    Always returns a stack, even for a single key; use
    :func:`make_defense` when a bare scheme should stay bare.
    """
    return SchemeStack([make_scheme(key) for key in parse_stack(spec)], key=spec)


def make_defense(spec: str, **kwargs) -> Scheme:
    """Instantiate a scheme *or stack* from a spec string.

    Single-key specs pass ``kwargs`` to the scheme constructor; stack
    specs take no kwargs (per-member configuration would be ambiguous —
    build the :class:`SchemeStack` by hand for that).
    """
    keys = parse_stack(spec)
    if len(keys) == 1:
        return make_scheme(keys[0], **kwargs)
    if kwargs:
        raise ValueError(
            f"scheme kwargs are only supported for single schemes, "
            f"not stacks ({spec!r}); construct SchemeStack directly instead"
        )
    return make_scheme_stack(spec)


def all_profiles() -> List[SchemeProfile]:
    """All scheme profiles, paper order."""
    return [cls.profile for cls in ALL_SCHEMES]
