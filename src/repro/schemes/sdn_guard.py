"""Scheme 14 — ``sdn-arp-guard``: controller-validated ARP over the SDN plane.

A centralized take on the binding-validation idea the paper's
switch-resident schemes implement port by port: the controller
(:mod:`repro.sdn`) sees every ARP frame as a packet-in, validates the
sender's ``(IP, MAC)`` claim against a lease table — DHCP ACKs snooped
at the controller plus static inventory — and answers a spoof with an
ingress *drop rule* on the offending ``(port, MAC)``, so the flood dies
at the first switch.  Legitimate ARP is released without installing a
flow, keeping every subsequent ARP under validation.

What the survey's schemes cannot express, this one can — and pays for:
the controller is a single point of failure.  During a control-channel
outage the switches fall back to plain learning mode (``fail_mode
="open"``, the default: connectivity survives but so do spoofs) or
blackhole data traffic (``"closed"``: secure and dark).  The
controller-failover experiment measures exactly that window.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SchemeError
from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.schemes.dai import SnoopedBinding
from repro.sdn.agent import DEFAULT_MAX_PENDING, FAIL_CLOSED, FAIL_OPEN, SwitchAgent
from repro.sdn.controller import DEFAULT_CONTROL_LATENCY, Controller
from repro.sdn.flow_table import DEFAULT_FLOW_CAPACITY
from repro.stack.host import Host

__all__ = ["SdnArpGuard"]


class SdnArpGuard(Scheme):
    """Controller-plane ARP validation with programmable drop rules."""

    profile = SchemeProfile(
        key="sdn-arp-guard",
        display_name="SDN controller ARP guard",
        kind="prevention",
        placement="controller",
        requires_infra_change=True,
        requires_host_change=False,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="medium",
        claimed_coverage={
            "reply": Coverage.PREVENTS,
            "request": Coverage.PREVENTS,
            "gratuitous": Coverage.PREVENTS,
            "reactive": Coverage.PREVENTS,
        },
        limitations=(
            "the controller is a single point of failure",
            "fail-open leaves an unprotected window during control outages",
            "every ARP pays a control-channel round trip",
            "bounded flow tables can be exhausted into fallback behaviour",
        ),
        reference="POX l2_arp_mitigation-style SDN controllers (post-survey)",
    )

    def __init__(
        self,
        fail_mode: str = FAIL_OPEN,
        static_bindings: Optional[Dict[Ipv4Address, MacAddress]] = None,
        drop_unknown_senders: bool = True,
        alert_on_drop: bool = True,
        controller_name: str = "ctrl",
        control_latency: float = DEFAULT_CONTROL_LATENCY,
        keepalive_interval: float = 1.0,
        flow_capacity: int = DEFAULT_FLOW_CAPACITY,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        """``static_bindings=None`` auto-provisions from the LAN's asset
        inventory at install time, like DAI; DHCP ACK snooping keeps the
        table current for dynamically addressed hosts.
        """
        if fail_mode not in (FAIL_OPEN, FAIL_CLOSED):
            raise SchemeError(
                f"fail_mode must be 'open' or 'closed', got {fail_mode!r}"
            )
        super().__init__()
        self.fail_mode = fail_mode
        self._configured_static = static_bindings
        self.drop_unknown_senders = drop_unknown_senders
        self.alert_on_drop = alert_on_drop
        self.controller_name = controller_name
        self.control_latency = control_latency
        self.keepalive_interval = keepalive_interval
        self.flow_capacity = flow_capacity
        self.max_pending = max_pending
        self.table: Dict[Ipv4Address, SnoopedBinding] = {}
        self.controller: Optional[Controller] = None
        self._agents: List[SwitchAgent] = []
        self._sim = None
        self.arp_drops = 0
        self.leases_snooped = 0

    # ------------------------------------------------------------------
    # Merged overhead reporting: the controller's and the agents' control
    # traffic is this scheme's overhead.  Same property-override pattern
    # as SchemeStack — the base class assigns ``messages_sent = 0``, which
    # lands in the setter.
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        total = self._own_messages_sent
        if self.controller is not None:
            total += self.controller.control_messages_sent
        for agent in self._agents:
            total += agent.control_messages_sent
        return total

    @messages_sent.setter
    def messages_sent(self, value: int) -> None:
        self._own_messages_sent = value

    # ------------------------------------------------------------------
    def _install(self, lan: Lan, protected: List[Host]) -> None:
        if self.controller_name in lan.hosts:
            raise SchemeError(
                f"cannot install: a host named {self.controller_name!r} exists"
            )
        self._sim = lan.sim
        controller = Controller(
            lan.sim,
            name=self.controller_name,
            control_latency=self.control_latency,
            keepalive_interval=self.keepalive_interval,
        )
        controller.arp_validator = self._validate_arp
        controller.dhcp_listener = self._on_lease
        for name, switch in lan.switches.items():
            channel = controller.connect(
                lan,
                name,
                switch,
                fail_mode=self.fail_mode,
                flow_capacity=self.flow_capacity,
                max_pending=self.max_pending,
            )
            self._agents.append(channel.agent)
        # Registering under lan.hosts makes fault targets like
        # ``flap=ctrl`` resolve; the controller has no IP, so workloads
        # and protection lists never pick it up.
        lan.hosts[self.controller_name] = controller
        self.controller = controller
        static = (
            self._configured_static
            if self._configured_static is not None
            else lan.true_bindings()
        )
        for ip, mac in static.items():
            self.table[ip] = SnoopedBinding(
                ip=ip, mac=mac, expires_at=float("inf"), static=True
            )
        self._on_teardown(lambda: lan.hosts.pop(self.controller_name, None))
        self._on_teardown(controller.disconnect_all)

    # ------------------------------------------------------------------
    # Controller policy callbacks
    # ------------------------------------------------------------------
    def _validate_arp(
        self, switch_name: str, in_port: int, frame: EthernetFrame, arp: ArpPacket
    ) -> bool:
        now = self._sim.now
        if frame.src != arp.sha:
            # The exemplar's IsSpoofedPacket check: a forged ARP body
            # behind an honest Ethernet header (or vice versa).
            return self._drop(
                arp, now, f"ethernet src {frame.src} != ARP sha {arp.sha}"
            )
        if arp.spa.is_unspecified:
            return True  # RFC 5227 probes carry no claim
        binding = self.table.get(arp.spa)
        if binding is not None and binding.active(now):
            if binding.mac == arp.sha:
                return True
            return self._drop(arp, now, f"lease table says {binding.mac}")
        if self.drop_unknown_senders:
            return self._drop(arp, now, "no lease on record")
        return True

    def _drop(self, arp: ArpPacket, now: float, why: str) -> bool:
        self.arp_drops += 1
        if self.alert_on_drop:
            self.raise_alert(
                time=now,
                severity=Severity.CRITICAL,
                kind="sdn-arp-drop",
                ip=arp.spa,
                mac=arp.sha,
                message=why,
                dedup_window=60.0,
            )
        return False

    def _on_lease(self, ip: Ipv4Address, mac: MacAddress, lease_time: float) -> None:
        self.table[ip] = SnoopedBinding(
            ip=ip, mac=mac, expires_at=self._sim.now + lease_time
        )
        self.leases_snooped += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def in_fallback(self) -> bool:
        """True while any managed switch is running without its controller."""
        return any(agent.mode != "flow" for agent in self._agents)

    def state_size(self) -> int:
        flows = sum(agent.state_size() for agent in self._agents)
        return len(self.table) + flows
