"""Scheme 3 — Antidote (kernel patch with verification probe).

Antidote improves on Anticap's "never rebind" rule: when a conflicting
claim arrives, the kernel *asks the previous MAC whether it is still
alive* (a unicast ARP request framed straight at the old NIC).  If the
old station answers, the new claim was an attack — keep the old binding
and blacklist the claimant.  If nothing answers, the rebinding is
probably legitimate (NIC swap) and is accepted.  The analysis points out
the residual weakness: an attacker who can first knock the victim
offline (or who claims during the cold-cache window) still wins, and the
blacklist itself can be abused to DoS a legitimate station by spoofing
claims *from* it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.stack.arp_cache import BindingSource
from repro.stack.host import Host

__all__ = ["Antidote"]


@dataclass
class _PendingVerification:
    old_mac: MacAddress
    new_mac: MacAddress
    new_is_request: bool
    answered: bool = False


class Antidote(Scheme):
    """Probe-the-previous-owner rebinding verification."""

    profile = SchemeProfile(
        key="antidote",
        display_name="Antidote kernel patch",
        kind="prevention",
        placement="host",
        requires_infra_change=False,
        requires_host_change=True,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="low",
        claimed_coverage={
            "reply": Coverage.PREVENTS,
            "request": Coverage.PREVENTS,
            "gratuitous": Coverage.PREVENTS,
            "reactive": Coverage.PARTIAL,
        },
        limitations=(
            "cold-cache window: first claim is trusted",
            "attacker that silences the victim first still wins",
            "blacklist can be weaponized against legitimate MACs",
            "adds a probe round-trip to every legitimate rebinding",
        ),
        reference="Antidote patch (Teterin), analyzed alongside Anticap",
    )

    def __init__(self, probe_timeout: float = 0.5) -> None:
        super().__init__()
        self.probe_timeout = probe_timeout
        self.probes_sent = 0
        self.attacks_blocked = 0
        self.rebinds_allowed = 0
        self._pending: Dict[Tuple[str, Ipv4Address], _PendingVerification] = {}
        self._blacklists: Dict[str, Set[MacAddress]] = {}

    def _install(self, lan: Lan, protected: List[Host]) -> None:
        for host in protected:
            self._blacklists[host.name] = set()
            self._attach(host.arp_guards, self._make_guard())

    def _make_guard(self):
        def guard(
            host: Host, arp: ArpPacket, frame: EthernetFrame
        ) -> Optional[bool]:
            return self._guard(host, arp, frame)

        return guard

    def _guard(
        self, host: Host, arp: ArpPacket, frame: EthernetFrame
    ) -> Optional[bool]:
        if arp.spa.is_unspecified:
            return None
        if arp.sha in self._blacklists.get(host.name, set()):
            return False  # claims from blacklisted MACs are dead on arrival
        key = (host.name, arp.spa)
        pending = self._pending.get(key)
        if pending is not None:
            if arp.sha == pending.old_mac:
                # The previous owner spoke up during verification: attack.
                pending.answered = True
            return False if arp.sha == pending.new_mac else None
        entry = host.arp_cache.entry(arp.spa)
        if entry is None or entry.mac == arp.sha:
            return None
        # Conflicting claim: hold it, probe the old owner.
        self._begin_verification(host, arp)
        return False

    def _begin_verification(self, host: Host, arp: ArpPacket) -> None:
        entry = host.arp_cache.entry(arp.spa)
        assert entry is not None
        key = (host.name, arp.spa)
        self._pending[key] = _PendingVerification(
            old_mac=entry.mac, new_mac=arp.sha, new_is_request=arp.is_request
        )
        # Unicast ARP request straight at the previously known MAC.  Its
        # reply will be a *solicited-looking* packet from old_mac, which
        # the guard above notices via ``pending.answered``.
        probe = ArpPacket.request(
            sha=host.mac,
            spa=host.ip if host.ip is not None else Ipv4Address(0),
            tpa=arp.spa,
        )
        host.send_arp(probe, dst_mac=entry.mac)
        self.probes_sent += 1
        self.messages_sent += 1
        host.sim.schedule(
            self.probe_timeout,
            lambda: self._conclude(host, arp.spa),
            name="antidote.verify",
        )

    def _conclude(self, host: Host, ip: Ipv4Address) -> None:
        key = (host.name, ip)
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        if pending.answered:
            # Old owner is alive: the new claim was hostile.
            self.attacks_blocked += 1
            self._blacklists[host.name].add(pending.new_mac)
            self.raise_alert(
                time=host.sim.now,
                severity=Severity.CRITICAL,
                kind="poisoning-blocked",
                ip=ip,
                mac=pending.new_mac,
                message=f"{host.name}: previous owner {pending.old_mac} still alive",
                dedup_window=60.0,
            )
        else:
            # Old owner is gone: accept the rebinding retroactively.
            self.rebinds_allowed += 1
            host.accept_arp_binding(ip, pending.new_mac, BindingSource.REQUEST)

    def state_size(self) -> int:
        return sum(len(bl) for bl in self._blacklists.values()) + len(self._pending)
