"""Scheme 9 — Snort's ``arpspoof`` preprocessor (signature IDS).

Snort's approach is rule-shaped rather than learning-shaped: the
operator configures the IP->MAC map to defend, and the preprocessor
flags (a) ARP traffic contradicting that map, (b) Ethernet-header /
ARP-payload source inconsistencies (a classic forgery tell), and (c)
unicast ARP *requests*, which well-behaved resolvers never send but
ettercap-style tools do.  Strong on the configured addresses, silent on
everything else, and the map goes stale exactly like static entries do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, SchemeProfile, Severity
from repro.schemes.monitor_base import MonitorScheme
from repro.stack.host import Host

__all__ = ["SnortArpspoof"]


class SnortArpspoof(MonitorScheme):
    """Configured-mapping checks + forgery signatures on the mirror port."""

    profile = SchemeProfile(
        key="snort-arpspoof",
        display_name="Snort arpspoof preprocessor",
        kind="detection",
        placement="monitor",
        requires_infra_change=False,
        requires_host_change=False,
        requires_crypto=False,
        supports_dhcp_networks=False,
        cost="free",
        claimed_coverage={
            "reply": Coverage.DETECTS,
            "request": Coverage.DETECTS,
            "gratuitous": Coverage.DETECTS,
            "reactive": Coverage.DETECTS,
        },
        limitations=(
            "only the operator-configured addresses are checked",
            "mapping must be maintained by hand (stale on NIC swap)",
            "detection only; no blocking",
            "unicast-request rule fires on some legitimate stacks too",
        ),
        reference="Snort arpspoof preprocessor (spp_arpspoof)",
    )

    def __init__(
        self,
        mappings: Optional[Dict[Ipv4Address, MacAddress]] = None,
        flag_unicast_requests: bool = True,
    ) -> None:
        """``mappings=None`` provisions the LAN's static inventory at
        install time (what an operator would paste into snort.conf)."""
        super().__init__()
        self._configured = mappings
        self.mappings: Dict[Ipv4Address, MacAddress] = {}
        self.flag_unicast_requests = flag_unicast_requests
        self.mapping_violations = 0
        self.header_mismatches = 0
        self.unicast_requests = 0

    def _setup(self, lan: Lan) -> None:
        self.mappings = (
            dict(self._configured)
            if self._configured is not None
            else lan.true_bindings()
        )

    def on_arp(self, arp: ArpPacket, frame: EthernetFrame, now: float) -> None:
        # (b) Ethernet source vs ARP sender-hardware-address mismatch.
        if frame.src != arp.sha and not arp.spa.is_unspecified:
            self.header_mismatches += 1
            self.raise_alert(
                time=now,
                severity=Severity.WARNING,
                kind="ether-arp-mismatch",
                ip=arp.spa,
                mac=arp.sha,
                message=f"frame src {frame.src} != arp sha {arp.sha}",
                dedup_window=60.0,
            )
        # (c) Unicast ARP request.
        if (
            self.flag_unicast_requests
            and arp.is_request
            and not arp.is_gratuitous
            and not frame.dst.is_broadcast
        ):
            self.unicast_requests += 1
            self.raise_alert(
                time=now,
                severity=Severity.WARNING,
                kind="unicast-arp-request",
                ip=arp.tpa,
                mac=frame.src,
                message="directed request (ettercap-style scan or probe)",
                dedup_window=60.0,
            )
        # (a) Configured-mapping violation.
        if arp.spa.is_unspecified:
            return
        expected = self.mappings.get(arp.spa)
        if expected is not None and expected != arp.sha:
            self.mapping_violations += 1
            self.raise_alert(
                time=now,
                severity=Severity.CRITICAL,
                kind="arpspoof-mapping-violation",
                ip=arp.spa,
                mac=arp.sha,
                message=f"configured {expected}",
                dedup_window=60.0,
            )

    def state_size(self) -> int:
        return len(self.mappings)
