"""Scheme 7 — DHCP snooping + Dynamic ARP Inspection (DAI).

The switch keeps a binding table: leases snooped from DHCP ACKs that
arrive on the *trusted* uplink port, plus operator-configured static
entries for fixed-address hosts.  Every ARP packet entering an untrusted
port is checked against the table; a sender claiming a binding the table
contradicts is dropped at the port, before any victim ever sees it.  As
a side benefit, DHCP *server* messages from untrusted ports are dropped
too, killing rogue DHCP servers.

The analysis's caveats: it needs managed switches end to end, statically
addressed hosts must be provisioned by hand, and hosts whose lease the
switch never saw (snooping enabled after they bound) are blind spots
until renewal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import CodecError
from repro.l2.device import Port
from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
)
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.udp import UdpDatagram
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.stack.host import Host

__all__ = ["DynamicArpInspection", "SnoopedBinding"]


@dataclass
class SnoopedBinding:
    """One entry of the DHCP-snooping / static binding table."""

    ip: Ipv4Address
    mac: MacAddress
    expires_at: float
    static: bool = False

    def active(self, now: float) -> bool:
        return self.static or self.expires_at > now


class DynamicArpInspection(Scheme):
    """Switch-ingress ARP validation against a snooped binding table."""

    profile = SchemeProfile(
        key="dai",
        display_name="DHCP snooping + Dynamic ARP Inspection",
        kind="prevention",
        placement="switch",
        requires_infra_change=True,
        requires_host_change=False,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="medium",
        claimed_coverage={
            "reply": Coverage.PREVENTS,
            "request": Coverage.PREVENTS,
            "gratuitous": Coverage.PREVENTS,
            "reactive": Coverage.PREVENTS,
        },
        limitations=(
            "requires managed switches on every access port",
            "static hosts need manual binding provisioning",
            "hosts that leased before snooping started are blind spots",
            "fails open on unmanaged/legacy switch segments",
        ),
        reference="Cisco DHCP snooping / Dynamic ARP Inspection",
    )

    def __init__(
        self,
        static_bindings: Optional[Dict[Ipv4Address, MacAddress]] = None,
        trusted_ports: Optional[Set[int]] = None,
        drop_unknown_senders: bool = True,
        alert_on_drop: bool = True,
        arp_rate_limit: Optional[float] = 15.0,
        err_disable_on_rate: bool = True,
    ) -> None:
        """``static_bindings=None`` auto-provisions from the LAN's static
        inventory at install time (the operator's asset database).

        ``arp_rate_limit`` is the per-untrusted-port ARP packets/second
        budget (Cisco's default is 15 pps); exceeding it err-disables the
        port when ``err_disable_on_rate`` is set, else just drops.  Pass
        ``None`` to disable rate limiting.
        """
        super().__init__()
        self._configured_static = static_bindings
        self._configured_trusted = trusted_ports
        self.drop_unknown_senders = drop_unknown_senders
        self.alert_on_drop = alert_on_drop
        self.arp_rate_limit = arp_rate_limit
        self.err_disable_on_rate = err_disable_on_rate
        self.table: Dict[Ipv4Address, SnoopedBinding] = {}
        self._trusted: Set[int] = set()
        self._rate_exempt: Set[int] = set()
        self._arp_arrivals: Dict[int, List[float]] = {}
        self.arp_drops = 0
        self.rogue_dhcp_drops = 0
        self.leases_snooped = 0
        self.rate_limited_drops = 0
        self.ports_err_disabled = 0
        self._sim = None

    # ------------------------------------------------------------------
    def _install(self, lan: Lan, protected: List[Host]) -> None:
        self._sim = lan.sim
        if self._configured_trusted is not None:
            self._trusted = set(self._configured_trusted)
        else:
            self._trusted = {lan.port_of("gateway")}
            if lan.monitor is not None:
                self._trusted.add(lan.port_of(lan.monitor.name))
        # Trunks to downstream (possibly unmanaged) switches stay
        # *inspected* — DAI's value at the boundary — but are exempt from
        # the per-access-port rate limit, which would otherwise trip on
        # the aggregate and err-disable a whole segment.
        self._rate_exempt: Set[int] = set(lan.trunk_ports) | set(self._trusted)
        static = (
            self._configured_static
            if self._configured_static is not None
            else lan.true_bindings()
        )
        for ip, mac in static.items():
            self.table[ip] = SnoopedBinding(
                ip=ip, mac=mac, expires_at=float("inf"), static=True
            )
        self._attach(lan.switch.ingress_filters, self._filter)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _filter(self, port: Port, frame: EthernetFrame) -> bool:
        now = port.device.sim.now
        if frame.ethertype == EtherType.ARP:
            if port.index in self._trusted:
                return True
            if not self._within_rate(port, now):
                return False
            return self._inspect_arp(port, frame, now)
        if frame.ethertype == EtherType.IPV4:
            return self._inspect_dhcp(port, frame, now)
        return True

    def _within_rate(self, port: Port, now: float) -> bool:
        """Per-port ARP rate limiting (one-second sliding window)."""
        if self.arp_rate_limit is None:
            return True
        if port.index in self._rate_exempt:
            return True
        arrivals = self._arp_arrivals.setdefault(port.index, [])
        cutoff = now - 1.0
        while arrivals and arrivals[0] < cutoff:
            arrivals.pop(0)
        arrivals.append(now)
        if len(arrivals) <= self.arp_rate_limit:
            return True
        self.rate_limited_drops += 1
        if self.alert_on_drop:
            self.raise_alert(
                time=now,
                severity=Severity.WARNING,
                kind="arp-rate-limit",
                message=f"port {port.name} exceeded {self.arp_rate_limit:g} ARP pps",
                dedup_window=30.0,
                dedup_key=("arp-rate-limit", port.index),
            )
        if self.err_disable_on_rate and port.up:
            port.shut()
            self.ports_err_disabled += 1
        return False

    def _inspect_arp(self, port: Port, frame: EthernetFrame, now: float) -> bool:
        try:
            arp = ArpPacket.decode(frame.payload)
        except CodecError:
            return True  # not DAI's problem
        if arp.spa.is_unspecified:
            return True  # RFC 5227 probes carry no claim
        binding = self.table.get(arp.spa)
        if binding is not None and binding.active(now):
            if binding.mac == arp.sha:
                return True
            return self._drop_arp(port, arp, now, f"table says {binding.mac}")
        if self.drop_unknown_senders:
            return self._drop_arp(port, arp, now, "no binding on record")
        return True

    def _drop_arp(self, port: Port, arp: ArpPacket, now: float, why: str) -> bool:
        self.arp_drops += 1
        if self.alert_on_drop:
            self.raise_alert(
                time=now,
                severity=Severity.CRITICAL,
                kind="dai-drop",
                ip=arp.spa,
                mac=arp.sha,
                message=f"port {port.name}: {why}",
                dedup_window=60.0,
            )
        return False

    def _inspect_dhcp(self, port: Port, frame: EthernetFrame, now: float) -> bool:
        try:
            packet = Ipv4Packet.decode(frame.payload)
            if packet.proto != IpProto.UDP:
                return True
            datagram = UdpDatagram.decode(packet.payload)
        except CodecError:
            return True
        is_server_msg = (
            datagram.src_port == DHCP_SERVER_PORT
            and datagram.dst_port == DHCP_CLIENT_PORT
        )
        if not is_server_msg:
            return True
        if port.index not in self._trusted:
            # A DHCP server speaking from an access port: rogue.
            self.rogue_dhcp_drops += 1
            if self.alert_on_drop:
                self.raise_alert(
                    time=now,
                    severity=Severity.CRITICAL,
                    kind="rogue-dhcp-drop",
                    mac=frame.src,
                    message=f"DHCP server message on untrusted port {port.name}",
                    dedup_window=60.0,
                )
            return False
        # Trusted server message: snoop ACKs into the binding table.
        try:
            message = DhcpMessage.decode(datagram.payload)
        except CodecError:
            return True
        if message.message_type == DhcpMessageType.ACK and not message.yiaddr.is_unspecified:
            lease = float(message.lease_time or 600)
            self.table[message.yiaddr] = SnoopedBinding(
                ip=message.yiaddr,
                mac=message.chaddr,
                expires_at=now + lease,
            )
            self.leases_snooped += 1
        return True

    def state_size(self) -> int:
        return len(self.table)
