"""Scheme 4 — S-ARP: secure ARP with per-host signatures and an AKD.

S-ARP (Bruschi, Ornaghi, Rosti) replaces trust-by-assertion with
public-key cryptography: every host signs the bindings it announces, and
verifies announcements with keys fetched from an Authoritative Key
Distributor.  Inside a fully enrolled LAN this *prevents* poisoning — an
attacker without a victim's private key cannot produce an acceptable
claim — at the price the analysis quantifies: key infrastructure to run,
every stack modified, and signing/verification latency on the critical
path of address resolution (the reproduced Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.akd import AkdClient, AkdService
from repro.crypto.keys import KeyPair, generate_keypair
from repro.crypto.sign import CryptoCostModel, SignedBinding
from repro.errors import CryptoError, SchemeError
from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address
from repro.packets.arp import ArpExtension, ArpPacket, SARP_MAGIC
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.stack.arp_cache import BindingSource
from repro.stack.host import Host
from repro.stack.os_profiles import STRICT

__all__ = ["SecureArp"]


@dataclass
class _HostState:
    keypair: KeyPair
    client: AkdClient
    stashed: Dict[Ipv4Address, List[ArpPacket]] = field(default_factory=dict)


class SecureArp(Scheme):
    """Signed ARP + Authoritative Key Distributor."""

    profile = SchemeProfile(
        key="s-arp",
        display_name="S-ARP (signed ARP + AKD)",
        kind="prevention",
        placement="host+server",
        requires_infra_change=True,
        requires_host_change=True,
        requires_crypto=True,
        supports_dhcp_networks=True,
        cost="high",
        claimed_coverage={
            "reply": Coverage.PREVENTS,
            "request": Coverage.PREVENTS,
            "gratuitous": Coverage.PREVENTS,
            "reactive": Coverage.PREVENTS,
        },
        limitations=(
            "needs an online trusted key distributor (single point of failure)",
            "every host's stack must be replaced",
            "signing/verification slows every resolution several-fold",
            "unenrolled (legacy) hosts cannot be resolved securely",
        ),
        reference="Bruschi, Ornaghi & Rosti — S-ARP: a Secure ARP (ACSAC'03)",
    )

    def __init__(
        self,
        cost_model: Optional[CryptoCostModel] = None,
        key_bits: int = 512,
        freshness_window: float = 30.0,
        alert_on_invalid: bool = True,
    ) -> None:
        super().__init__()
        self.cost_model = cost_model or CryptoCostModel()
        self.key_bits = key_bits
        self.freshness_window = freshness_window
        self.alert_on_invalid = alert_on_invalid
        self.akd: Optional[AkdService] = None
        self._states: Dict[str, _HostState] = {}
        self.signatures_verified = 0
        self.signatures_rejected = 0
        self.unsigned_dropped = 0

    # ------------------------------------------------------------------
    def _install(self, lan: Lan, protected: List[Host]) -> None:
        rng = lan.sim.rng_stream("sarp/keys")
        akd_host = lan.add_host("sarp-akd", use_gateway=False)
        akd_keys = generate_keypair(rng, bits=self.key_bits)
        self.akd = AkdService(akd_host, akd_keys)
        assert akd_host.ip is not None

        # The AKD host itself speaks S-ARP so its own replies verify.
        members = [h for h in protected if h.ip is not None]
        members.append(akd_host)
        for host in members:
            # The AKD signs its own ARP with its master key (which every
            # member holds a priori); everyone else gets a fresh pair.
            keypair = (
                akd_keys
                if host is akd_host
                else generate_keypair(rng, bits=self.key_bits)
            )
            self.akd.enroll(host.ip, keypair.public)
            client = AkdClient(host, akd_host.ip, self.akd.public_key)
            client.cache[akd_host.ip] = akd_keys.public  # bootstrap trust
            state = _HostState(keypair=keypair, client=client)
            self._states[host.name] = state
            self._attach_host(host, state)

    def _attach_host(self, host: Host, state: _HostState) -> None:
        saved_profile = host.profile
        host.profile = STRICT

        def transform(arp: ArpPacket) -> ArpPacket:
            return self._sign_outgoing(host, state, arp)

        saved_transform = host.arp_tx_transform
        host.arp_tx_transform = transform

        saved_rx_cost = host.arp_rx_cost
        host.arp_rx_cost = lambda arp: (
            self.cost_model.verify_time
            if arp.extension is not None and arp.extension.magic == SARP_MAGIC
            else 0.0
        )
        saved_tx_cost = host.arp_tx_cost
        host.arp_tx_cost = lambda arp: (
            self.cost_model.sign_time
            if arp.extension is not None and arp.extension.magic == SARP_MAGIC
            else 0.0
        )

        self._attach(host.arp_guards, self._make_guard(state))

        def restore() -> None:
            host.profile = saved_profile
            host.arp_tx_transform = saved_transform
            host.arp_rx_cost = saved_rx_cost
            host.arp_tx_cost = saved_tx_cost

        self._on_teardown(restore)

    # ------------------------------------------------------------------
    # Outbound: sign what we announce
    # ------------------------------------------------------------------
    def _sign_outgoing(
        self, host: Host, state: _HostState, arp: ArpPacket
    ) -> ArpPacket:
        if arp.is_request and not arp.is_gratuitous:
            return arp  # requests carry no authenticated claim in S-ARP
        if host.ip is None or arp.spa != host.ip or arp.sha != host.mac:
            return arp  # never sign a claim that is not our own binding
        binding = SignedBinding.create(
            ip=arp.spa,
            mac=arp.sha,
            timestamp=host.sim.now,
            key=state.keypair.private,
        )
        return ArpPacket(
            op=arp.op,
            sha=arp.sha,
            spa=arp.spa,
            tha=arp.tha,
            tpa=arp.tpa,
            extension=ArpExtension(magic=SARP_MAGIC, payload=binding.encode()),
        )

    # ------------------------------------------------------------------
    # Inbound: verify before the cache is touched
    # ------------------------------------------------------------------
    def _make_guard(self, state: _HostState):
        def guard(
            host: Host, arp: ArpPacket, frame: EthernetFrame
        ) -> Optional[bool]:
            return self._guard(host, state, arp)

        return guard

    def _guard(
        self, host: Host, state: _HostState, arp: ArpPacket
    ) -> Optional[bool]:
        if arp.is_request and not arp.is_gratuitous:
            return None  # requests are answered but never learned (STRICT)
        if arp.extension is None or arp.extension.magic != SARP_MAGIC:
            self.unsigned_dropped += 1
            if self.alert_on_invalid:
                # Unsigned ARP is routine on any LAN with unenrolled
                # (legacy) hosts: log, do not page.
                self.raise_alert(
                    time=host.sim.now,
                    severity=Severity.INFO,
                    kind="unsigned-arp",
                    ip=arp.spa,
                    mac=arp.sha,
                    message=f"dropped by {host.name}",
                    dedup_window=60.0,
                )
            return False
        try:
            binding = SignedBinding.decode(arp.extension.payload)
        except CryptoError:
            return self._reject(host, arp, "malformed signature blob")
        if binding.ip != arp.spa or binding.mac != arp.sha:
            return self._reject(host, arp, "signed binding does not match claim")
        if not binding.fresh(host.sim.now, self.freshness_window):
            return self._reject(host, arp, "stale signature (replay?)")
        key = state.client.cache.get(arp.spa)
        if key is not None:
            if key.verify(
                SignedBinding.message_bytes(binding.ip, binding.mac, binding.timestamp),
                binding.signature,
            ):
                self.signatures_verified += 1
                return True
            return self._reject(host, arp, "signature verification failed")
        # Key unknown: stash the claim and ask the AKD.
        stash = state.stashed.setdefault(arp.spa, [])
        stash.append(arp)
        if len(stash) == 1:
            self.messages_sent += 1
            state.client.lookup(
                arp.spa, lambda k: self._on_key(host, state, arp.spa, k)
            )
        return False

    def _reject(self, host: Host, arp: ArpPacket, why: str) -> bool:
        self.signatures_rejected += 1
        if self.alert_on_invalid:
            self.raise_alert(
                time=host.sim.now,
                severity=Severity.CRITICAL,
                kind="invalid-signature",
                ip=arp.spa,
                mac=arp.sha,
                message=f"{host.name}: {why}",
                dedup_window=60.0,
            )
        return False

    def _on_key(
        self, host: Host, state: _HostState, ip: Ipv4Address, key
    ) -> None:
        stashed = state.stashed.pop(ip, [])
        if key is None:
            if self.alert_on_invalid and stashed:
                self.raise_alert(
                    time=host.sim.now,
                    severity=Severity.INFO,
                    kind="unknown-principal",
                    ip=ip,
                    message=f"{host.name}: AKD has no key for claimant",
                    dedup_window=60.0,
                )
            return
        for arp in stashed:
            binding = SignedBinding.decode(arp.extension.payload)  # vetted above
            if key.verify(
                SignedBinding.message_bytes(binding.ip, binding.mac, binding.timestamp),
                binding.signature,
            ):
                self.signatures_verified += 1
                host.accept_arp_binding(arp.spa, arp.sha, BindingSource.SARP)
                break
            self._reject(host, arp, "signature verification failed (post-lookup)")

    def state_size(self) -> int:
        total = 0
        if self.akd is not None:
            total += self.akd.registry_size  # enrollment table
        for state in self._states.values():
            total += len(state.client.cache)
        return total
