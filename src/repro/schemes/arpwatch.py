"""Scheme 8 — arpwatch-style passive monitoring.

The venerable open-source approach: keep a database of every ``(IP,
MAC)`` pairing ever seen on the wire, and mail the administrator when a
pairing changes ("changed ethernet address") or oscillates ("flip
flop").  Zero protocol changes, zero prevention — and, as the analysis
quantifies in Table 3, a steady diet of false alarms on any network with
DHCP churn, plus a cold-start blind spot: a poisoning that begins before
arpwatch does looks like the baseline truth.
"""

from __future__ import annotations

from repro.l2.topology import Lan
from repro.net.oui import vendor_for
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, SchemeProfile, Severity
from repro.schemes.monitor_base import BindingDatabase, MonitorScheme

__all__ = ["ArpWatch"]


class ArpWatch(MonitorScheme):
    """Passive IP/MAC pairing database with change alerts."""

    profile = SchemeProfile(
        key="arpwatch",
        display_name="arpwatch (passive monitoring)",
        kind="detection",
        placement="monitor",
        requires_infra_change=False,
        requires_host_change=False,
        requires_crypto=False,
        supports_dhcp_networks=True,
        cost="free",
        claimed_coverage={
            "reply": Coverage.DETECTS,
            "request": Coverage.DETECTS,
            "gratuitous": Coverage.DETECTS,
            "reactive": Coverage.DETECTS,
        },
        limitations=(
            "detection only — the poisoning still lands before the mail arrives",
            "cold start: attacks preceding the monitor are invisible",
            "DHCP reassignment and NIC swaps raise false alarms",
            "needs a span/mirror port or hub visibility",
        ),
        reference="LBNL arpwatch (Leres)",
    )

    def __init__(self, report_new_stations: bool = True) -> None:
        super().__init__()
        self.db = BindingDatabase()
        self.report_new_stations = report_new_stations
        self.changes_seen = 0
        self.flip_flops_seen = 0

    def on_arp(self, arp: ArpPacket, frame: EthernetFrame, now: float) -> None:
        if arp.spa.is_unspecified:
            return
        event, previous = self.db.observe(arp.spa, arp.sha, now)
        if event == "new":
            if self.report_new_stations:
                vendor = vendor_for(arp.sha) or "unknown vendor"
                self.raise_alert(
                    time=now,
                    severity=Severity.INFO,
                    kind="new-station",
                    ip=arp.spa,
                    mac=arp.sha,
                    message=f"({vendor})",
                )
        elif event == "changed":
            self.changes_seen += 1
            self.raise_alert(
                time=now,
                severity=Severity.WARNING,
                kind="changed-ethernet-address",
                ip=arp.spa,
                mac=arp.sha,
                message=f"was {previous}",
                dedup_window=60.0,
            )
        elif event == "flip-flop":
            self.flip_flops_seen += 1
            self.raise_alert(
                time=now,
                severity=Severity.WARNING,
                kind="flip-flop",
                ip=arp.spa,
                mac=arp.sha,
                message=f"was {previous}",
                dedup_window=60.0,
            )

    def state_size(self) -> int:
        return len(self.db)
