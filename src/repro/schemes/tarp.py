"""Scheme 5 — TARP: ticket-based ARP.

TARP (Lootah, Enck, McDaniel) keeps S-ARP's cryptographic trust but
moves all signing offline: a Local Ticket Agent signs each host's
``(IP, MAC)`` binding once, at attachment time, and ARP replies simply
carry the ticket.  Receivers verify one LTA signature — no key
distribution round-trips, no per-reply signing — so the latency overhead
is roughly half of S-ARP's verify-plus-sign path.  The analysis
highlights the trade it makes for that speed: tickets are bearer tokens,
so an attacker who captures one can replay it as long as it is valid —
but only together with the victim's MAC, which re-routes nothing unless
the attacker also steals the switch port.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crypto.keys import generate_keypair
from repro.crypto.lta import LocalTicketAgent, Ticket
from repro.crypto.sign import CryptoCostModel
from repro.errors import CryptoError
from repro.l2.topology import Lan
from repro.packets.arp import ArpExtension, ArpPacket, TARP_MAGIC
from repro.packets.ethernet import EthernetFrame
from repro.schemes.base import Coverage, Scheme, SchemeProfile, Severity
from repro.stack.arp_cache import BindingSource
from repro.stack.host import Host
from repro.stack.os_profiles import STRICT

__all__ = ["TicketArp"]


class TicketArp(Scheme):
    """LTA-issued tickets attached to ARP replies."""

    profile = SchemeProfile(
        key="tarp",
        display_name="TARP (ticket-based ARP)",
        kind="prevention",
        placement="host+server",
        requires_infra_change=True,
        requires_host_change=True,
        requires_crypto=True,
        supports_dhcp_networks=True,
        cost="medium",
        claimed_coverage={
            "reply": Coverage.PREVENTS,
            "request": Coverage.PREVENTS,
            "gratuitous": Coverage.PREVENTS,
            "reactive": Coverage.PREVENTS,
        },
        limitations=(
            "tickets are replayable within their validity window",
            "replay + MAC spoofing enables impersonation until expiry",
            "hosts must be re-ticketed when addressing changes (DHCP churn)",
            "every host's stack must be modified",
        ),
        reference="Lootah, Enck & McDaniel — TARP (SecureComm'05)",
    )

    def __init__(
        self,
        cost_model: Optional[CryptoCostModel] = None,
        key_bits: int = 512,
        ticket_validity: float = 3600.0,
        alert_on_invalid: bool = True,
    ) -> None:
        super().__init__()
        self.cost_model = cost_model or CryptoCostModel()
        self.key_bits = key_bits
        self.ticket_validity = ticket_validity
        self.alert_on_invalid = alert_on_invalid
        self.lta: Optional[LocalTicketAgent] = None
        self._tickets: Dict[str, Ticket] = {}
        self.tickets_verified = 0
        self.tickets_rejected = 0
        self.unticketed_dropped = 0

    # ------------------------------------------------------------------
    def _install(self, lan: Lan, protected: List[Host]) -> None:
        rng = lan.sim.rng_stream("tarp/keys")
        self.lta = LocalTicketAgent(
            generate_keypair(rng, bits=self.key_bits),
            default_validity=self.ticket_validity,
        )
        for host in protected:
            if host.ip is None:
                continue
            ticket = self.lta.issue(host.ip, host.mac, now=lan.sim.now)
            self._tickets[host.name] = ticket
            self._attach_host(host, ticket)

    def _attach_host(self, host: Host, ticket: Ticket) -> None:
        saved_profile = host.profile
        host.profile = STRICT

        def transform(arp: ArpPacket) -> ArpPacket:
            if arp.is_request and not arp.is_gratuitous:
                return arp
            if host.ip is None or arp.spa != host.ip or arp.sha != host.mac:
                return arp
            return ArpPacket(
                op=arp.op,
                sha=arp.sha,
                spa=arp.spa,
                tha=arp.tha,
                tpa=arp.tpa,
                extension=ArpExtension(magic=TARP_MAGIC, payload=ticket.encode()),
            )

        saved_transform = host.arp_tx_transform
        host.arp_tx_transform = transform

        saved_rx_cost = host.arp_rx_cost
        host.arp_rx_cost = lambda arp: (
            self.cost_model.verify_time
            if arp.extension is not None and arp.extension.magic == TARP_MAGIC
            else 0.0
        )
        # Attaching a pre-issued ticket costs nothing but a lookup.
        saved_tx_cost = host.arp_tx_cost
        host.arp_tx_cost = lambda arp: (
            self.cost_model.lookup_time
            if arp.extension is not None and arp.extension.magic == TARP_MAGIC
            else 0.0
        )

        self._attach(host.arp_guards, self._guard)

        def restore() -> None:
            host.profile = saved_profile
            host.arp_tx_transform = saved_transform
            host.arp_rx_cost = saved_rx_cost
            host.arp_tx_cost = saved_tx_cost

        self._on_teardown(restore)

    # ------------------------------------------------------------------
    def _guard(
        self, host: Host, arp: ArpPacket, frame: EthernetFrame
    ) -> Optional[bool]:
        if arp.is_request and not arp.is_gratuitous:
            return None
        if arp.extension is None or arp.extension.magic != TARP_MAGIC:
            self.unticketed_dropped += 1
            if self.alert_on_invalid:
                # Plain ARP from unenrolled hosts is routine: log only.
                self.raise_alert(
                    time=host.sim.now,
                    severity=Severity.INFO,
                    kind="unticketed-arp",
                    ip=arp.spa,
                    mac=arp.sha,
                    message=f"dropped by {host.name}",
                    dedup_window=60.0,
                )
            return False
        try:
            ticket = Ticket.decode(arp.extension.payload)
        except CryptoError:
            return self._reject(host, arp, "malformed ticket")
        assert self.lta is not None
        if ticket.ip != arp.spa or ticket.mac != arp.sha:
            return self._reject(host, arp, "ticket does not match the ARP claim")
        if not ticket.valid_at(host.sim.now):
            return self._reject(host, arp, "expired or not-yet-valid ticket")
        if not ticket.verify(self.lta.public_key):
            return self._reject(host, arp, "LTA signature invalid")
        self.tickets_verified += 1
        # Commit under the TARP source label, then let normal processing
        # complete pending resolutions.
        host.arp_cache.put(arp.spa, arp.sha, now=host.sim.now, source=BindingSource.TARP)
        return True

    def _reject(self, host: Host, arp: ArpPacket, why: str) -> bool:
        self.tickets_rejected += 1
        if self.alert_on_invalid:
            self.raise_alert(
                time=host.sim.now,
                severity=Severity.CRITICAL,
                kind="invalid-ticket",
                ip=arp.spa,
                mac=arp.sha,
                message=f"{host.name}: {why}",
                dedup_window=60.0,
            )
        return False

    def ticket_for(self, host_name: str) -> Optional[Ticket]:
        """Expose a host's ticket (used by the replay-attack analysis)."""
        return self._tickets.get(host_name)

    def state_size(self) -> int:
        return len(self._tickets)
