"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-schemes``
    The registry with profile one-liners.
``table N`` / ``figure N``
    Regenerate one of the paper's artifacts (N in 1..4) and print it;
    ``--csv`` emits machine-readable CSV instead of the text table.
``demo mitm|dos|flood|starvation``
    Run a single attack scenario, optionally with ``--scheme SPEC``
    installed (a registry key or a '+'-joined stack such as
    ``dai+arpwatch``), and print what happened.
``campaign``
    Sweep an experiment over schemes × variants × seeds on a worker
    pool (``--jobs``), with on-disk result caching (``--cache-dir`` /
    ``--no-cache``), and print multi-trial aggregate statistics.
``trace``
    Run one fixed-seed poisoning experiment with tracing enabled and
    export the event log as a Chrome trace (Perfetto-loadable) or JSONL,
    including the frame-provenance table that links every scheme alert
    back to the injecting attack.
``metrics``
    Run one fixed-seed experiment and dump the metrics registry in
    Prometheus text (or JSON snapshot) form.
``replay``
    Stream a frame trace — a pcap capture (``--pcap``) or a seeded
    synthetic generator (``--synthetic``) — through a monitor-placed
    scheme's tap in bounded memory, and report frames, alerts, and
    sustained ingest throughput.
``profile``
    Run one experiment under the sampling wall-clock profiler and
    export collapsed stacks (flamegraph.pl / speedscope input) with
    per-subsystem attribution.
``top``
    Live per-worker progress view over the heartbeat files a campaign
    writes when the run-health watchdog is enabled.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro._version import __version__
from repro.core import api, report
from repro.core.experiment import ScenarioConfig
from repro.errors import FaultError
from repro.faults import parse_fault_spec
from repro.schemes.registry import SCHEME_FACTORIES, all_profiles, validate_scheme_spec

__all__ = ["main", "build_parser"]


def _scheme_spec(value: str) -> str:
    """argparse type for ``--scheme``: a registry key or a '+'-stack."""
    if not validate_scheme_spec(value):
        raise argparse.ArgumentTypeError(
            f"unknown scheme {value!r}; known: {', '.join(sorted(SCHEME_FACTORIES))} "
            "(join with '+' to stack, e.g. dai+arpwatch)"
        )
    return value


def _fault_spec(value: str) -> Optional[str]:
    """argparse type for ``--faults``: a compact impairment spec or 'none'."""
    try:
        spec = parse_fault_spec(value)
    except FaultError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value if spec is not None else None


def _trace_spec(value: str) -> str:
    """argparse type for ``--traces``: a replay source spec string."""
    from repro.errors import ReplayError
    from repro.replay import open_source

    try:
        open_source(value)
    except ReplayError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


_TABLES: Dict[int, Callable[[], "report.Artifact"]] = {
    1: report.table_1_criteria,
    2: report.table_2_effectiveness,
    3: report.table_3_false_positives,
    4: report.table_4_footprint,
}
_FIGURES: Dict[int, Callable[[], "report.Artifact"]] = {
    1: report.figure_1_detection_latency,
    2: report.figure_2_overhead,
    3: report.figure_3_resolution_latency,
    4: report.figure_4_interception,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Analysis on the Schemes for Detecting and "
            "Preventing ARP Cache Poisoning Attacks' (ICDCSW 2007)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-schemes", help="list the analyzed defense schemes")

    table = sub.add_parser("table", help="regenerate Table 1-4")
    table.add_argument("number", type=int, choices=sorted(_TABLES))
    table.add_argument("--csv", action="store_true", help="emit CSV")

    figure = sub.add_parser("figure", help="regenerate Figure 1-4")
    figure.add_argument("number", type=int, choices=sorted(_FIGURES))
    figure.add_argument("--csv", action="store_true", help="emit CSV")

    demo = sub.add_parser("demo", help="run one attack scenario")
    demo.add_argument(
        "attack", choices=["mitm", "dos", "flood", "starvation"]
    )
    demo.add_argument(
        "--scheme", default=None, type=_scheme_spec, metavar="SPEC",
        help="defense to install: a scheme key or a '+'-joined stack "
             "such as dai+arpwatch (default: none)",
    )
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--duration", type=float, default=30.0)
    demo.add_argument(
        "--faults", default=None, type=_fault_spec, metavar="SPEC",
        help="link/host impairments, e.g. loss=0.05,jitter=2ms "
             "(default: clean LAN)",
    )

    from repro.campaign.spec import EXPERIMENTS

    camp = sub.add_parser(
        "campaign",
        help="run a parallel multi-seed experiment sweep with caching",
    )
    camp.add_argument(
        "--experiment", default="effectiveness", choices=sorted(EXPERIMENTS),
        help="which measurement to sweep (default: effectiveness)",
    )
    camp.add_argument(
        "--schemes", "--scheme", default="all",
        help="comma-separated scheme specs — registry keys or '+'-joined "
             "stacks like dai+arpwatch; 'none' is the no-defense baseline, "
             "'all' sweeps the whole registry (default: all)",
    )
    camp.add_argument(
        "--techniques", default="reply",
        help="comma-separated poisoning techniques (effectiveness only)",
    )
    camp.add_argument(
        "--rates", default="1.0",
        help="comma-separated poison rates in pps (detection-latency only)",
    )
    camp.add_argument(
        "--fail-modes", default="open,closed",
        help="comma-separated controller fail modes to sweep "
             "(controller-failover only; default: open,closed)",
    )
    camp.add_argument("--seeds", type=int, default=5,
                      help="independent trials per grid cell")
    camp.add_argument("--root-seed", type=int, default=7)
    camp.add_argument("--jobs", type=int, default=1,
                      help="worker processes (1 = in-process serial)")
    camp.add_argument("--hosts", type=int, default=4,
                      help="LAN size of the sweep scenario")
    camp.add_argument("--duration", type=float, default=12.0,
                      help="attack/observation duration per trial (seconds)")
    camp.add_argument("--timeout", type=float, default=300.0,
                      help="per-task wall-clock budget (parallel mode)")
    camp.add_argument("--retries", type=int, default=1,
                      help="extra attempts after a task failure")
    camp.add_argument("--cache-dir", default=".repro_cache",
                      help="result cache directory (default: .repro_cache)")
    camp.add_argument("--no-cache", action="store_true",
                      help="always recompute; do not read or write the cache")
    camp.add_argument(
        "--faults", action="append", default=None, type=_fault_spec,
        metavar="SPEC",
        help="add one fault level to the sweep grid (repeatable); each "
             "SPEC is a compact impairment spec like loss=0.05,jitter=2ms, "
             "or 'none' for the clean-LAN level — fault specs contain "
             "commas, hence one flag per level",
    )
    camp.add_argument(
        "--traces", action="append", default=None, type=_trace_spec,
        metavar="SPEC",
        help="add one trace to the sweep grid (replay experiment only, "
             "repeatable); each SPEC is a replay source spec like "
             "pcap:capture.pcap or synthetic:rate=50k,churn=0.2 — trace "
             "specs contain commas, hence one flag per trace",
    )
    camp.add_argument(
        "--variant", action="append", default=None, dest="variant_overrides",
        metavar="KEY=VALUE",
        help="override one variant-grid key across every cell (repeatable); "
             "numeric-looking values parse as numbers — e.g. for "
             "campus-churn: --variant hosts_per_leaf=50 --variant shards=2",
    )
    camp.add_argument("--csv", action="store_true", help="emit CSV")
    camp.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a Prometheus text dump of the aggregated metrics "
             "(per-cell detection-latency histograms, alert totals, and "
             "worker perf counters) to PATH",
    )
    camp.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="stream a live JSONL time series (sim progress, per-window "
             "perf/metrics deltas) to PATH while the campaign runs",
    )
    camp.add_argument(
        "--telemetry-cadence", type=int, default=2000, metavar="N",
        help="snapshot every N simulator events (default: 2000)",
    )
    camp.add_argument(
        "--heartbeat-dir", default=None, metavar="DIR",
        help="enable the run-health watchdog: workers write heartbeat "
             "files to DIR, stalls are counted and reported (default: "
             "<cache-dir>/heartbeats when --jobs > 1 and caching is on, "
             "else off)",
    )
    camp.add_argument(
        "--stall-after", type=float, default=10.0, metavar="SECS",
        help="seconds of frozen heartbeat or sim-clock before a worker "
             "is graded stalled (default: 10)",
    )

    def _obs_experiment_args(p) -> None:
        p.add_argument(
            "--scheme", default="dai", type=_scheme_spec, metavar="SPEC",
            help="defense to install: a scheme key or a '+'-joined stack "
                 "such as dai+arpwatch (default: dai)",
        )
        p.add_argument(
            "--technique", default="reply",
            choices=["reply", "request", "gratuitous", "reactive"],
            help="poisoning technique (default: reply)",
        )
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--hosts", type=int, default=4)
        p.add_argument("--duration", type=float, default=12.0,
                       help="attack duration in simulated seconds")
        p.add_argument(
            "--faults", default=None, type=_fault_spec, metavar="SPEC",
            help="link/host impairments, e.g. loss=0.05,jitter=2ms "
                 "(default: clean LAN)",
        )
        p.add_argument("--out", default=None, metavar="PATH",
                       help="output file (default: stdout)")

    trace = sub.add_parser(
        "trace",
        help="trace one poisoning experiment and export the event log",
    )
    _obs_experiment_args(trace)
    trace.add_argument(
        "--format", default="chrome", choices=["chrome", "jsonl"],
        help="chrome = trace-event JSON for Perfetto; jsonl = one event "
             "per line (default: chrome)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run one poisoning experiment and dump the metrics registry",
    )
    _obs_experiment_args(metrics)
    metrics.add_argument(
        "--format", default="prometheus", choices=["prometheus", "json"],
        help="Prometheus text exposition or raw JSON snapshot "
             "(default: prometheus)",
    )

    prof = sub.add_parser(
        "profile",
        help="run one poisoning experiment under the sampling wall-clock "
             "profiler and export collapsed stacks (flamegraph input)",
    )
    _obs_experiment_args(prof)
    prof.add_argument(
        "--interval", type=float, default=0.002, metavar="SECS",
        help="sampling interval in seconds (default: 0.002)",
    )
    prof.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the experiment N times under one profiler session "
             "(more samples, default: 1)",
    )

    top = sub.add_parser(
        "top",
        help="live per-worker progress view over campaign heartbeat files",
    )
    top.add_argument(
        "--heartbeat-dir", default=".repro_cache/heartbeats", metavar="DIR",
        help="directory the campaign writes heartbeats to "
             "(default: .repro_cache/heartbeats)",
    )
    top.add_argument(
        "--stall-after", type=float, default=10.0, metavar="SECS",
        help="grade a worker stalled after this long without progress",
    )
    top.add_argument(
        "--watch", type=float, default=None, metavar="SECS",
        help="refresh every SECS seconds instead of printing once",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="with --watch: stop after N refreshes (default: forever)",
    )

    rec = sub.add_parser(
        "recommend", help="rank schemes for a described deployment"
    )
    rec.add_argument("--static-addressing", action="store_true",
                     help="no DHCP on this network")
    rec.add_argument("--no-host-changes", action="store_true",
                     help="hosts cannot be modified (BYOD/guest)")
    rec.add_argument("--managed-switches", action="store_true")
    rec.add_argument("--infrastructure", action="store_true",
                     help="new servers/monitor stations can be deployed")
    rec.add_argument("--max-cost", default="high",
                     choices=["free", "low", "medium", "high"])
    rec.add_argument("--prevention", action="store_true",
                     help="require prevention, not just detection")

    analyze = sub.add_parser(
        "analyze", help="run the offline detection battery over a pcap file"
    )
    analyze.add_argument("pcap", help="path to an Ethernet pcap")
    analyze.add_argument(
        "--scan-threshold", type=int, default=16,
        help="distinct ARP targets per window that count as a sweep",
    )

    replay = sub.add_parser(
        "replay",
        help="stream a frame trace through a detection scheme's monitor tap",
    )
    replay_src = replay.add_mutually_exclusive_group(required=True)
    replay_src.add_argument(
        "--pcap", default=None, metavar="PATH",
        help="replay an Ethernet pcap capture from PATH",
    )
    replay_src.add_argument(
        "--synthetic", default=None, metavar="PARAMS", nargs="?", const="",
        help="replay a seeded synthetic trace; PARAMS is the source "
             "spec tail, e.g. rate=500k,frames=1m,churn=0.2 (omit for "
             "the default mix)",
    )
    replay.add_argument(
        "--rate", default=None, metavar="FPS",
        help="synthetic trace timestamp rate in frames/sec, with k/m "
             "suffixes (shorthand for rate= in --synthetic PARAMS)",
    )
    replay.add_argument(
        "--scheme", default=None, type=_scheme_spec, metavar="SPEC",
        help="defense to attach to the replay station — monitor-placed "
             "schemes only (default: none, measure raw ingest)",
    )
    replay.add_argument(
        "--window", type=int, default=1024, metavar="N",
        help="bounded in-flight window in frames; memory stays O(N) "
             "regardless of trace size (default: 1024; 1 forces the "
             "per-frame fidelity path)",
    )
    replay.add_argument(
        "--drain", type=float, default=0.0, metavar="SECS",
        help="run scheme timers SECS trace-seconds past the last frame",
    )
    replay.add_argument("--seed", type=int, default=7)
    replay.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a Prometheus text dump (replay counters, ingest "
             "histograms, per-scheme alert totals) to PATH",
    )
    replay.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="stream a live JSONL time series of the run to PATH",
    )
    replay.add_argument(
        "--telemetry-cadence", type=int, default=2000, metavar="N",
        help="snapshot every N ingested frames (default: 2000)",
    )

    bench = sub.add_parser(
        "bench", help="run the wire fast-path microbenchmarks"
    )
    bench.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if any benchmark regresses below the baseline",
    )
    bench.add_argument(
        "--update", action="store_true",
        help="write the current results as the new baseline",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="baseline JSON path (default: BENCH_wire.json at the repo root)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller iteration counts (CI smoke mode)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=None,
        help="fraction of baseline throughput that still passes (default 0.5)",
    )
    bench.add_argument(
        "--no-batch", action="store_true",
        help="disable coalesced event dispatch for this run (gates the "
        "per-frame data plane; batch-only baseline keys are skipped)",
    )
    bench.add_argument(
        "--no-scale", action="store_true",
        help="skip the campus-scale suite when checking (scale baseline "
        "keys are then allowed missing)",
    )
    bench.add_argument(
        "--no-replay", action="store_true",
        help="skip the replay-ingest suite when checking (replay "
        "baseline keys are then allowed missing)",
    )

    scale = sub.add_parser(
        "scale", help="run the campus-scale (spine-leaf, sharded) benchmarks"
    )
    scale.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if any benchmark regresses below BENCH_scale.json",
    )
    scale.add_argument(
        "--update", action="store_true",
        help="write the current results as the new scale baseline",
    )
    scale.add_argument(
        "--baseline", default=None,
        help="baseline JSON path (default: BENCH_scale.json at the repo root)",
    )
    scale.add_argument(
        "--quick", action="store_true",
        help="1k-host cells only, short runs (CI smoke mode; the 10k-host "
        "cell is full-mode only)",
    )
    scale.add_argument(
        "--tolerance", type=float, default=None,
        help="fraction of baseline throughput that still passes (default 0.5)",
    )
    return parser


def _cmd_list_schemes(out) -> int:
    for profile in all_profiles():
        out.write(
            f"{profile.key:15s} {profile.kind:10s} @{profile.placement:12s} "
            f"{profile.display_name}\n"
        )
    return 0


def _cmd_artifact(args, out) -> int:
    registry = _TABLES if args.command == "table" else _FIGURES
    artifact = registry[args.number]()
    out.write((artifact.csv if args.csv else artifact.rendered) + "\n")
    return 0


def _campaign_grid(args):
    """Translate CLI flags into (schemes, variants, scenario overrides)."""
    from repro.campaign.spec import EXPERIMENTS

    kind = EXPERIMENTS[args.experiment]
    if args.schemes == "all":
        keys = list(SCHEME_FACTORIES)
        schemes = keys if kind.requires_scheme else [None] + keys
    else:
        schemes = [
            None if key == "none" else key
            for key in args.schemes.split(",")
            if key
        ]

    scenario = {}
    if args.experiment == "effectiveness":
        variants = [{"technique": t} for t in args.techniques.split(",") if t]
        scenario = {"n_hosts": args.hosts, "attack_duration": args.duration,
                    "warmup": 3.0, "cooldown": 2.0}
    elif args.experiment == "detection-latency":
        variants = [{"poison_rate": float(r)} for r in args.rates.split(",") if r]
        scenario = {"n_hosts": args.hosts, "attack_duration": args.duration,
                    "warmup": 3.0, "cooldown": 2.0}
    elif args.experiment == "false-positives":
        variants = [{"duration": max(args.duration, 60.0)}]
        scenario = {"n_hosts": args.hosts}
    elif args.experiment in ("overhead", "footprint"):
        variants = [{"n_hosts": args.hosts}]
    elif args.experiment == "controller-failover":
        variants = [{"fail_mode": m} for m in args.fail_modes.split(",") if m]
        scenario = {"n_hosts": args.hosts, "attack_duration": args.duration,
                    "cooldown": 2.0}
    elif args.experiment == "dhcp-starvation":
        variants = [{"duration": args.duration}]
        scenario = {"n_hosts": args.hosts}
    elif args.experiment == "replay":
        if args.schemes == "all":
            # Only monitor-placed schemes can attach to a replay station
            # (a trace has no switch fabric or protected hosts).
            schemes = [None] + [
                p.key for p in all_profiles() if p.placement == "monitor"
            ]
        # With a --traces sweep the axis supplies each cell's trace; the
        # default variant would collide with it (axis-vs-variant check).
        variants = [] if getattr(args, "traces", None) else list(
            kind.default_variants
        )
    else:  # resolution-latency, campus-churn
        variants = list(kind.default_variants)

    if getattr(args, "variant_overrides", None):
        overrides = dict(
            _parse_variant_override(item) for item in args.variant_overrides
        )
        unknown = set(overrides) - set(kind.variant_keys)
        if unknown:
            raise SystemExit(
                f"--variant keys {sorted(unknown)} not valid for "
                f"{args.experiment!r}; allowed: {sorted(kind.variant_keys)}"
            )
        variants = [{**dict(v), **overrides} for v in variants] or [overrides]
        # Overrides collapse cells that only differed on an overridden key.
        deduped = []
        for v in variants:
            if v not in deduped:
                deduped.append(v)
        variants = deduped
    return tuple(schemes), tuple(variants), scenario


def _parse_variant_override(item: str):
    """``key=value`` with int/float coercion (``shards=2`` -> 2)."""
    key, sep, raw = item.partition("=")
    if not sep or not key:
        raise SystemExit(f"--variant expects KEY=VALUE, got {item!r}")
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            continue
    return key, raw


def _cmd_campaign(args, out) -> int:
    from repro.campaign import (
        CampaignSpec,
        ResultCache,
        run_campaign,
        to_artifact,
    )

    schemes, variants, scenario = _campaign_grid(args)
    spec = CampaignSpec(
        experiment=args.experiment,
        schemes=schemes,
        variants=variants,
        seeds=args.seeds,
        root_seed=args.root_seed,
        scenario=scenario,
        faults=tuple(args.faults) if args.faults else (None,),
        traces=tuple(args.traces) if getattr(args, "traces", None) else (None,),
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    # Parallel runs get the watchdog by default, living inside the cache
    # directory; --no-cache promises to leave no droppings behind, so
    # there heartbeats stay opt-in via an explicit --heartbeat-dir.
    heartbeat_dir = args.heartbeat_dir
    if heartbeat_dir is None and args.jobs > 1 and not args.no_cache:
        from pathlib import Path

        heartbeat_dir = str(Path(args.cache_dir) / "heartbeats")

    telemetry = None
    previous_recorder = None
    if args.telemetry_out:
        from repro.obs import live

        telemetry = live.TelemetryRecorder(
            cadence_events=args.telemetry_cadence, out=args.telemetry_out
        )
        previous_recorder = live.install(telemetry)
    try:
        campaign = run_campaign(
            spec,
            jobs=args.jobs,
            cache=cache,
            retries=args.retries,
            task_timeout=args.timeout,
            heartbeat_dir=heartbeat_dir,
            stall_after=args.stall_after,
        )
    finally:
        if telemetry is not None:
            from repro.obs import live

            live.install(previous_recorder)
            telemetry.close()
    artifact = to_artifact(campaign)
    out.write((artifact.csv if args.csv else artifact.rendered) + "\n")
    out.write(
        f"# campaign: {campaign.total_tasks} tasks, "
        f"{campaign.cache_hits} cache hits "
        f"({campaign.cache_hit_rate:.0%}), {campaign.executed} executed, "
        f"{len(campaign.failures)} failed, jobs={campaign.jobs}, "
        f"{campaign.elapsed:.2f}s\n"
    )
    from repro.perf import PERF

    # Worker counters are shipped back as _obs deltas and merged into the
    # parent registry (and PERF, via its merge hook) — so with --jobs > 1
    # this line now reflects the whole campaign, not just the coordinator.
    if campaign.worker_metrics_merged:
        scope = f"merged from {campaign.worker_metrics_merged} worker tasks"
    elif campaign.jobs == 1:
        scope = "in-process"
    else:
        scope = "coordinator only"
    out.write(f"# perf ({scope}): {PERF.summary()}\n")
    if telemetry is not None:
        from pathlib import Path

        # Count lines in the file, not telemetry.written: with --jobs > 1
        # fork-workers wrote their own interleaved series to the same path.
        path = Path(args.telemetry_out)
        snapshots = (
            sum(1 for line in path.read_text().splitlines() if line.strip())
            if path.exists()
            else 0
        )
        out.write(
            f"# telemetry: {snapshots} snapshots in {args.telemetry_out} "
            f"(cadence {args.telemetry_cadence} events)\n"
        )
    if campaign.heartbeat_dir is not None:
        from collections import Counter as _Counter

        states = _Counter(h.state for h in campaign.worker_health)
        state_text = (
            " ".join(f"{k}={v}" for k, v in sorted(states.items())) or "none"
        )
        out.write(
            f"# watchdog: {len(campaign.worker_health)} workers ({state_text}), "
            f"{campaign.worker_stalls} stall episodes "
            f"(watchdog_stalls_total), heartbeats in {campaign.heartbeat_dir}\n"
        )
    if args.metrics_out:
        from pathlib import Path

        from repro.campaign.aggregate import publish_metrics
        from repro.obs import REGISTRY, to_prometheus

        published = publish_metrics(campaign)
        Path(args.metrics_out).write_text(to_prometheus(REGISTRY.snapshot()))
        out.write(
            f"# metrics: {published} cell observations written to "
            f"{args.metrics_out}\n"
        )
    for failure in campaign.failures:
        out.write(
            f"# FAILED {failure.task.scheme_label} "
            f"{failure.task.cell[1]} trial={failure.task.trial} "
            f"after {failure.attempts} attempt(s): {failure.error}\n"
        )
    return 1 if campaign.failures else 0


def _obs_scenario(args) -> ScenarioConfig:
    return ScenarioConfig(
        seed=args.seed,
        n_hosts=args.hosts,
        attack_duration=args.duration,
        warmup=3.0,
        cooldown=2.0,
        fault_spec=getattr(args, "faults", None),
    )


def _write_artifact(args, out, text: str, summary_lines: list[str]) -> None:
    """Artifact to --out (or stdout); summary comments never pollute the
    artifact when it goes to a file."""
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        out.write(f"# written to {args.out}\n")
        for line in summary_lines:
            out.write(line + "\n")
    else:
        out.write(text if text.endswith("\n") else text + "\n")


def _cmd_trace(args, out) -> int:
    import json

    from repro.obs import TRACER, to_chrome_trace, to_jsonl
    from repro.perf import PERF

    TRACER.reset()
    TRACER.enable()
    capture_drops_before = PERF.trace_drops
    try:
        result = api.run(
            "effectiveness",
            _obs_scenario(args),
            scheme=args.scheme,
            technique=args.technique,
        )
    finally:
        TRACER.disable()
    capture_drops = PERF.trace_drops - capture_drops_before

    events = list(TRACER.events)
    provenance = TRACER.provenance
    alerts = [e for e in events if e.name == "scheme.alert"]
    resolved = 0
    for alert in alerts:
        fid = alert.attrs.get("frame")
        origin = provenance.origin_of(fid) if fid is not None else None
        if origin is not None and origin.startswith("attack:"):
            resolved += 1

    if args.format == "chrome":
        text = json.dumps(to_chrome_trace(events, provenance.frames))
    else:
        text = to_jsonl(events)
    summary = [
        f"# trace: {len(events)} events ({TRACER.dropped} span-ring dropped), "
        f"{len(provenance)} frames tracked, "
        f"{capture_drops} frame-capture dropped "
        f"(PERF.trace_drops={PERF.trace_drops})",
        f"# alerts: {len(alerts)} raised, {resolved} with provenance "
        f"resolving to an attack injection",
        f"# outcome: scheme={args.scheme} technique={args.technique} "
        f"{result.outcome}",
    ]
    _write_artifact(args, out, text, summary)
    return 0


def _cmd_metrics(args, out) -> int:
    import json

    from repro.obs import REGISTRY, to_prometheus

    api.run(
        "effectiveness",
        _obs_scenario(args),
        scheme=args.scheme,
        technique=args.technique,
    )
    snapshot = REGISTRY.snapshot()
    if args.format == "prometheus":
        text = to_prometheus(snapshot)
    else:
        text = json.dumps(snapshot, indent=2, sort_keys=True)
    _write_artifact(
        args, out, text,
        [f"# metrics: {len(snapshot['metrics'])} families, "
         f"{len(snapshot['collectors'])} collector blocks"],
    )
    return 0


def _cmd_profile(args, out) -> int:
    from repro.obs.profiler import SamplingProfiler

    profiler = SamplingProfiler(interval=args.interval)
    profiler.start()
    try:
        for _ in range(max(1, args.repeat)):
            result = api.run(
                "effectiveness",
                _obs_scenario(args),
                scheme=args.scheme,
                technique=args.technique,
            )
    finally:
        profiler.stop()

    attribution = ", ".join(
        f"{name} {share:.1%}" for name, share in profiler.attribution().items()
    )
    summary = [
        f"# profile: {profiler.sample_count} samples at "
        f"{args.interval * 1000:.1f}ms interval over "
        f"{max(1, args.repeat)} run(s)",
        f"# subsystems: {attribution or 'none'}",
        f"# attributed: {profiler.attributed_fraction():.1%} of samples "
        f"to named subsystems",
        f"# outcome: scheme={args.scheme} technique={args.technique} "
        f"{result.outcome}",
    ]
    _write_artifact(args, out, profiler.collapsed(), summary)
    if not args.out:
        for line in summary:
            out.write(line + "\n")
    return 0


def _cmd_top(args, out) -> int:
    import time as _time
    from pathlib import Path

    from repro.obs.watchdog import Watchdog, render_health

    directory = Path(args.heartbeat_dir)
    watchdog = Watchdog(directory, stall_after=args.stall_after)
    iteration = 0
    while True:
        healths = watchdog.scan()
        if not directory.is_dir():
            out.write(f"# no heartbeat directory at {directory}\n")
            return 1
        out.write(render_health(healths) + "\n")
        out.write(
            f"# watchdog: {len(healths)} workers, "
            f"{watchdog.stall_episodes} stall episodes\n"
        )
        iteration += 1
        if args.watch is None:
            return 0
        if args.iterations is not None and iteration >= args.iterations:
            return 0
        _time.sleep(args.watch)
        out.write("\n")


def _cmd_bench(args, out) -> int:
    from pathlib import Path

    from repro.perf import PERF
    from repro.perf.bench import (
        BATCH_ONLY_BENCHMARKS,
        DEFAULT_TOLERANCE,
        check,
        format_results,
        load_baseline,
        run_suite,
        write_baseline,
    )

    if args.no_batch:
        # Process-wide: every Simulator built by the suite inherits it.
        import repro.sim.simulator as _simulator

        _simulator.DEFAULT_BATCHING = False

    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:  # default: BENCH_wire.json next to the source tree
        baseline_path = Path(__file__).resolve().parents[2] / "BENCH_wire.json"

    PERF.reset()
    results = run_suite(quick=args.quick)

    baseline = load_baseline(baseline_path) if baseline_path.exists() else None
    out.write(format_results(results, baseline) + "\n")
    out.write(f"# perf: {PERF.summary()}\n")

    if args.update:
        if args.no_batch:
            out.write("# refusing --update with --no-batch: the baseline "
                      "must carry the batched headline\n")
            return 2
        write_baseline(baseline_path, results)
        out.write(f"# baseline written to {baseline_path}\n")
        return 0
    if args.check:
        if baseline is None:
            out.write(f"# no baseline at {baseline_path}; run with --update\n")
            return 1
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        allow_missing = BATCH_ONLY_BENCHMARKS if args.no_batch else frozenset()

        # Fold the campus-scale gate in: BENCH_scale.json keys join the
        # baseline, and whichever of them this run legitimately skips
        # (--no-scale / --no-batch: the churn cells measure the batched
        # plane; --quick: the 10k cell is full-mode only) joins the
        # allow-missing set — same mechanism as BATCH_ONLY_BENCHMARKS.
        from repro.perf.scale import (
            DEFAULT_SCALE_BASELINE,
            SCALE_BENCHMARKS,
            SCALE_FULL_ONLY,
            run_scale_suite,
        )

        scale_path = baseline_path.parent / DEFAULT_SCALE_BASELINE
        if scale_path.exists():
            baseline = {**baseline, **load_baseline(scale_path)}
            if args.no_scale or args.no_batch:
                allow_missing = allow_missing | SCALE_BENCHMARKS
            else:
                scale_results = run_scale_suite(quick=args.quick)
                out.write(format_results(scale_results, baseline) + "\n")
                results = {**results, **scale_results}
                if args.quick:
                    allow_missing = allow_missing | SCALE_FULL_ONLY

        # And the replay-ingest gate: same fold, BENCH_replay.json keys.
        # (The replay engine delivers straight into the monitor RX path,
        # not through coalesced event dispatch, so --no-batch does not
        # skip it — only an explicit --no-replay does.)
        from repro.perf.replay import (
            DEFAULT_REPLAY_BASELINE,
            REPLAY_BENCHMARKS,
            run_replay_suite,
        )

        replay_path = baseline_path.parent / DEFAULT_REPLAY_BASELINE
        if replay_path.exists():
            baseline = {**baseline, **load_baseline(replay_path)}
            if args.no_replay:
                allow_missing = allow_missing | REPLAY_BENCHMARKS
            else:
                replay_results = run_replay_suite(quick=args.quick)
                out.write(format_results(replay_results, baseline) + "\n")
                results = {**results, **replay_results}

        failures = check(results, baseline, tolerance, allow_missing)
        for failure in failures:
            out.write(f"# REGRESSION {failure}\n")
        if failures:
            return 1
        out.write(f"# bench check passed (tolerance {tolerance})\n")
    return 0


def _cmd_scale(args, out) -> int:
    from pathlib import Path

    from repro.perf import PERF
    from repro.perf.bench import (
        DEFAULT_TOLERANCE,
        check,
        format_results,
        load_baseline,
        write_baseline,
    )
    from repro.perf.scale import (
        DEFAULT_SCALE_BASELINE,
        SCALE_FULL_ONLY,
        run_scale_suite,
    )

    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = (
            Path(__file__).resolve().parents[2] / DEFAULT_SCALE_BASELINE
        )

    PERF.reset()
    results = run_scale_suite(quick=args.quick)

    baseline = load_baseline(baseline_path) if baseline_path.exists() else None
    out.write(format_results(results, baseline) + "\n")
    out.write(f"# perf: {PERF.summary()}\n")

    if args.update:
        if args.quick:
            out.write("# refusing --update with --quick: the baseline must "
                      "carry the 10k-host cell\n")
            return 2
        write_baseline(baseline_path, results)
        out.write(f"# baseline written to {baseline_path}\n")
        return 0
    if args.check:
        if baseline is None:
            out.write(f"# no baseline at {baseline_path}; run with --update\n")
            return 1
        tolerance = (
            args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        )
        allow_missing = SCALE_FULL_ONLY if args.quick else frozenset()
        failures = check(results, baseline, tolerance, allow_missing)
        for failure in failures:
            out.write(f"# REGRESSION {failure}\n")
        if failures:
            return 1
        out.write(f"# scale check passed (tolerance {tolerance})\n")
    return 0


def _cmd_replay(args, out) -> int:
    from repro.errors import ReplayError, SchemeError

    if args.pcap is not None:
        if args.rate is not None:
            raise SystemExit("--rate only applies to --synthetic traces")
        spec = f"pcap:{args.pcap}"
    else:
        tail = args.synthetic or ""
        if args.rate is not None:
            if "rate=" in tail:
                raise SystemExit(
                    "give the rate either as --rate or as rate= inside "
                    "--synthetic PARAMS, not both"
                )
            tail = f"rate={args.rate}" + (f",{tail}" if tail else "")
        spec = f"synthetic:{tail}"

    telemetry = None
    if args.telemetry_out:
        from repro.obs import live

        telemetry = live.TelemetryRecorder(
            cadence_events=args.telemetry_cadence, out=args.telemetry_out
        )
    try:
        result = api.run(
            "replay",
            ScenarioConfig(seed=args.seed),
            scheme=args.scheme,
            source=spec,
            window=args.window,
            drain=args.drain,
            telemetry=telemetry,
        )
    except (ReplayError, SchemeError) as exc:
        raise SystemExit(f"replay: {exc}") from None
    finally:
        if telemetry is not None:
            telemetry.close()

    label = result.scheme if result.scheme is not None else "none"
    out.write(
        f"replay: {result.frames} frames ({result.bytes} bytes) "
        f"from {result.source}\n"
        f"  scheme={label} alerts={result.alerts} "
        f"delivered={result.delivered} mode={result.mode} "
        f"window={result.window} peak_in_flight={result.peak_in_flight}\n"
        f"  {result.frames_per_sec:,.0f} frames/sec "
        f"(wall {result.wall_seconds:.3f}s, "
        f"trace span {result.sim_seconds:.3f}s)\n"
    )
    if telemetry is not None:
        out.write(
            f"# telemetry: {telemetry.written} snapshots in "
            f"{args.telemetry_out} (cadence {args.telemetry_cadence} events)\n"
        )
    if args.metrics_out:
        from pathlib import Path

        from repro.obs import REGISTRY, to_prometheus

        Path(args.metrics_out).write_text(to_prometheus(REGISTRY.snapshot()))
        out.write(f"# metrics written to {args.metrics_out}\n")
    return 0


def _cmd_demo(args, out) -> int:
    if args.attack == "mitm":
        return _demo_mitm(args, out)
    if args.attack == "dos":
        return _demo_dos(args, out)
    if args.attack == "flood":
        return _demo_flood(args, out)
    return _demo_starvation(args, out)


def _demo_mitm(args, out) -> int:
    config = ScenarioConfig(
        seed=args.seed, attack_duration=args.duration, fault_spec=args.faults
    )
    result = api.run(
        "effectiveness", config, scheme=args.scheme, technique="reply"
    )
    out.write(
        f"scheme={result.scheme} technique=reply outcome={result.outcome}\n"
        f"victim poisoned for {result.victim_poisoned_seconds:.1f}s; "
        f"{result.packets_intercepted} packets intercepted; "
        f"{result.tp_alerts} true alerts, {result.fp_alerts} false alerts\n"
    )
    return 0


def _demo_dos(args, out) -> int:
    from repro.attacks import BlackholeDos
    from repro.core.experiment import Scenario

    scenario = Scenario(ScenarioConfig(seed=args.seed))
    if args.scheme is not None:
        from repro.schemes.registry import make_defense

        make_defense(args.scheme).install(lan=scenario.lan,
                                         protected=scenario.protected_hosts())
    scenario.warm_caches()
    replies = []
    cancel = scenario.sim.call_every(
        0.5,
        lambda: scenario.victim.ping(
            scenario.gateway.ip, on_reply=lambda s, r: replies.append(s)
        ),
    )
    before = scenario.sim.now
    dos = BlackholeDos(
        scenario.attacker, [scenario.victim], target_ip=scenario.gateway.ip
    )
    dos.start()
    scenario.sim.run(until=before + args.duration)
    dos.stop()
    cancel()
    expected = int(args.duration / 0.5)
    out.write(
        f"blackhole DoS for {args.duration:.0f}s: victim got {len(replies)}"
        f"/{expected} gateway replies "
        f"({'service denied' if len(replies) < expected / 2 else 'service survived'})\n"
    )
    return 0


def _demo_flood(args, out) -> int:
    from repro.attacks import MacFlood
    from repro.core.experiment import Scenario

    scenario = Scenario(ScenarioConfig(seed=args.seed))
    if args.scheme is not None:
        from repro.schemes.registry import make_defense

        make_defense(args.scheme).install(lan=scenario.lan,
                                         protected=scenario.protected_hosts())
    flood = MacFlood(scenario.attacker)
    flood.start()
    scenario.sim.run(until=scenario.sim.now + min(args.duration, 5.0))
    flood.stop()
    switch = scenario.lan.switch
    out.write(
        f"sent {flood.frames_sent} flood frames; CAM {len(switch.cam)}/"
        f"{switch.cam.capacity} ({'FAIL-OPEN' if switch.is_fail_open() else 'holding'})\n"
    )
    return 0


def _demo_starvation(args, out) -> int:
    config = ScenarioConfig(seed=args.seed, fault_spec=args.faults)
    result = api.run(
        "dhcp-starvation",
        config,
        scheme=args.scheme,
        duration=min(args.duration, 30.0),
    )
    out.write(
        f"starvation: pool {result.pool_free}/{result.pool_size} free, "
        f"{result.leases_captured} leases captured "
        f"({'EXHAUSTED' if result.exhausted else 'surviving'})\n"
    )
    return 0


def main(argv: Optional[list[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list-schemes":
        return _cmd_list_schemes(out)
    if args.command in ("table", "figure"):
        return _cmd_artifact(args, out)
    if args.command == "demo":
        return _cmd_demo(args, out)
    if args.command == "campaign":
        return _cmd_campaign(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "metrics":
        return _cmd_metrics(args, out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "top":
        return _cmd_top(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "scale":
        return _cmd_scale(args, out)
    if args.command == "replay":
        return _cmd_replay(args, out)
    if args.command == "analyze":
        from repro.analysis.forensics import OfflineArpAnalyzer
        from repro.analysis.pcap import iter_pcap

        analyzer = OfflineArpAnalyzer()
        analyzer.scan_threshold = args.scan_threshold
        summary = analyzer.analyze(iter_pcap(args.pcap))
        out.write(summary.render() + "\n")
        return 0
    if args.command == "recommend":
        from repro.core.recommend import Deployment, recommend

        env = Deployment(
            uses_dhcp=not args.static_addressing,
            can_modify_hosts=not args.no_host_changes,
            has_managed_switches=args.managed_switches,
            can_run_infrastructure=args.infrastructure,
            max_cost=args.max_cost,
            want_prevention=args.prevention,
        )
        out.write(recommend(env).render() + "\n")
        return 0
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
