"""Frame sources: the streaming input side of the replay engine.

A :class:`FrameSource` is an iterable of ``(timestamp, raw_bytes)``
pairs with ``close()`` and progress accounting (``frames_read`` /
``bytes_read``).  Sources are *pull-based*: nothing is read until the
consumer asks, so the engine's bounded in-flight window is the only
buffering anywhere in the pipeline and multi-GB traces replay in
O(window) memory.

Three implementations:

* :class:`PcapSource` — streams a classic libpcap capture through
  :func:`repro.analysis.pcap.iter_pcap` (fixed read buffer, never
  materializes the file);
* :class:`SyntheticSource` — a seeded, re-iterable generator of ARP
  churn plus a benign TCP/UDP mix at a configurable rate, following the
  ``repro.faults`` rng-stream discipline (`random.Random(f"{seed}/…")`);
* :class:`MemorySource` — an in-memory list for tests (exact float
  timestamps, no pcap microsecond quantization).

Construction is unified behind :func:`open_source` and a compact spec
grammar (``pcap:path/to/file.pcap``, ``synthetic:rate=50k,churn=0.2``)
whose canonical ``spec_string`` round-trips through ``to_dict`` /
``from_dict`` — which is what campaign cache keys hash.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ReplayError
from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.tcp import TcpFlags, TcpSegment
from repro.packets.udp import UdpDatagram

__all__ = [
    "FrameSource",
    "MemorySource",
    "PcapSource",
    "SyntheticSource",
    "open_source",
    "parse_rate",
]


def parse_rate(value: Union[str, int, float]) -> float:
    """Parse a frame rate with ``k``/``m`` suffixes (``"500k"`` → 500000)."""
    if isinstance(value, (int, float)):
        rate = float(value)
    else:
        text = str(value).strip().lower()
        scale = 1.0
        if text.endswith("k"):
            scale, text = 1e3, text[:-1]
        elif text.endswith("m"):
            scale, text = 1e6, text[:-1]
        try:
            rate = float(text) * scale
        except ValueError:
            raise ReplayError(
                f"invalid rate {value!r} (expected a number, optionally "
                "suffixed k or m)"
            ) from None
    if rate <= 0:
        raise ReplayError(f"rate must be positive, got {value!r}")
    return rate


def _fmt_num(value: float) -> str:
    """Canonical number formatting for spec strings (ints stay ints)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class FrameSource:
    """Protocol base: an iterator of ``(timestamp, raw_bytes)`` pairs.

    Subclasses implement :meth:`__iter__` (re-iterable: each call starts
    the stream over, deterministically) and keep :attr:`frames_read` /
    :attr:`bytes_read` current as frames are pulled.  ``close()``
    releases any underlying handle; sources are also context managers.
    """

    #: Spec-grammar kind tag (``pcap`` / ``synthetic`` / ``memory``).
    kind: str = "?"

    def __init__(self) -> None:
        self.frames_read = 0
        self.bytes_read = 0

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release underlying resources (idempotent)."""

    def __enter__(self) -> "FrameSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- progress accounting ------------------------------------------
    @property
    def total_frames(self) -> Optional[int]:
        """Expected frame count, when known up front (progress bars)."""
        return None

    # -- spec round-trip ----------------------------------------------
    @property
    def spec_string(self) -> str:
        """Canonical ``kind:params`` spec; feeds campaign cache keys."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "spec": self.spec_string}

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "FrameSource":
        spec = data.get("spec")
        if not isinstance(spec, str):
            raise ReplayError(f"source payload has no spec string: {dict(data)!r}")
        return open_source(spec)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec_string!r})"


class PcapSource(FrameSource):
    """Stream a classic libpcap capture, one frame at a time.

    Wraps :func:`repro.analysis.pcap.iter_pcap`, so the file is read
    through a fixed-size buffer and a capture that ends mid-record
    raises :class:`~repro.errors.PcapError` naming the byte offset.
    Timestamps carry pcap's microsecond resolution.
    """

    kind = "pcap"

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__()
        self.path = Path(path)
        if not self.path.exists():
            raise ReplayError(f"pcap source: no such file {str(self.path)!r}")

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        from repro.analysis.pcap import iter_pcap

        self.frames_read = 0
        self.bytes_read = 0
        for record in iter_pcap(self.path):
            self.frames_read += 1
            self.bytes_read += len(record.frame)
            yield record.time, record.frame

    @property
    def spec_string(self) -> str:
        return f"pcap:{self.path}"


class MemorySource(FrameSource):
    """An in-memory source for tests: exact float timestamps, no I/O."""

    kind = "memory"

    def __init__(self, frames: Sequence[Tuple[float, bytes]]) -> None:
        super().__init__()
        self._frames: List[Tuple[float, bytes]] = [
            (float(ts), bytes(raw)) for ts, raw in frames
        ]

    @classmethod
    def from_records(cls, records) -> "MemorySource":
        """Build from :class:`~repro.sim.trace.TraceRecord` objects."""
        return cls([(rec.time, rec.frame) for rec in records])

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        self.frames_read = 0
        self.bytes_read = 0
        for ts, raw in self._frames:
            self.frames_read += 1
            self.bytes_read += len(raw)
            yield ts, raw

    @property
    def total_frames(self) -> int:
        return len(self._frames)

    @property
    def spec_string(self) -> str:
        # Not spec-constructible (the payload lives in memory); campaigns
        # must use pcap/synthetic sources.
        return f"memory:{len(self._frames)}"


#: SyntheticSource defaults, in canonical spec order.
_SYNTH_DEFAULTS: Dict[str, float] = {
    "rate": 50_000.0,  # frames per trace second
    "frames": 100_000.0,  # stream length
    # 5% ARP is already far above real LAN mixes (<1%) — enough churn
    # signal to exercise the schemes without turning the stream into an
    # ARP flood.
    "arp": 0.05,
    "churn": 0.1,  # fraction of ARP that rebinds an IP to a new MAC
    "hosts": 32.0,  # synthetic station count
    "seed": 7.0,
}


class SyntheticSource(FrameSource):
    """Seeded ARP churn plus a benign TCP/UDP mix at a configurable rate.

    The stream is a pure function of its parameters: every draw comes
    from ``random.Random(f"{seed}/replay/synthetic")`` (the
    ``repro.faults`` rng-stream discipline), and re-iterating restarts
    the stream identically.  ``churn`` is the fraction of ARP slots
    where a station's IP rebinds to a fresh locally-administered MAC and
    announces it — the flip/"changed" events arpwatch-style monitors
    alert on; the rest of the ARP share is benign gratuitous refreshes.

    Benign traffic cycles a pre-encoded pool of TCP and UDP frames
    between stations (~3:1, mirroring real LAN mixes), so the per-frame
    cost of the common case is a list index — the source sustains well
    past the engine's 500k frames/sec target.
    """

    kind = "synthetic"

    def __init__(
        self,
        rate: Union[str, int, float] = _SYNTH_DEFAULTS["rate"],
        frames: Union[str, int, float] = _SYNTH_DEFAULTS["frames"],
        arp: float = _SYNTH_DEFAULTS["arp"],
        churn: float = _SYNTH_DEFAULTS["churn"],
        hosts: int = int(_SYNTH_DEFAULTS["hosts"]),
        seed: int = int(_SYNTH_DEFAULTS["seed"]),
    ) -> None:
        super().__init__()
        self.rate = parse_rate(rate)
        self.frames = int(parse_rate(frames))  # k/m suffixes work here too
        if not 0.0 <= float(arp) <= 1.0:
            raise ReplayError(f"arp share must be in [0, 1], got {arp!r}")
        if not 0.0 <= float(churn) <= 1.0:
            raise ReplayError(f"churn must be in [0, 1], got {churn!r}")
        self.arp = float(arp)
        self.churn = float(churn)
        self.hosts = int(hosts)
        if self.hosts < 2:
            raise ReplayError(f"synthetic source needs >= 2 hosts, got {hosts!r}")
        if self.hosts > 0xFFFF:
            raise ReplayError(f"synthetic source caps at 65535 hosts, got {hosts!r}")
        self.seed = int(seed)

    # -- station addressing -------------------------------------------
    @staticmethod
    def _station_mac(index: int) -> MacAddress:
        # aa:... has the locally-administered bit set and the group bit
        # clear, so synthetic stations can never collide with the
        # realistic-OUI MACs simulated LANs allocate.
        return MacAddress(bytes((0xAA, 0x00, 0x00, 0x00, index >> 8, index & 0xFF)))

    @staticmethod
    def _station_ip(index: int) -> Ipv4Address:
        return Ipv4Address(bytes((10, 200, index >> 8, index & 0xFF)))

    @staticmethod
    def _churn_mac(serial: int) -> MacAddress:
        # Rebind targets: a distinct locally-administered range.
        return MacAddress(
            bytes((0xAE, 0x00, 0x00, (serial >> 16) & 0xFF, (serial >> 8) & 0xFF, serial & 0xFF))
        )

    def _benign_pool(self, rng: random.Random) -> List[bytes]:
        """Pre-encode a pool of benign frames: mostly TCP, some UDP.

        The ~3:1 TCP:UDP split mirrors real LAN mixes; the pool is
        cycled during iteration so the common-case per-frame cost is a
        list index, not a packet encode.
        """
        pool: List[bytes] = []
        for slot in range(64):
            a = rng.randrange(self.hosts)
            b = rng.randrange(self.hosts)
            if b == a:
                b = (a + 1) % self.hosts
            src_ip, dst_ip = self._station_ip(a), self._station_ip(b)
            if slot % 4 == 3:
                payload = UdpDatagram(
                    src_port=40_000 + a % 1000,
                    dst_port=40_000 + b % 1000,
                    payload=bytes(rng.randrange(256) for _ in range(24)),
                ).encode(src_ip=src_ip, dst_ip=dst_ip)
                proto = IpProto.UDP
            else:
                payload = TcpSegment(
                    src_port=49_152 + a % 1000,
                    dst_port=(80, 443, 8080)[slot % 3],
                    seq=rng.randrange(1 << 32),
                    ack=rng.randrange(1 << 32),
                    flags=TcpFlags.ACK | (TcpFlags.PSH if slot % 2 else 0),
                    payload=bytes(rng.randrange(256) for _ in range(32)),
                ).encode(src_ip=src_ip, dst_ip=dst_ip)
                proto = IpProto.TCP
            packet = Ipv4Packet(
                src=src_ip, dst=dst_ip, proto=proto, payload=payload
            ).encode()
            pool.append(
                EthernetFrame(
                    dst=self._station_mac(b),
                    src=self._station_mac(a),
                    ethertype=EtherType.IPV4,
                    payload=packet,
                ).encode()
            )
        return pool

    def __iter__(self) -> Iterator[Tuple[float, bytes]]:
        rng = random.Random(f"{self.seed}/replay/synthetic")
        pool = self._benign_pool(rng)
        pool_len = len(pool)
        owner: Dict[int, MacAddress] = {
            i: self._station_mac(i) for i in range(self.hosts)
        }
        announce_cache: Dict[Tuple[int, MacAddress], bytes] = {}
        churn_serial = 0
        dt = 1.0 / self.rate
        arp_share = self.arp
        churn = self.churn
        n_hosts = self.hosts
        rnd = rng.random
        randrange = rng.randrange
        self.frames_read = 0
        self.bytes_read = 0
        frames_read = 0
        bytes_read = 0
        try:
            for i in range(self.frames):
                if rnd() < arp_share:
                    station = randrange(n_hosts)
                    if rnd() < churn:
                        churn_serial += 1
                        owner[station] = self._churn_mac(churn_serial)
                    mac = owner[station]
                    raw = announce_cache.get((station, mac))
                    if raw is None:
                        arp = ArpPacket.gratuitous(
                            sha=mac, spa=self._station_ip(station)
                        )
                        raw = EthernetFrame(
                            dst=BROADCAST_MAC,
                            src=mac,
                            ethertype=EtherType.ARP,
                            payload=arp.encode(),
                        ).encode()
                        announce_cache[(station, mac)] = raw
                else:
                    raw = pool[i % pool_len]
                frames_read += 1
                bytes_read += len(raw)
                yield i * dt, raw
        finally:
            self.frames_read = frames_read
            self.bytes_read = bytes_read

    @property
    def total_frames(self) -> int:
        return self.frames

    @property
    def spec_string(self) -> str:
        parts = []
        for key in ("rate", "frames", "arp", "churn", "hosts", "seed"):
            value = getattr(self, key)
            if float(value) != _SYNTH_DEFAULTS[key]:
                parts.append(f"{key}={_fmt_num(value)}")
        return "synthetic:" + ",".join(parts) if parts else "synthetic:"


def _parse_kv(body: str, *, allowed: Sequence[str], kind: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ReplayError(
                f"{kind} source spec: expected key=value, got {item!r}"
            )
        key, _, value = item.partition("=")
        key = key.strip()
        if key not in allowed:
            raise ReplayError(
                f"{kind} source spec: unknown parameter {key!r}; "
                f"allowed: {sorted(allowed)}"
            )
        if key in params:
            raise ReplayError(f"{kind} source spec: duplicate parameter {key!r}")
        params[key] = value.strip()
    return params


def open_source(
    spec: Union[str, Mapping[str, object], FrameSource],
) -> FrameSource:
    """Build a :class:`FrameSource` from a compact spec.

    Accepts a spec string (``pcap:path/to/file.pcap``,
    ``synthetic:rate=50k,churn=0.2,seed=7``), a ``to_dict`` payload, or
    an already-built source (returned unchanged).  Unknown kinds and
    parameters raise :class:`~repro.errors.ReplayError` naming the
    allowed set, so a typo'd campaign axis fails before any worker
    forks.
    """
    if isinstance(spec, FrameSource):
        return spec
    if isinstance(spec, Mapping):
        return FrameSource.from_dict(spec)
    text = str(spec).strip()
    kind, sep, body = text.partition(":")
    if not sep:
        raise ReplayError(
            f"source spec {text!r} has no kind prefix; expected "
            "'pcap:PATH' or 'synthetic:key=value,...'"
        )
    kind = kind.strip().lower()
    if kind == "pcap":
        if not body.strip():
            raise ReplayError("pcap source spec needs a path: 'pcap:PATH'")
        return PcapSource(body.strip())
    if kind == "synthetic":
        params = _parse_kv(
            body, allowed=tuple(_SYNTH_DEFAULTS), kind="synthetic"
        )
        kwargs: Dict[str, object] = {}
        for key, raw_value in params.items():
            if key in ("rate", "frames"):
                kwargs[key] = parse_rate(raw_value)
            elif key in ("arp", "churn"):
                try:
                    kwargs[key] = float(raw_value)
                except ValueError:
                    raise ReplayError(
                        f"synthetic source spec: {key}={raw_value!r} is not a number"
                    ) from None
            else:  # hosts, seed
                try:
                    kwargs[key] = int(raw_value)
                except ValueError:
                    raise ReplayError(
                        f"synthetic source spec: {key}={raw_value!r} is not an integer"
                    ) from None
        return SyntheticSource(**kwargs)
    raise ReplayError(
        f"unknown source kind {kind!r}; known: ['pcap', 'synthetic']"
    )
