"""The replay engine: pump a frame source through the monitor RX path.

This is the deployment half of the paper's framing — the schemes are
"things you point at live traffic", so :class:`ReplayEngine` stands up
the same station a passive IDS deployment uses (a promiscuous monitor
host with schemes attached to its frame taps) and drives it from any
:class:`~repro.replay.sources.FrameSource` instead of a simulated
switch mirror port.

Two delivery modes, picked automatically per run:

* **per-frame** — exact fidelity: every frame is delivered through
  ``Port.deliver`` → ``Host.on_frame`` at its own trace timestamp, and
  (when the tracer is enabled) registered with frame provenance so
  alerts resolve to trace positions.  Chosen whenever a per-frame
  ``observer`` is attached or ``TRACER`` is enabled.
* **batched** — throughput: frames accumulate in a bounded in-flight
  window and each chunk is handed to the PR 7 ``deliver_batch`` plane at
  the chunk's first timestamp (the same first-item-slot rule
  ``Simulator.coalesce`` uses).  Before delivery the chunk passes a
  kernel-BPF-style prefilter (``arp or udp port 67/68`` — exactly the
  capture filter arpwatch installs) so the benign majority never pays
  per-frame Python dispatch.  The prefilter is disabled automatically
  when an installed scheme overrides ``on_any_frame`` and therefore
  inspects non-ARP/DHCP traffic.

Either way the source is consumed *pull-based* behind the window, so a
multi-GB trace replays in O(window) memory — ``peak_in_flight`` records
the high-water mark and the bounded-memory test pins it to the window.

Timekeeping: the engine drives the simulation clock from trace
timestamps via :meth:`~repro.sim.Simulator.advance_to`, so scheme
timers (probe timeouts, periodic sweeps) fire in step with the stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.experiment import (
    RESULT_TYPES,
    ScenarioConfig,
    SerializableResult,
)
from repro.errors import ReplayError, SchemeError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.obs.registry import REGISTRY
from repro.obs.trace import TRACER
from repro.packets.ethernet import EtherType
from repro.replay.sources import FrameSource, open_source
from repro.schemes.base import Scheme
from repro.schemes.monitor_base import MonitorScheme
from repro.sim import Simulator
from repro.stack.host import Host

__all__ = [
    "ReplayEngine",
    "ReplayLan",
    "ReplayResult",
    "REPLAY_MONITOR_MAC",
    "_run_replay",
]

#: The replay station's MAC: locally administered, outside both the
#: realistic-OUI range simulated LANs allocate and the synthetic
#: source's ``aa:``/``ae:`` station ranges — a monitor scheme's
#: own-transmission filter must never match a trace frame.
REPLAY_MONITOR_MAC = MacAddress("02:52:45:50:4c:59")

#: Default bounded in-flight window (frames).
DEFAULT_WINDOW = 1024

_ET_ARP = b"\x08\x06"
_ET_IPV4 = b"\x08\x00"
_PROTO_UDP = b"\x11"
_DHCP_PORTS = (b"\x00\x43", b"\x00\x44")


def _maybe_dhcp(data: bytes) -> bool:
    """Raw-byte DHCP test: IPv4/UDP with either port in {67, 68}.

    Called only after the cheap proto-byte check matched UDP; reads the
    ports at the IHL-derived offsets, so IP options are handled.
    """
    if data[12:14] != _ET_IPV4 or len(data) < 38 or (data[14] >> 4) != 4:
        return False
    ihl = (data[14] & 0x0F) * 4
    ports = data[14 + ihl : 14 + ihl + 4]
    return ports[0:2] in _DHCP_PORTS or ports[2:4] in _DHCP_PORTS


def _interesting(data: bytes) -> bool:
    """The arpwatch capture filter: ``arp or (udp port 67 or 68)``.

    Raw-byte test, no decode.  The prefilter only ever *narrows* the
    batched path — anything needing full per-frame fidelity (tracing,
    observers, whole-traffic schemes) runs the unfiltered per-frame
    plane, so correctness never depends on this heuristic.
    """
    return data[12:14] == _ET_ARP or (
        data[23:24] == _PROTO_UDP and _maybe_dhcp(data)
    )


class _ObserverHost(Host):
    """A sniffer station: taps see everything, the stack stays out.

    A passive capture box does not run an ARP/IP stack over the traffic
    it records — the live monitor host does (its broadcast handling is
    part of the simulated LAN), but in replay that stack work would
    double-decode every ARP frame for no observable effect.  Frames
    addressed to the station itself (replies to its own active probes)
    still reach the stack, so probe bookkeeping works if a trace ever
    contains them.
    """

    def _frame_dispatch(self, frame, data) -> None:
        if self.frame_taps.hooks:
            self.frame_taps.emit(frame, data)
        if frame.dst == self.mac:
            if frame.ethertype == EtherType.ARP:
                self._arp_rx(frame)
            elif frame.ethertype == EtherType.IPV4:
                self._ip_rx(frame)


class ReplayLan:
    """The minimal LAN surface a monitor-placed scheme installs onto.

    Duck-types what :class:`~repro.l2.topology.Lan` exposes to
    :class:`~repro.schemes.monitor_base.MonitorScheme` (``sim``,
    ``hosts``, ``monitor``, ``true_bindings``) — the same trick
    :class:`~repro.l2.topology.Campus` uses — but with no switch fabric:
    frames arrive from a trace, not a mirror link.  ``inventory`` seeds
    ``true_bindings()`` for schemes that bootstrap from a static
    IP→MAC inventory (snort-style preconfiguration); learning schemes
    ignore it.
    """

    def __init__(
        self,
        sim: Simulator,
        inventory: Optional[Mapping[Ipv4Address, MacAddress]] = None,
    ) -> None:
        self.sim = sim
        self.hosts: Dict[str, Host] = {}
        self.monitor: Host = _ObserverHost(
            sim, "replay-monitor", mac=REPLAY_MONITOR_MAC
        )
        self.monitor.promiscuous = True
        # The station is an observer, not a participant: it must never
        # answer ARP or ICMP out of the trace it is replaying.
        self.monitor.arp_responder_enabled = False
        self.monitor.icmp_echo_enabled = False
        self.hosts[self.monitor.name] = self.monitor
        self._inventory: Dict[Ipv4Address, MacAddress] = dict(inventory or {})

    def true_bindings(self) -> Dict[Ipv4Address, MacAddress]:
        """The configured inventory (empty when replaying unknown traffic)."""
        return dict(self._inventory)

    def __repr__(self) -> str:
        return f"ReplayLan(monitor={self.monitor.name}, inventory={len(self._inventory)})"


@dataclass(frozen=True)
class ReplayResult(SerializableResult):
    """One replay run: stream size, throughput, and detection outcome."""

    source: str
    scheme: Optional[str]
    frames: int
    bytes: int
    #: Frames handed to the host RX path (after the batched-mode
    #: prefilter; equals ``frames`` in per-frame mode).
    delivered: int
    alerts: int
    #: Trace time span covered (last timestamp - first timestamp).
    sim_seconds: float
    wall_seconds: float
    window: int
    #: ``"batched"`` or ``"per-frame"``.
    mode: str
    #: In-flight high-water mark; bounded-memory invariant: <= window.
    peak_in_flight: int

    @property
    def frames_per_sec(self) -> float:
        """Sustained ingest throughput (the BENCH_replay gate metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.frames / self.wall_seconds


def _alerts_in(delta: Mapping[str, object]) -> int:
    """Total ``scheme_alerts_total`` across a registry delta."""
    family = delta.get("metrics", {}).get("scheme_alerts_total")
    if not family:
        return 0
    return int(sum(s["value"] for s in family.get("samples", ())))


def _overrides_on_any_frame(scheme: Scheme) -> bool:
    """Does any installed (leaf) scheme inspect every frame?"""
    leaves = getattr(scheme, "schemes", None) or [scheme]
    for leaf in leaves:
        if not isinstance(leaf, MonitorScheme):
            continue
        if type(leaf).on_any_frame is not MonitorScheme.on_any_frame:
            return True
    return False


class ReplayEngine:
    """Pump a :class:`FrameSource` through the monitor RX path.

    Construct, optionally :meth:`install` schemes, then :meth:`run` any
    number of sources.  The engine owns a :class:`ReplayLan`; the
    simulator may be shared (pass your own to attach telemetry first).
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        *,
        window: int = DEFAULT_WINDOW,
        inventory: Optional[Mapping[Ipv4Address, MacAddress]] = None,
        observer: Optional[Callable[[float, bytes], None]] = None,
    ) -> None:
        if window < 1:
            raise ReplayError(f"window must be >= 1, got {window}")
        self.sim = sim if sim is not None else Simulator(seed=7)
        self.window = window
        self.observer = observer
        self.lan = ReplayLan(self.sim, inventory=inventory)
        self.schemes: List[Scheme] = []
        self.peak_in_flight = 0
        self._frames_total = REGISTRY.counter(
            "replay_frames_total",
            "Frames ingested by the replay engine, by source kind",
            labels=("source",),
        )
        self._bytes_total = REGISTRY.counter(
            "replay_bytes_total",
            "Bytes ingested by the replay engine, by source kind",
            labels=("source",),
        )
        self._skew_total = REGISTRY.counter(
            "replay_skew_total",
            "Trace frames whose timestamp ran backwards (clamped to the clock)",
        )
        self._ingest_seconds = REGISTRY.histogram(
            "replay_ingest_seconds",
            "Wall-clock time spent ingesting one in-flight window",
            labels=("mode",),
        )

    # ------------------------------------------------------------------
    def install(self, scheme: Scheme) -> Scheme:
        """Install a scheme onto the replay station.

        Only monitor-placed schemes make sense here (there is no switch
        fabric or host population to protect); anything else fails with
        :class:`~repro.errors.SchemeError` before touching the LAN.
        """
        placement = scheme.profile.placement
        if placement != "monitor":
            raise SchemeError(
                f"replay only supports monitor-placement schemes "
                f"(a trace has no switch fabric or protected hosts); "
                f"{scheme.profile.key!r} is {placement!r}-placed"
            )
        scheme.install(self.lan)
        self.schemes.append(scheme)
        return scheme

    def uninstall_all(self) -> None:
        for scheme in self.schemes:
            scheme.uninstall()
        self.schemes.clear()

    # ------------------------------------------------------------------
    def run(
        self,
        source: Union[str, Mapping[str, object], FrameSource],
        *,
        drain: float = 0.0,
    ) -> Dict[str, object]:
        """Replay ``source`` to completion; returns run statistics.

        ``drain`` runs the simulator that many extra trace-seconds past
        the last frame, so scheme timers (probe timeouts) conclude.
        Returns a dict with ``frames``, ``bytes``, ``delivered``,
        ``first_ts``/``last_ts``, ``wall_seconds``, ``mode`` and
        ``peak_in_flight``.
        """
        src = open_source(source)
        per_frame = (
            self.observer is not None or TRACER.enabled or self.window == 1
        )
        prefilter = not any(map(_overrides_on_any_frame, self.schemes))
        monitor = self.lan.monitor
        nic = monitor.nic
        sim = self.sim
        source_kind = src.kind
        frames = 0
        nbytes = 0
        delivered = 0
        skew = 0
        first_ts: Optional[float] = None
        last_ts = sim.now
        peak = 0
        observer = self.observer
        telemetry = sim.telemetry
        start = time.perf_counter()
        if per_frame:
            provenance = TRACER.provenance if TRACER.enabled else None
            window_start = start
            for ts, raw in src:
                if first_ts is None:
                    first_ts = ts
                if ts < last_ts:
                    skew += 1
                    ts = last_ts
                if ts > last_ts:
                    sim.advance_to(ts)
                    last_ts = ts
                if provenance is not None:
                    provenance.new_frame(
                        raw, origin=f"replay:{source_kind}", time=ts, kind="rx"
                    )
                if observer is not None:
                    observer(ts, raw)
                nic.deliver(raw)
                frames += 1
                nbytes += len(raw)
                if frames % self.window == 0:
                    now_wall = time.perf_counter()
                    self._ingest_seconds.labels(mode="per-frame").observe(
                        now_wall - window_start
                    )
                    window_start = now_wall
                    if telemetry is not None:
                        sim.events_processed += self.window
                        telemetry.tick(sim)
            delivered = frames
            peak = 1 if frames else 0
            mode = "per-frame"
        else:
            # Chunked pull: islice materializes one window of (ts, raw)
            # pairs at C speed, so per-frame Python bookkeeping happens
            # only at window granularity.  Timestamp skew is likewise
            # clamped per window — batched delivery lands the whole
            # chunk at its first frame's slot anyway (the same rule
            # Simulator.coalesce applies).
            window = self.window
            observe = self._ingest_seconds.labels(mode="batched").observe
            window_start = start
            it = iter(src)
            while True:
                pairs = list(islice(it, window))
                if not pairs:
                    break
                n = len(pairs)
                if n > peak:
                    peak = n
                chunk_ts = pairs[0][0]
                if first_ts is None:
                    first_ts = chunk_ts
                if chunk_ts < last_ts:
                    skew += 1
                    chunk_ts = last_ts
                raws = [p[1] for p in pairs]
                frames += n
                nbytes += sum(map(len, raws))
                end_ts = pairs[-1][0]
                if end_ts > last_ts:
                    last_ts = end_ts
                delivered += self._flush(raws, chunk_ts, nic, prefilter)
                now_wall = time.perf_counter()
                observe(now_wall - window_start)
                window_start = now_wall
                if telemetry is not None:
                    sim.events_processed += n
                    telemetry.tick(sim)
            mode = "batched"
        if last_ts > sim.now:
            sim.advance_to(last_ts)
        if drain > 0.0:
            sim.run(until=sim.now + drain)
        wall_seconds = time.perf_counter() - start
        src.close()
        self.peak_in_flight = max(self.peak_in_flight, peak)
        if frames:
            self._frames_total.labels(source=source_kind).inc(frames)
            self._bytes_total.labels(source=source_kind).inc(nbytes)
        if skew:
            self._skew_total.inc(skew)
        if telemetry is not None:
            telemetry.sample(sim, reason="replay-end")
        return {
            "source": src.spec_string,
            "frames": frames,
            "bytes": nbytes,
            "delivered": delivered,
            "skew": skew,
            "first_ts": first_ts,
            "last_ts": last_ts,
            "wall_seconds": wall_seconds,
            "mode": mode,
            "peak_in_flight": peak,
        }

    def _flush(
        self,
        chunk: List[bytes],
        chunk_ts: float,
        nic,
        prefilter: bool,
    ) -> int:
        """Deliver one window at its first frame's timestamp."""
        sim = self.sim
        if chunk_ts > sim.now:
            sim.advance_to(chunk_ts)
        if prefilter:
            # Inlined _interesting(): the ARP ethertype and UDP proto
            # byte are checked in the comprehension itself, so the TCP
            # majority is rejected in two C-level slice compares without
            # a Python call.
            arp, udp, dhcp = _ET_ARP, _PROTO_UDP, _maybe_dhcp
            batch = [
                d
                for d in chunk
                if d[12:14] == arp or (d[23:24] == udp and dhcp(d))
            ]
        else:
            batch = chunk
        if batch:
            nic.deliver_batch(batch)
        return len(batch)


def _run_replay(
    scheme_key: Optional[str],
    config: Optional[ScenarioConfig] = None,
    source: Union[str, Mapping[str, object], FrameSource, None] = None,
    window: int = DEFAULT_WINDOW,
    drain: float = 0.0,
    **scheme_kwargs,
) -> ReplayResult:
    """``api.run("replay", ...)`` entry point."""
    if source is None:
        raise ReplayError(
            "replay needs a source= (spec string like 'pcap:PATH' or "
            "'synthetic:rate=50k', or a FrameSource)"
        )
    from repro.schemes import make_defense

    seed = (config or ScenarioConfig()).seed
    src = open_source(source)
    obs_before = REGISTRY.snapshot()
    engine = ReplayEngine(Simulator(seed=seed), window=window)
    scheme = None
    if scheme_key is not None:
        scheme = make_defense(scheme_key, **scheme_kwargs)
        engine.install(scheme)
    stats = engine.run(src, drain=drain)
    first_ts = stats["first_ts"]
    span = (stats["last_ts"] - first_ts) if first_ts is not None else 0.0
    return ReplayResult(
        source=str(stats["source"]),
        scheme=scheme_key,
        frames=int(stats["frames"]),
        bytes=int(stats["bytes"]),
        delivered=int(stats["delivered"]),
        alerts=_alerts_in(REGISTRY.delta(obs_before)),
        sim_seconds=float(span),
        wall_seconds=float(stats["wall_seconds"]),
        window=window,
        mode=str(stats["mode"]),
        peak_in_flight=int(stats["peak_in_flight"]),
    )


# Polymorphic deserialization (campaign transport + result cache).
RESULT_TYPES[ReplayResult.__name__] = ReplayResult
