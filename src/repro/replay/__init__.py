"""Streaming trace ingestion: frame sources and the replay engine.

Turns the simulated detection schemes into deployable traffic
processors: a :class:`FrameSource` streams ``(timestamp, raw_bytes)``
pairs — from a pcap capture, a seeded synthetic generator, or memory —
and :class:`ReplayEngine` pumps them through the same promiscuous
monitor station a passive IDS deployment uses, in bounded memory.

See ``docs/replay.md`` for the protocol, the spec grammar, and the
deployment framing.
"""

from repro.replay.engine import (
    DEFAULT_WINDOW,
    REPLAY_MONITOR_MAC,
    ReplayEngine,
    ReplayLan,
    ReplayResult,
)
from repro.replay.sources import (
    FrameSource,
    MemorySource,
    PcapSource,
    SyntheticSource,
    open_source,
    parse_rate,
)

__all__ = [
    "DEFAULT_WINDOW",
    "REPLAY_MONITOR_MAC",
    "FrameSource",
    "MemorySource",
    "PcapSource",
    "SyntheticSource",
    "ReplayEngine",
    "ReplayLan",
    "ReplayResult",
    "open_source",
    "parse_rate",
]
