"""repro.obs — unified tracing, metrics, and frame provenance.

One import surface for the three observability primitives:

* :data:`REGISTRY` — the process-wide metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` with labels,
  snapshot/merge for campaign fork-workers).  The legacy
  :data:`repro.perf.PERF` block is registered as the ``perf`` collector,
  with :meth:`~repro.perf.PerfCounters.absorb` as its merge hook — so a
  worker's wire-fast-path statistics survive the worker.
* :data:`TRACER` — the bounded structured event log (simulation-time
  spans and instants), off by default and zero-cost while off.
* ``TRACER.provenance`` — the frame-id table mapping live wire buffers
  back to the workload or attack that injected them.

Exporters (:func:`to_chrome_trace`, :func:`to_jsonl`,
:func:`to_prometheus` and their parsers) turn those into artifacts the
``repro trace`` / ``repro metrics`` subcommands write out.

See ``docs/observability.md`` for the span taxonomy and overhead policy.
"""

from __future__ import annotations

from repro.obs.export import (
    parse_jsonl,
    parse_prometheus,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from repro.obs.live import BEACON, TelemetryRecorder
from repro.obs.profiler import SamplingProfiler
from repro.obs.provenance import FrameRecord, Provenance
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import DEFAULT_CAPACITY, TRACER, ObsEvent, Tracer
from repro.obs.watchdog import Heartbeat, Watchdog, WorkerHealth
from repro.perf import PERF

__all__ = [
    "BEACON",
    "REGISTRY",
    "TRACER",
    "Counter",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "SamplingProfiler",
    "TelemetryRecorder",
    "Tracer",
    "ObsEvent",
    "Provenance",
    "FrameRecord",
    "Watchdog",
    "WorkerHealth",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "to_chrome_trace",
    "to_jsonl",
    "parse_jsonl",
    "to_prometheus",
    "parse_prometheus",
]

# Absorb the legacy perf block: snapshots of the registry include the
# wire-fast-path counters, and merging a worker snapshot folds its perf
# deltas into this process's PERF.  register_collector is idempotent.
REGISTRY.register_collector("perf", PERF.snapshot, PERF.absorb)

#: The PR 7 batch-plane counters, re-exported as one labeled counter
#: family so ``repro metrics`` emits them as
#: ``batch_plane_ops_total{op="cam_sweeps"}`` instead of burying them in
#: the flat perf collector block.
_BATCH_PLANE_OPS = (
    "batch_flushes",
    "batched_items",
    "cam_sweeps",
    "cam_sweep_skips",
    "nic_batch_filtered",
)


def _sync_batch_plane() -> None:
    """Mirror PERF's batch-plane attributes into a labeled family.

    Runs before every registry snapshot (see ``register_sync``).  Mirror
    semantics — child values are *set* from PERF, not incremented — keep
    the family correct even after a worker snapshot was merged twice
    (PERF.absorb already folded the worker delta; the next sync
    overwrites any double-add).
    """
    family = REGISTRY.counter(
        "batch_plane_ops_total",
        "Batched data-plane operations (mirrored from repro.perf.PERF)",
        labels=("op",),
    )
    for op in _BATCH_PLANE_OPS:
        family.labels(op=op).value = float(getattr(PERF, op))


REGISTRY.register_sync("batch_plane", _sync_batch_plane)
