"""repro.obs — unified tracing, metrics, and frame provenance.

One import surface for the three observability primitives:

* :data:`REGISTRY` — the process-wide metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram` with labels,
  snapshot/merge for campaign fork-workers).  The legacy
  :data:`repro.perf.PERF` block is registered as the ``perf`` collector,
  with :meth:`~repro.perf.PerfCounters.absorb` as its merge hook — so a
  worker's wire-fast-path statistics survive the worker.
* :data:`TRACER` — the bounded structured event log (simulation-time
  spans and instants), off by default and zero-cost while off.
* ``TRACER.provenance`` — the frame-id table mapping live wire buffers
  back to the workload or attack that injected them.

Exporters (:func:`to_chrome_trace`, :func:`to_jsonl`,
:func:`to_prometheus` and their parsers) turn those into artifacts the
``repro trace`` / ``repro metrics`` subcommands write out.

See ``docs/observability.md`` for the span taxonomy and overhead policy.
"""

from __future__ import annotations

from repro.obs.export import (
    parse_jsonl,
    parse_prometheus,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from repro.obs.provenance import FrameRecord, Provenance
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import DEFAULT_CAPACITY, TRACER, ObsEvent, Tracer
from repro.perf import PERF

__all__ = [
    "REGISTRY",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Tracer",
    "ObsEvent",
    "Provenance",
    "FrameRecord",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "to_chrome_trace",
    "to_jsonl",
    "parse_jsonl",
    "to_prometheus",
    "parse_prometheus",
]

# Absorb the legacy perf block: snapshots of the registry include the
# wire-fast-path counters, and merging a worker snapshot folds its perf
# deltas into this process's PERF.  register_collector is idempotent.
REGISTRY.register_collector("perf", PERF.snapshot, PERF.absorb)
