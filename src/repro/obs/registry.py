"""The metrics registry — one place every counter in the process reports to.

Before this module, quantitative state was scattered: the wire fast path
kept a process-global :data:`repro.perf.PERF` block, every switch carried
``flooded_frames``/``dropped_frames`` attributes, every host a ``counters``
dict, and every scheme ad-hoc ints.  The registry absorbs them behind one
façade without slowing any of them down:

* hot-path code keeps doing plain attribute increments (free);
* cold blocks register a *collector* — a callable the registry invokes at
  snapshot time to pull their current values — optionally paired with a
  *merge* function so snapshots shipped back from campaign fork-workers
  can be folded into the parent process;
* new instrumentation uses first-class :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` metrics, with Prometheus-style labels.

Snapshots are JSON-safe dicts that survive a round trip through campaign
worker pipes and the on-disk result cache, and :meth:`MetricsRegistry.merge`
folds any snapshot into the live registry — counters and histograms add,
gauges take the incoming value, collector payloads route to their merge
hook.  That is how ``repro campaign --jobs N`` aggregates per-worker wire
statistics that previously died with the worker.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ObsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds) — tuned for simulated-LAN latencies,
#: which span microsecond link hops to multi-second detection delays.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing count.

    ``value`` is a plain attribute so hot paths may do ``c.value += 1``
    (the same cost as the old ad-hoc attribute counters).
    """

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counters only go up (inc by {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, cache size...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``counts[i]`` is the number of observations ``<= buckets[i]``-exclusive
    per-bucket form (non-cumulative internally; the exporter emits the
    cumulative ``le`` view).  The final slot counts overflow (+Inf).
    """

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ObsError(f"histogram buckets must be sorted unique: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def percentile(self, q: float) -> float:
        """Approximate percentile from bucket boundaries (diagnostics)."""
        if not self.count:
            return 0.0
        rank = max(1, int(q / 100.0 * self.count + 0.5))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
        return self.buckets[-1]


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its labeled children.

    ``family.labels(scheme="dai")`` returns the child metric for that
    label combination, creating it on first use.  A family declared with
    no label names has a single anonymous child, reachable via
    :meth:`labels` with no arguments (the registry returns that child
    directly for convenience).
    """

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if kind not in _METRIC_TYPES:
            raise ObsError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets)
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labelvalues: object):
        if set(labelvalues) != set(self.labelnames):
            raise ObsError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets)
            else:
                child = _METRIC_TYPES[self.kind]()
            self._children[key] = child
        return child

    def samples(self) -> Iterable[Tuple[Dict[str, str], object]]:
        for key in sorted(self._children):
            yield dict(zip(self.labelnames, key)), self._children[key]


class MetricsRegistry:
    """Process-wide metric namespace with snapshot/merge semantics."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: Dict[str, Tuple[Callable[[], Dict[str, float]],
                                          Optional[Callable[[Dict[str, float]], None]]]] = {}
        #: Collector payloads merged from elsewhere that have no merge
        #: hook of their own: accumulated here, re-emitted in snapshots.
        self._external: Dict[str, Dict[str, float]] = {}
        #: Pre-snapshot sync hooks: callables run at the top of
        #: :meth:`snapshot` to mirror hot-path attribute counters into
        #: first-class (labeled) metric families.
        self._syncs: Dict[str, Callable[[], None]] = {}

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, labels, buckets)
            self._families[name] = family
        elif family.kind != kind or family.labelnames != tuple(labels):
            raise ObsError(
                f"metric {name!r} re-declared as {kind}{labels} "
                f"(was {family.kind}{family.labelnames})"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Tuple[str, ...] = ()):
        """Declare (or fetch) a counter; unlabeled → the metric itself."""
        family = self._family(name, "counter", help, tuple(labels))
        return family if family.labelnames else family.labels()

    def gauge(self, name: str, help: str = "", labels: Tuple[str, ...] = ()):
        family = self._family(name, "gauge", help, tuple(labels))
        return family if family.labelnames else family.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        family = self._family(name, "histogram", help, tuple(labels), buckets)
        return family if family.labelnames else family.labels()

    def register_collector(
        self,
        name: str,
        collect: Callable[[], Dict[str, float]],
        merge: Optional[Callable[[Dict[str, float]], None]] = None,
    ) -> None:
        """Attach an external counter block (e.g. ``repro.perf.PERF``).

        ``collect()`` is called at snapshot time and must return a flat
        JSON-safe dict.  ``merge(payload)`` — when given — receives the
        matching section of a foreign snapshot during :meth:`merge`
        (campaign workers shipping their counters home).  Re-registering
        the same name replaces the previous hooks (idempotent wiring).
        """
        self._collectors[name] = (collect, merge)

    def register_sync(self, name: str, sync: Callable[[], None]) -> None:
        """Run ``sync()`` before every :meth:`snapshot`.

        Sync hooks bridge plain-attribute hot-path counters into labeled
        metric families without putting a method call on the hot path:
        the hook *sets* family children from the attribute values at
        snapshot time (mirror semantics — re-running it is idempotent,
        so worker-merge double-adds self-correct at the next snapshot).
        Like collectors, sync hooks are wiring: :meth:`reset` keeps them,
        and re-registering a name replaces the previous hook.
        """
        self._syncs[name] = sync

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe point-in-time view of every metric and collector."""
        for sync in self._syncs.values():
            sync()
        metrics: Dict[str, object] = {}
        for name, family in sorted(self._families.items()):
            samples: List[Dict[str, object]] = []
            for labels, metric in family.samples():
                if family.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": list(metric.buckets),
                            "counts": list(metric.counts),
                            "sum": metric.sum,
                            "count": metric.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": metric.value})
            metrics[name] = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        collectors: Dict[str, Dict[str, float]] = {}
        for name, (collect, _) in sorted(self._collectors.items()):
            collectors[name] = dict(collect())
        for name, payload in sorted(self._external.items()):
            base = collectors.setdefault(name, {})
            for key, value in payload.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    base[key] = base.get(key, 0) + value
        return {"metrics": metrics, "collectors": collectors}

    def delta(self, before: Mapping[str, object]) -> Dict[str, object]:
        """The change since an earlier :meth:`snapshot`, in snapshot form.

        Counters and histograms subtract; gauges report their current
        value (a gauge delta has no meaning).  Collector sections
        subtract numerically.  All-zero samples and empty sections are
        omitted, so the result is small enough to ship over a campaign
        worker pipe.  Feeding the result to :meth:`merge` on another
        registry adds exactly the activity that happened in between —
        this is how fork-workers (which inherit the parent's counts)
        report home without double counting.
        """
        after = self.snapshot()
        before_metrics = dict(before.get("metrics", {}))
        metrics: Dict[str, object] = {}
        for name, payload in after["metrics"].items():
            prior = before_metrics.get(name, {})
            prior_samples = {
                tuple(sorted(s["labels"].items())): s
                for s in prior.get("samples", [])
            }
            samples: List[Dict[str, object]] = []
            for sample in payload["samples"]:
                base = prior_samples.get(tuple(sorted(sample["labels"].items())))
                if payload["type"] == "histogram":
                    counts = list(sample["counts"])
                    total = sample["count"]
                    total_sum = sample["sum"]
                    if base is not None:
                        counts = [a - b for a, b in zip(counts, base["counts"])]
                        total -= base["count"]
                        total_sum -= base["sum"]
                    if total:
                        samples.append(
                            {
                                "labels": sample["labels"],
                                "buckets": sample["buckets"],
                                "counts": counts,
                                "sum": total_sum,
                                "count": total,
                            }
                        )
                elif payload["type"] == "counter":
                    value = sample["value"] - (base["value"] if base else 0.0)
                    if value:
                        samples.append({"labels": sample["labels"], "value": value})
                else:  # gauge: current value stands
                    samples.append(dict(sample))
            if samples:
                metrics[name] = {
                    "type": payload["type"],
                    "help": payload["help"],
                    "labelnames": payload["labelnames"],
                    "samples": samples,
                }
        before_collectors = dict(before.get("collectors", {}))
        collectors: Dict[str, Dict[str, float]] = {}
        for name, values in after["collectors"].items():
            base = before_collectors.get(name, {})
            section = {}
            for key, value in values.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    continue
                diff = value - base.get(key, 0)
                if diff:
                    section[key] = diff
            if section:
                collectors[name] = section
        return {"metrics": metrics, "collectors": collectors}

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a foreign snapshot (e.g. from a fork-worker) into this one.

        Counters and histograms accumulate; gauges take the incoming
        value; collector sections route to their registered merge hook,
        or accumulate in an external store when the block has none here.
        """
        for name, payload in dict(snapshot.get("metrics", {})).items():
            kind = payload["type"]
            labelnames = tuple(payload.get("labelnames", ()))
            if kind == "histogram":
                sample0 = payload["samples"][0] if payload["samples"] else None
                buckets = tuple(sample0["buckets"]) if sample0 else DEFAULT_BUCKETS
                family = self._family(
                    name, kind, payload.get("help", ""), labelnames, buckets
                )
            else:
                family = self._family(name, kind, payload.get("help", ""), labelnames)
            for sample in payload["samples"]:
                child = family.labels(**sample["labels"])
                if kind == "counter":
                    child.inc(float(sample["value"]))
                elif kind == "gauge":
                    child.set(float(sample["value"]))
                else:
                    if tuple(sample["buckets"]) != child.buckets:
                        raise ObsError(
                            f"histogram {name!r}: bucket mismatch on merge"
                        )
                    for i, n in enumerate(sample["counts"]):
                        child.counts[i] += int(n)
                    child.sum += float(sample["sum"])
                    child.count += int(sample["count"])
        for name, payload in dict(snapshot.get("collectors", {})).items():
            hook = self._collectors.get(name)
            if hook is not None and hook[1] is not None:
                hook[1](dict(payload))
            else:
                store = self._external.setdefault(name, {})
                for key, value in payload.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        store[key] = store.get(key, 0) + value

    def reset(self) -> None:
        """Drop every metric family and external accumulation.

        Registered collectors and sync hooks stay (they are wiring, not
        state).
        """
        self._families.clear()
        self._external.clear()

    def families(self) -> List[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(families={len(self._families)}, "
            f"collectors={sorted(self._collectors)})"
        )


#: The process-global registry (campaign workers snapshot it; the parent
#: merges those snapshots back here).
REGISTRY = MetricsRegistry()
