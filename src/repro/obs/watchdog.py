"""Run-health watchdog: heartbeat files, stall detection, liveness views.

Long campaigns run work in fork-children the parent can only see through
a pipe — a worker spinning in an event-loop livelock looks identical to
one making slow progress.  This module gives every worker a *heartbeat
file* and the parent a *watchdog* that reads them:

* :class:`Heartbeat` — a daemon thread that atomically rewrites one JSON
  file every ``interval`` seconds with the worker's pid, a beat sequence
  number, wall-clock time, and the :data:`repro.obs.live.BEACON` progress
  block (sim-clock, events fired).  Atomic tmp + ``os.replace`` writes
  mean a reader never sees a torn file.
* :class:`Watchdog` — scans a directory of heartbeat files and grades
  each worker ``live`` / ``stalled`` / ``stale`` / ``done``:

  - ``stale``: the file itself stopped updating (the whole process is
    gone or wedged hard enough to starve its heartbeat thread);
  - ``stalled``: the heartbeat thread still beats but the beacon's
    event counter has not advanced within ``stall_after`` seconds — the
    sim-clock-stall case where the main thread hangs in one event;
  - ``done``: the worker said goodbye (:meth:`Heartbeat.stop`).

  Healthy→unhealthy transitions count into the
  ``watchdog_stalls_total{worker=...}`` registry counter, which `repro
  campaign` surfaces and `repro top` renders live.

The watchdog never *acts* on a stall — the campaign runner already owns
timeouts and termination; this layer only makes the state visible.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ObsError
from repro.obs.live import BEACON
from repro.obs.registry import REGISTRY

__all__ = [
    "DEFAULT_BEAT_INTERVAL",
    "DEFAULT_STALL_AFTER",
    "HEARTBEAT_SUFFIX",
    "Heartbeat",
    "Watchdog",
    "WorkerHealth",
    "render_health",
]

HEARTBEAT_SUFFIX = ".hb.json"
DEFAULT_BEAT_INTERVAL = 0.5
DEFAULT_STALL_AFTER = 10.0


class Heartbeat:
    """Periodic liveness file for one worker (or the serial coordinator).

    ``payload`` — when given — is called at each beat and its dict merged
    into the record (campaign workers use it to publish their current
    task label); a failing payload provider marks the record instead of
    killing the beat thread.
    """

    def __init__(
        self,
        path: Union[str, Path],
        interval: float = DEFAULT_BEAT_INTERVAL,
        name: Optional[str] = None,
        payload: Optional[Callable[[], Dict[str, object]]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval <= 0:
            raise ObsError(f"interval must be positive, got {interval}")
        self.path = Path(path)
        self.interval = interval
        base = self.path.name
        if base.endswith(HEARTBEAT_SUFFIX):
            base = base[: -len(HEARTBEAT_SUFFIX)]
        self.name = name if name is not None else base
        self.beats = 0
        self._payload = payload
        self._clock = clock
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def beat(self, done: bool = False) -> Dict[str, object]:
        """Write one heartbeat record atomically; returns what was written."""
        extra: Dict[str, object] = {}
        if self._payload is not None:
            try:
                extra = dict(self._payload() or {})
            except Exception:  # noqa: BLE001 - liveness must outlive its payload
                extra = {"payload_error": True}
        pid = os.getpid()
        record: Dict[str, object] = {
            "name": self.name,
            "pid": pid,
            "wall": self._clock(),
            "seq": self.beats,
            "done": bool(done),
            # Only trust the beacon when it was written by this process —
            # a fork-child inherits the parent's beacon until its own
            # telemetry first ticks.
            "beacon": BEACON.snapshot() if BEACON.pid == pid else None,
            **extra,
        }
        tmp = self.path.with_name(f"{self.path.name}.tmp{pid}")
        tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        self.beats += 1
        return record

    def start(self) -> "Heartbeat":
        if self._thread is not None:
            raise ObsError(f"heartbeat {self.name!r} already started")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stop.clear()
        self.beat()
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-heartbeat-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.beat()
            except OSError:  # pragma: no cover - heartbeat dir removed
                return

    def stop(self, done: bool = True) -> None:
        """Join the beat thread and leave a final (``done``) record."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        try:
            self.beat(done=done)
        except OSError:  # pragma: no cover - heartbeat dir removed
            pass

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass(frozen=True)
class WorkerHealth:
    """One worker's graded state at scan time."""

    name: str
    pid: int
    state: str  # "live" | "stalled" | "stale" | "done"
    age: float  # seconds since the last heartbeat write
    seq: int
    task: Optional[str]
    t_sim: Optional[float]
    events: Optional[int]
    path: str


class Watchdog:
    """Grades every heartbeat file in a directory; counts stall episodes.

    One watchdog instance should live for the whole run: stall detection
    compares beacon progress *between scans*, and episode counting
    de-duplicates consecutive unhealthy scans of the same worker.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        stall_after: float = DEFAULT_STALL_AFTER,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if stall_after <= 0:
            raise ObsError(f"stall_after must be positive, got {stall_after}")
        self.directory = Path(directory)
        self.stall_after = stall_after
        self.stall_episodes = 0
        self._clock = clock
        self._unhealthy: set = set()
        #: name -> (last seen beacon event count, wall time it changed)
        self._progress: Dict[str, Tuple[int, float]] = {}

    def _counter(self):
        return REGISTRY.counter(
            "watchdog_stalls_total",
            "Stall episodes (stale heartbeat or frozen sim-clock) per worker",
            labels=("worker",),
        )

    def scan(self) -> List[WorkerHealth]:
        """Read every heartbeat file and grade it; safe to call anytime."""
        if not self.directory.is_dir():
            return []
        now = self._clock()
        healths: List[WorkerHealth] = []
        for path in sorted(self.directory.glob(f"*{HEARTBEAT_SUFFIX}")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # vanished or mid-create; next scan will see it
            name = str(record.get("name", path.name))
            wall = float(record.get("wall", 0.0))
            age = max(0.0, now - wall)
            beacon = record.get("beacon") or {}
            events = beacon.get("events")
            state = "live"
            if record.get("done"):
                state = "done"
            elif age > self.stall_after:
                state = "stale"
            elif isinstance(events, int):
                last = self._progress.get(name)
                if last is None or last[0] != events:
                    self._progress[name] = (events, now)
                elif now - last[1] > self.stall_after:
                    state = "stalled"
            self._note(name, state)
            healths.append(
                WorkerHealth(
                    name=name,
                    pid=int(record.get("pid", 0)),
                    state=state,
                    age=age,
                    seq=int(record.get("seq", 0)),
                    task=record.get("task"),
                    t_sim=beacon.get("t_sim"),
                    events=events if isinstance(events, int) else None,
                    path=str(path),
                )
            )
        return healths

    def _note(self, name: str, state: str) -> None:
        if state in ("stalled", "stale"):
            if name not in self._unhealthy:
                self._unhealthy.add(name)
                self.stall_episodes += 1
                self._counter().labels(worker=name).inc()
        else:
            self._unhealthy.discard(name)


def render_health(healths: List[WorkerHealth]) -> str:
    """`repro top` table: one row per worker, fixed-width columns."""
    if not healths:
        return "(no heartbeat files)"
    rows = [("WORKER", "PID", "STATE", "AGE", "T_SIM", "EVENTS", "TASK")]
    for h in healths:
        rows.append(
            (
                h.name,
                str(h.pid),
                h.state,
                f"{h.age:.1f}s",
                "-" if h.t_sim is None else f"{h.t_sim:.2f}",
                "-" if h.events is None else str(h.events),
                h.task or "-",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    )
