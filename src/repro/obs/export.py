"""Exporters: Chrome trace-event JSON, JSONL stream, Prometheus text.

All three are deterministic functions of their inputs — a fixed-seed run
exports byte-identical artifacts, which the round-trip tests rely on.

* :func:`to_chrome_trace` emits the Trace Event Format understood by
  Perfetto / ``chrome://tracing``: complete events (``ph: "X"``) for
  spans, instants (``ph: "i"``), and metadata events naming each track.
  Simulated seconds become microseconds (the format's unit); tracks
  (``tid``) are derived from the event's ``node``/``switch`` attribute so
  per-device timelines line up visually.
* :func:`to_jsonl` / :func:`parse_jsonl` — one JSON object per line,
  lossless for :class:`~repro.obs.trace.ObsEvent`.
* :func:`to_prometheus` / :func:`parse_prometheus` — the text exposition
  format (``# HELP`` / ``# TYPE``, cumulative ``le`` histogram buckets,
  ``_sum`` / ``_count``) rendered from a registry snapshot.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ObsError
from repro.obs.trace import ObsEvent

__all__ = [
    "to_chrome_trace",
    "to_jsonl",
    "parse_jsonl",
    "to_prometheus",
    "parse_prometheus",
]

_PID = 1  # single simulated process; tracks are devices


def _track_of(attrs: Mapping[str, object]) -> str:
    for key in ("node", "switch", "host", "device"):
        value = attrs.get(key)
        if value is not None:
            return str(value)
    return "sim"


def to_chrome_trace(
    events: List[ObsEvent],
    provenance_frames: Optional[Mapping[int, object]] = None,
) -> Dict[str, object]:
    """Render events as a Chrome trace-event JSON object.

    ``provenance_frames`` (frame-id → :class:`FrameRecord`) — when given —
    is embedded under the top-level ``frameProvenance`` key (the format
    explicitly allows extra top-level members) so a trace file is a
    self-contained audit trail.
    """
    tracks: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = []
    for event in events:
        track = _track_of(event.attrs)
        tid = tracks.get(track)
        if tid is None:
            tid = len(tracks) + 1
            tracks[track] = tid
        args = {k: v for k, v in event.attrs.items()}
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ts": event.ts * 1e6,
            "pid": _PID,
            "tid": tid,
            "args": args,
        }
        if event.kind == "span":
            record["ph"] = "X"
            record["dur"] = (event.dur or 0.0) * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in sorted(tracks.items(), key=lambda kv: kv[1])
    ]
    doc: Dict[str, object] = {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }
    if provenance_frames:
        doc["frameProvenance"] = {
            str(fid): {
                "parent": rec.parent,
                "origin": rec.origin,
                "kind": rec.kind,
                "time": rec.time,
            }
            for fid, rec in sorted(provenance_frames.items())
        }
    return doc


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl(events: List[ObsEvent]) -> str:
    """One compact JSON object per event; lossless round trip."""
    lines = []
    for event in events:
        lines.append(
            json.dumps(
                {
                    "name": event.name,
                    "ts": event.ts,
                    "dur": event.dur,
                    "kind": event.kind,
                    "attrs": event.attrs,
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_jsonl(text: str) -> List[ObsEvent]:
    events: List[ObsEvent] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"JSONL line {lineno} is not valid JSON: {exc}") from exc
        try:
            events.append(
                ObsEvent(
                    obj["name"], obj["ts"], obj["dur"], obj["kind"], obj["attrs"]
                )
            )
        except KeyError as exc:
            raise ObsError(f"JSONL line {lineno} missing field {exc}") from exc
    return events


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    f = float(value)
    return str(int(f)) if f == int(f) else repr(f)


def _fmt_labels(labels: Mapping[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(snapshot: Mapping[str, object]) -> str:
    """Render a registry snapshot in the text exposition format.

    Collector sections (e.g. the ``perf`` block) are emitted as plain
    counters named ``repro_<collector>_<key>``.
    """
    out: List[str] = []
    for name, payload in snapshot.get("metrics", {}).items():
        kind = payload["type"]
        if payload.get("help"):
            out.append(f"# HELP {name} {payload['help']}")
        out.append(f"# TYPE {name} {kind}")
        for sample in payload["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                cumulative = 0
                buckets = sample["buckets"]
                for i, bound in enumerate(list(buckets) + [math.inf]):
                    cumulative += sample["counts"][i]
                    le = _fmt_labels(labels, (("le", _fmt_value(bound)),))
                    out.append(f"{name}_bucket{le} {cumulative}")
                out.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(sample['sum'])}")
                out.append(f"{name}_count{_fmt_labels(labels)} {sample['count']}")
            else:
                out.append(f"{name}{_fmt_labels(labels)} {_fmt_value(sample['value'])}")
    for collector, values in snapshot.get("collectors", {}).items():
        for key, value in sorted(values.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            metric = f"repro_{collector}_{key}".replace("-", "_").replace(".", "_")
            out.append(f"# TYPE {metric} counter")
            out.append(f"{metric} {_fmt_value(value)}")
    return "\n".join(out) + ("\n" if out else "")


def parse_prometheus(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse the text format back to ``{name: {label-pairs: value}}``.

    Used by the round-trip tests and the campaign report reader; supports
    the subset :func:`to_prometheus` emits.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            left, value_str = line.rsplit(" ", 1)
        except ValueError as exc:
            raise ObsError(f"prometheus line {lineno}: {line!r}") from exc
        if "{" in left:
            name, rest = left.split("{", 1)
            if not rest.endswith("}"):
                raise ObsError(f"prometheus line {lineno}: unterminated labels")
            labels: List[Tuple[str, str]] = []
            body = rest[:-1]
            if body:
                for pair in _split_label_pairs(body):
                    key, raw = pair.split("=", 1)
                    labels.append((key, json.loads(raw)))
            label_key = tuple(sorted(labels))
        else:
            name, label_key = left, ()
        value = math.inf if value_str == "+Inf" else float(value_str)
        out.setdefault(name, {})[label_key] = value
    return out


def _split_label_pairs(body: str) -> List[str]:
    pairs: List[str] = []
    depth_quote = False
    start = 0
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == '"' and (i == 0 or body[i - 1] != "\\"):
            depth_quote = not depth_quote
        elif ch == "," and not depth_quote:
            pairs.append(body[start:i])
            start = i + 1
        i += 1
    pairs.append(body[start:])
    return pairs
