"""Simulation-time spans and instants — the structured event log.

The tracer answers the question :mod:`repro.sim.trace` cannot: not just
*what happened* (frames seen at taps) but *who decided what, when, and
how long it took* — which scheme inspected which frame, which switch
dropped it, where the event loop spent simulated time.

Design constraints, in order:

1. **Zero cost when disabled.**  Every instrumentation site guards with
   ``if TRACER.enabled:`` — one global-load plus attribute-load, no call.
   The ``repro bench --check`` gate runs with tracing off and must not
   regress against ``BENCH_wire.json``.
2. **Bounded.**  Events land in a ring (``deque(maxlen=...)``); when it
   wraps, :attr:`Tracer.dropped` counts what was lost so a truncated
   trace is never mistaken for a complete one.
3. **Simulation clock.**  Timestamps are simulated seconds read through
   a bound clock callable (``sim.now``), not wall time, so fixed-seed
   runs export byte-identical traces.

Span usage::

    if TRACER.enabled:
        with TRACER.span("scheme.inspect", scheme="dai", frame=fid):
            verdict = inspect(frame)
    else:
        verdict = inspect(frame)

or, when the double-call-site is awkward, ``TRACER.span(...)`` may be
used unconditionally — the context manager itself no-ops when disabled —
but hot paths should prefer the guarded form.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, NamedTuple, Optional

from repro.obs.provenance import Provenance

__all__ = ["ObsEvent", "Tracer", "TRACER", "DEFAULT_CAPACITY"]

#: Default event-ring capacity.
DEFAULT_CAPACITY = 1 << 18


class ObsEvent(NamedTuple):
    """One structured trace event.

    ``dur`` is ``None`` for instants; for spans it is the simulated (or
    host, if no sim clock is bound) duration in seconds.
    """

    name: str
    ts: float
    dur: Optional[float]
    kind: str  # "span" | "instant"
    attrs: Dict[str, object]


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer.now()
        tracer.record(
            ObsEvent(self._name, self._start, end - self._start, "span", self._attrs)
        )

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered mid-span (e.g. the verdict)."""
        self._attrs.update(attrs)


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded structured event log with simulation-clock timestamps."""

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        self.enabled = False
        self.events: Deque[ObsEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._clock: Callable[[], float] = lambda: 0.0
        self.provenance = Provenance()
        #: Frame id currently being processed (set by RX paths so alert
        #: sites deep in scheme code can attribute without plumbing).
        self.current_frame: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, capacity: Optional[int] = None) -> None:
        if capacity is not None:
            self.events = deque(self.events, maxlen=capacity)
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        """Fresh log, fresh provenance, clock unbound; keeps enabled flag."""
        self.events = deque(maxlen=capacity)
        self.dropped = 0
        self._clock = lambda: 0.0
        self.provenance.reset()
        self.current_frame = None

    def use_clock(self, clock: Callable[[], float]) -> None:
        """Bind the timestamp source (typically ``lambda: sim.now``)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def record(self, event: ObsEvent) -> None:
        ring = self.events
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(event)

    def instant(self, name: str, **attrs: object) -> None:
        """Emit a point-in-time event (drop, alert, injection...)."""
        if not self.enabled:
            return
        self.record(ObsEvent(name, self._clock(), None, "instant", attrs))

    def span(self, name: str, **attrs: object):
        """Start a duration event; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, attrs)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def find(self, name: str) -> List[ObsEvent]:
        return [e for e in self.events if e.name == name]

    def by_frame(self, frame_id: int) -> List[ObsEvent]:
        return [e for e in self.events if e.attrs.get("frame") == frame_id]

    def names(self) -> Iterable[str]:
        return sorted({e.name for e in self.events})

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"Tracer({state}, events={len(self.events)}, dropped={self.dropped})"


#: The process-global tracer.  Hot paths read ``TRACER.enabled`` once per
#: site; everything else goes through methods.
TRACER = Tracer()
