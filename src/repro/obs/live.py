"""Live run telemetry — a time series of snapshots from a *running* sim.

The PR 3 observability layer reports after a run finishes; this module
watches a run while it happens.  A :class:`TelemetryRecorder` attached to
a simulator samples, on a configurable event-count or wall-clock cadence:

* simulator progress — sim-clock, events fired, live heap depth;
* the per-window :data:`repro.perf.PERF` delta (so each snapshot carries
  the batch/fallback ratio of *that window*, not the whole process);
* optionally the per-window :data:`~repro.obs.registry.REGISTRY` delta.

Samples land in a bounded ring (:attr:`TelemetryRecorder.snapshots`) and,
when an output path is given, are streamed incrementally as JSONL — one
flushed line per snapshot, so a stalled run still leaves a readable
series behind.  The writer is fork-aware: a campaign worker inheriting
the parent's recorder reopens the file in append mode on first write, and
every line carries ``pid`` so readers can split interleaved series.

Zero-cost contract: the hot event loop pays for telemetry only when a
recorder is attached (``sim.telemetry is None`` otherwise routes through
the untouched fused loop — see :meth:`repro.sim.simulator.Simulator.run`),
and attachment only happens while a process-default recorder is installed
(:func:`install` / :func:`session`).  ``repro bench --check`` gates this.

Cross-thread progress sharing happens through :data:`BEACON`, a tiny
lock-free progress block the recorder refreshes on every cadence stride;
the watchdog's heartbeat thread reads it to publish sim-clock progress
without touching the simulator from another thread.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Deque, Dict, Iterator, List, Optional, Union

from repro.errors import ObsError
from repro.obs.registry import REGISTRY
from repro.perf import PERF

__all__ = [
    "BEACON",
    "DEFAULT_CADENCE_EVENTS",
    "ProgressBeacon",
    "REQUIRED_KEYS",
    "TelemetryRecorder",
    "WALL_CHECK_STRIDE",
    "default_recorder",
    "install",
    "read_series",
    "session",
    "uninstall",
    "validate_snapshot",
]

#: Default sampling cadence when neither cadence is given: one snapshot
#: every N simulator events.
DEFAULT_CADENCE_EVENTS = 5_000

#: With a wall-clock cadence the recorder still only *checks* the clock
#: every N events, so the hot loop never calls ``time.monotonic`` more
#: than once per stride.
WALL_CHECK_STRIDE = 512

#: Keys every telemetry snapshot must carry (the CI artifact validator
#: and :func:`validate_snapshot` both enforce this set).
REQUIRED_KEYS = frozenset(
    {"seq", "pid", "reason", "t_wall", "t_sim", "events", "pending", "batch", "perf"}
)


class ProgressBeacon:
    """Lock-free progress block shared with heartbeat/watchdog threads.

    Plain attribute stores are atomic enough under the GIL for a
    monitoring consumer: a heartbeat thread reading a beacon mid-update
    sees a slightly torn but monotone view, never a crash.
    """

    __slots__ = ("pid", "t_sim", "events", "pending", "wall")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.pid = 0
        self.t_sim = 0.0
        self.events = 0
        self.pending = 0
        self.wall = 0.0

    def update(self, sim) -> None:
        self.pid = os.getpid()
        self.t_sim = sim.now
        self.events = sim.events_processed
        self.pending = sim.pending()
        self.wall = time.time()

    def snapshot(self) -> Dict[str, float]:
        return {
            "pid": self.pid,
            "t_sim": self.t_sim,
            "events": self.events,
            "pending": self.pending,
            "wall": self.wall,
        }


#: The process-wide beacon (one live simulator at a time is the common
#: case; with several, the most recently ticked one wins — fine for a
#: liveness signal).
BEACON = ProgressBeacon()


class TelemetryRecorder:
    """Samples a running simulator into a bounded ring + JSONL stream.

    Parameters
    ----------
    cadence_events:
        Snapshot every N processed events.  Mutually composable with
        ``cadence_wall``; when both are ``None`` this defaults to
        :data:`DEFAULT_CADENCE_EVENTS`.
    cadence_wall:
        Snapshot at most every N wall-clock seconds (checked every
        :data:`WALL_CHECK_STRIDE` events so the hot loop stays off the
        OS clock).
    capacity:
        Ring size; older snapshots are dropped (counted in
        :attr:`dropped`) once full.  The JSONL stream is unbounded.
    out:
        Optional JSONL path.  Opened lazily in append mode and reopened
        after a fork, so campaign workers inherit a working stream.
    include_metrics:
        Attach the per-window ``REGISTRY.delta`` to each snapshot.
        Disable for beacon-only recorders in campaign workers.
    """

    def __init__(
        self,
        cadence_events: Optional[int] = None,
        cadence_wall: Optional[float] = None,
        capacity: int = 512,
        out: Union[str, Path, None] = None,
        include_metrics: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if cadence_events is not None and cadence_events < 1:
            raise ObsError(f"cadence_events must be >= 1, got {cadence_events}")
        if cadence_wall is not None and cadence_wall <= 0:
            raise ObsError(f"cadence_wall must be positive, got {cadence_wall}")
        if capacity < 1:
            raise ObsError(f"capacity must be >= 1, got {capacity}")
        if cadence_events is None and cadence_wall is None:
            cadence_events = DEFAULT_CADENCE_EVENTS
        self.cadence_events = cadence_events
        self.cadence_wall = cadence_wall
        self.snapshots: Deque[Dict[str, object]] = deque(maxlen=capacity)
        #: Ring evictions (the JSONL stream never drops).
        self.dropped = 0
        self.seq = 0
        #: JSONL lines written by *this* process.
        self.written = 0
        self.include_metrics = include_metrics
        self._out_path = Path(out) if out is not None else None
        self._fh = None
        self._fh_pid: Optional[int] = None
        self._clock = clock
        self._t0 = clock()
        #: How many events pass between cadence checks in tick().
        self._stride = cadence_events if cadence_events is not None else WALL_CHECK_STRIDE
        self._next_mark = 0
        self._last_sample_wall = float("-inf")
        self._last_sample_events = -1
        self._perf_before: Optional[Dict[str, float]] = None
        self._reg_before: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, sim) -> None:
        """Hook this recorder onto ``sim`` and emit an ``attach`` marker.

        The marker gives every simulator (campaign trials build several)
        a boundary row in the series even if the run is shorter than one
        cadence stride.
        """
        sim.telemetry = self
        self._next_mark = sim.events_processed + self._stride
        self.sample(sim, reason="attach")

    def detach(self, sim) -> None:
        if getattr(sim, "telemetry", None) is self:
            sim.telemetry = None

    # ------------------------------------------------------------------
    # Hot-side entry points (called from the instrumented run loop)
    # ------------------------------------------------------------------
    def tick(self, sim) -> None:
        """Per-event cadence check; cheap no-op between stride marks."""
        if sim.events_processed < self._next_mark:
            return
        self._next_mark = sim.events_processed + self._stride
        BEACON.update(sim)
        wall = self._clock()
        if self.cadence_wall is not None and (
            wall - self._last_sample_wall < self.cadence_wall
        ):
            return
        self.sample(sim, reason="cadence", wall=wall)

    def run_end(self, sim) -> None:
        """Close out a ``run()`` with a final sample if anything fired."""
        if sim.events_processed > self._last_sample_events:
            self.sample(sim, reason="run-end")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _ensure_baseline(self) -> None:
        if self._perf_before is None:
            self._perf_before = {n: getattr(PERF, n) for n in PERF.ADDITIVE}
            if self.include_metrics:
                self._reg_before = REGISTRY.snapshot()

    def sample(self, sim, reason: str = "manual", wall: Optional[float] = None) -> Dict[str, object]:
        """Take one snapshot now; returns the recorded dict."""
        self._ensure_baseline()
        if wall is None:
            wall = self._clock()
        perf_delta = PERF.delta_since(self._perf_before)
        self._perf_before = {n: getattr(PERF, n) for n in PERF.ADDITIVE}
        flushes = perf_delta.get("batch_flushes", 0)
        items = perf_delta.get("batched_items", 0)
        snap: Dict[str, object] = {
            "seq": self.seq,
            "pid": os.getpid(),
            "reason": reason,
            "t_wall": round(wall - self._t0, 6),
            "t_sim": sim.now,
            "events": sim.events_processed,
            "pending": sim.pending(),
            "heap_depth": sim.heap_depth,
        }
        # A partitioned fabric (repro.sim.partition) exposes per-partition
        # heaps; its aggregate heap_depth is already the sum — record the
        # breakdown next to it so dashboards can spot a lopsided shard.
        depths = getattr(sim, "heap_depths", None)
        if callable(depths):
            snap["heap_depth_by_partition"] = depths()
        snap.update({
            "batch": {
                "flushes": flushes,
                "items": items,
                # Fraction of batched items that rode along with an
                # already-scheduled flush — 0.0 on the per-frame plane.
                "coalesce_rate": round((items - flushes) / items, 4) if items else 0.0,
            },
            "perf": perf_delta,
        })
        if self.include_metrics:
            snap["metrics"] = REGISTRY.delta(self._reg_before)
        REGISTRY.counter(
            "telemetry_snapshots_total",
            "Live telemetry snapshots recorded",
            labels=("reason",),
        ).labels(reason=reason).inc()
        if self.include_metrics:
            # Re-baseline *after* our own counter bump so the recorder
            # never pollutes the next window's metrics delta.
            self._reg_before = REGISTRY.snapshot()
        ring = self.snapshots
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(snap)
        self.seq += 1
        self._last_sample_wall = wall
        self._last_sample_events = sim.events_processed
        BEACON.update(sim)
        self._write(snap)
        return snap

    # ------------------------------------------------------------------
    # JSONL streaming
    # ------------------------------------------------------------------
    def _write(self, snap: Dict[str, object]) -> None:
        if self._out_path is None:
            return
        pid = os.getpid()
        if self._fh is None or self._fh_pid != pid:
            # First write, reopened after close(), or first write after a
            # fork: (re)open in append mode so parent and worker series
            # interleave instead of clobbering each other.
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:  # pragma: no cover - inherited stale handle
                    pass
            self._fh = open(self._out_path, "a", encoding="utf-8")
            self._fh_pid = pid
        self._fh.write(json.dumps(snap, sort_keys=True, separators=(",", ":")) + "\n")
        self._fh.flush()
        self.written += 1

    def close(self) -> None:
        """Flush and close the JSONL stream (idempotent; a later sample
        reopens it in append mode)."""
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None
                self._fh_pid = None


# ----------------------------------------------------------------------
# Process-default recorder: how `Simulator.__init__` finds its telemetry
# ----------------------------------------------------------------------
_default: Optional[TelemetryRecorder] = None


def install(recorder: Optional[TelemetryRecorder]) -> Optional[TelemetryRecorder]:
    """Make ``recorder`` the process default; returns the previous one.

    Every :class:`~repro.sim.simulator.Simulator` built while a default
    is installed attaches it automatically — the hook campaign trials and
    the experiment facade use, since they construct simulators internally.
    """
    global _default
    previous = _default
    _default = recorder
    return previous


def uninstall() -> Optional[TelemetryRecorder]:
    """Clear the process default; returns what was installed."""
    return install(None)


def default_recorder() -> Optional[TelemetryRecorder]:
    return _default


@contextmanager
def session(recorder: TelemetryRecorder) -> Iterator[TelemetryRecorder]:
    """Install ``recorder`` for the duration of a block, then restore the
    previous default and flush the stream."""
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
        recorder.close()


# ----------------------------------------------------------------------
# Series validation (shared by tests and the CI artifact check)
# ----------------------------------------------------------------------
def validate_snapshot(snap: Dict[str, object]) -> None:
    """Raise :class:`ObsError` unless ``snap`` is a well-formed snapshot."""
    missing = REQUIRED_KEYS - set(snap)
    if missing:
        raise ObsError(f"telemetry snapshot missing keys {sorted(missing)}: {snap}")
    for key in ("seq", "pid", "events", "pending"):
        value = snap[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ObsError(f"telemetry snapshot {key}={value!r} is not a count")
    for key in ("t_wall", "t_sim"):
        if not isinstance(snap[key], (int, float)) or snap[key] < 0:
            raise ObsError(f"telemetry snapshot {key}={snap[key]!r} is not a time")
    if not isinstance(snap["batch"], dict) or not isinstance(snap["perf"], dict):
        raise ObsError("telemetry snapshot batch/perf sections must be dicts")


def read_series(text: str) -> List[Dict[str, object]]:
    """Parse and validate a JSONL telemetry series.

    Checks every line against :data:`REQUIRED_KEYS` and enforces that
    ``seq`` and ``t_wall`` are strictly / weakly monotone *per pid*
    (parent and fork-worker series may interleave in one file).
    Returns the parsed snapshots in file order.
    """
    snaps: List[Dict[str, object]] = []
    last_by_pid: Dict[int, Dict[str, object]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            snap = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"telemetry line {lineno}: invalid JSON ({exc})") from None
        validate_snapshot(snap)
        prev = last_by_pid.get(snap["pid"])
        if prev is not None:
            if snap["seq"] <= prev["seq"]:
                raise ObsError(
                    f"telemetry line {lineno}: seq {snap['seq']} not "
                    f"increasing after {prev['seq']} (pid {snap['pid']})"
                )
            if snap["t_wall"] < prev["t_wall"]:
                raise ObsError(
                    f"telemetry line {lineno}: t_wall went backwards "
                    f"({prev['t_wall']} -> {snap['t_wall']}, pid {snap['pid']})"
                )
        last_by_pid[snap["pid"]] = snap
        snaps.append(snap)
    return snaps
