"""Frame provenance — the causal chain behind every delivery and alert.

Frames travel the simulated LAN as raw ``bytes`` buffers, and the wire
fast path deliberately reuses one buffer across hops (a flood transmits
the ingress buffer on every egress port).  Provenance exploits exactly
that: the *identity* of the buffer object is a free correlation key.  At
injection time (:meth:`Provenance.new_frame`) a monotonically increasing
frame id is assigned and the buffer is pinned in a bounded side table;
every later observer (switch ingress, host RX, a scheme's guard) looks
the buffer up and recovers the id without any change to the wire format.

Buffers that are *re-encoded* along the way (VLAN tagging on a trunk,
a router rewriting TTL) register a *derived* frame whose ``parent`` links
back, so :meth:`chain` walks from any observation to the original
injection — "which attack put this frame on the wire?".

The table is bounded (:data:`PIN_LIMIT` buffers): tracing a soak test
cannot grow memory without bound; evicted buffers simply stop resolving,
and :attr:`Provenance.evicted` says how many did.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Tuple

__all__ = ["FrameRecord", "Provenance", "PIN_LIMIT"]

#: Maximum buffers pinned for id lookup at any moment.
PIN_LIMIT = 1 << 16

#: Maximum frame records retained (ids stay monotonic across eviction).
RECORD_LIMIT = 1 << 18


class FrameRecord(NamedTuple):
    """The birth certificate of one frame."""

    frame_id: int
    parent: Optional[int]
    origin: str  # "attack:arp-poison/reply", "host:user-0", ...
    kind: str    # "tx" | "derived"
    time: float


class Provenance:
    """Assigns frame ids and resolves buffers back to them."""

    def __init__(
        self, pin_limit: int = PIN_LIMIT, record_limit: int = RECORD_LIMIT
    ) -> None:
        self._ids = itertools.count(1)
        self._pin_limit = pin_limit
        self._record_limit = record_limit
        #: id(buffer) -> (frame_id, buffer).  The buffer reference pins the
        #: object so its ``id()`` cannot be recycled while mapped.
        self._by_buf: Dict[int, Tuple[int, bytes]] = {}
        self._pin_order: Deque[int] = deque()
        self.frames: Dict[int, FrameRecord] = {}
        self._record_order: Deque[int] = deque()
        self.evicted = 0

    # ------------------------------------------------------------------
    def new_frame(
        self,
        buf: bytes,
        origin: str,
        time: float,
        parent: Optional[int] = None,
        kind: str = "tx",
    ) -> int:
        """Register an injected (or derived) frame buffer; returns its id."""
        frame_id = next(self._ids)
        self._record(FrameRecord(frame_id, parent, origin, kind, time))
        self.tag(buf, frame_id)
        return frame_id

    def derive(self, buf: bytes, parent: Optional[int], origin: str, time: float) -> int:
        """A re-encoded form of ``parent`` (VLAN tag, rewrite...)."""
        return self.new_frame(buf, origin, time, parent=parent, kind="derived")

    def tag(self, buf: bytes, frame_id: int) -> None:
        """Map (an additional) buffer to an existing frame id."""
        key = id(buf)
        if key not in self._by_buf and len(self._by_buf) >= self._pin_limit:
            oldest = self._pin_order.popleft()
            self._by_buf.pop(oldest, None)
            self.evicted += 1
        if key not in self._by_buf:
            self._pin_order.append(key)
        self._by_buf[key] = (frame_id, buf)

    def lookup(self, buf: bytes) -> Optional[int]:
        """The frame id of ``buf``, or ``None`` when untracked/evicted."""
        entry = self._by_buf.get(id(buf))
        return entry[0] if entry is not None else None

    def record_for(self, frame_id: int) -> Optional[FrameRecord]:
        return self.frames.get(frame_id)

    def chain(self, frame_id: int) -> List[FrameRecord]:
        """The causal chain, newest first, ending at the injection."""
        out: List[FrameRecord] = []
        seen = set()
        current: Optional[int] = frame_id
        while current is not None and current not in seen:
            seen.add(current)
            record = self.frames.get(current)
            if record is None:
                break
            out.append(record)
            current = record.parent
        return out

    def origin_of(self, frame_id: int) -> Optional[str]:
        """The origin label at the root of the chain."""
        chain = self.chain(frame_id)
        return chain[-1].origin if chain else None

    # ------------------------------------------------------------------
    def _record(self, record: FrameRecord) -> None:
        if len(self.frames) >= self._record_limit:
            oldest = self._record_order.popleft()
            self.frames.pop(oldest, None)
        self.frames[record.frame_id] = record
        self._record_order.append(record.frame_id)

    def reset(self) -> None:
        self._ids = itertools.count(1)
        self._by_buf.clear()
        self._pin_order.clear()
        self.frames.clear()
        self._record_order.clear()
        self.evicted = 0

    def __len__(self) -> int:
        return len(self.frames)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Provenance(frames={len(self.frames)}, pinned={len(self._by_buf)}, "
            f"evicted={self.evicted})"
        )
