"""Sampling wall-clock profiler with subsystem attribution.

A daemon thread wakes every ``interval`` seconds and captures the target
thread's current stack via ``sys._current_frames()`` — the standard
external-sampler technique (py-spy and friends do the same from outside
the process).  Nothing is installed on any hot path: when the profiler
is not running the simulator, switch, and scheme code carry zero extra
instructions, which is what lets ``repro bench --check`` double as the
zero-cost guard.

Each sample is classified to a *subsystem* by walking the stack from the
innermost frame outward and taking the first frame that lands in a repro
package:

=====================  =================================================
``sim-loop``           ``repro/sim/`` — the event heap and dispatch
``switch-plane``       ``repro/l2/`` per-frame paths
``switch-plane-batched``  ``repro/l2/`` batch entry points (PR 7)
``scheme-hooks``       ``repro/schemes/`` + ``repro/hooks/``
``fault-transforms``   ``repro/faults/``
``sdn-control-plane``  ``repro/sdn/``
``host-stack``         ``repro/stack/``
``codecs``             ``repro/packets/`` + ``repro/net/``
``campaign``           ``repro/campaign/``
``observability``      ``repro/obs/`` + ``repro/perf/``
``workloads``          ``repro/attacks/`` + ``repro/workloads/``
``experiment``         ``repro/core/`` + ``repro/analysis/`` + ``repro/crypto/``
``other-repro``        anything else under ``repro/`` (cli, errors...)
``external``           stacks that never touch repro code
=====================  =================================================

Aggregation is a :class:`collections.Counter` of collapsed stacks, which
exports directly to the Brendan-Gregg folded format (``frame;frame N``)
that ``flamegraph.pl`` and speedscope consume — via ``repro profile``.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObsError

__all__ = [
    "DEFAULT_INTERVAL",
    "SamplingProfiler",
    "classify_frame",
    "classify_stack",
]

DEFAULT_INTERVAL = 0.002
_MAX_DEPTH = 64

#: Function names that mark the *batched* data plane inside ``repro/l2/``
#: (PR 7's batch entry points); everything else there is per-frame.
_BATCH_FUNCS = frozenset(
    {
        "carry_batch",
        "deliver_batch",
        "on_frame_batch",
        "lookup_batch",
        "transmit_batch",
    }
)


def classify_frame(filename: str, funcname: str) -> Optional[str]:
    """Subsystem for one frame, or ``None`` for non-repro code."""
    path = filename.replace("\\", "/")
    idx = path.rfind("/repro/")
    if idx < 0:
        return None
    top = path[idx + 7:].split("/", 1)[0]
    if top.endswith(".py"):  # repro/cli.py, repro/errors.py, ...
        top = top[:-3]
    if top == "sim":
        return "sim-loop"
    if top == "l2":
        return "switch-plane-batched" if funcname in _BATCH_FUNCS else "switch-plane"
    if top in ("schemes", "hooks"):
        return "scheme-hooks"
    if top == "faults":
        return "fault-transforms"
    if top == "sdn":
        return "sdn-control-plane"
    if top == "stack":
        return "host-stack"
    if top in ("packets", "net"):
        return "codecs"
    if top == "campaign":
        return "campaign"
    if top in ("obs", "perf"):
        return "observability"
    if top in ("attacks", "workloads"):
        return "workloads"
    if top in ("core", "analysis", "crypto"):
        return "experiment"
    return "other-repro"


def classify_stack(frames: Sequence[Tuple[str, str]]) -> str:
    """Subsystem for a whole stack (innermost frame first).

    The innermost repro frame wins, so a codec call made from the switch
    counts as codec time — fine-grained attribution, every bucket named.
    """
    for filename, funcname in frames:
        label = classify_frame(filename, funcname)
        if label is not None:
            return label
    return "external"


def _frame_label(filename: str, funcname: str) -> str:
    path = filename.replace("\\", "/")
    idx = path.rfind("/repro/")
    if idx >= 0:
        mod = path[idx + 1:]
    else:
        mod = path.rsplit("/", 1)[-1]
    if mod.endswith(".py"):
        mod = mod[:-3]
    return f"{mod.replace('/', '.')}:{funcname}"


class SamplingProfiler:
    """Wall-clock stack sampler for one target thread.

    Off by default; :meth:`start` spawns the sampler thread (targeting
    the calling thread unless told otherwise) and :meth:`stop` joins it.
    Usable as a context manager.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL, max_depth: int = _MAX_DEPTH) -> None:
        if interval <= 0:
            raise ObsError(f"interval must be positive, got {interval}")
        if max_depth < 1:
            raise ObsError(f"max_depth must be >= 1, got {max_depth}")
        self.interval = interval
        self.max_depth = max_depth
        #: Collapsed stacks (root-first label tuples) -> sample count.
        self.stacks: Counter = Counter()
        #: Subsystem -> sample count.
        self.subsystems: Counter = Counter()
        self.sample_count = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._target_id: Optional[int] = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self, target_thread: Optional[threading.Thread] = None) -> "SamplingProfiler":
        if self._thread is not None:
            raise ObsError("profiler already running")
        target = target_thread if target_thread is not None else threading.current_thread()
        if target.ident is None:
            raise ObsError("target thread has not been started")
        self._target_id = target.ident
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._take_sample()

    def _take_sample(self) -> None:
        frame = sys._current_frames().get(self._target_id)
        raw: List[Tuple[str, str]] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            raw.append((code.co_filename, code.co_name))
            frame = frame.f_back
            depth += 1
        if raw:
            self.record(raw)

    def record(self, frames: Sequence[Tuple[str, str]]) -> None:
        """Account one stack (innermost frame first).

        Public so tests can feed synthetic stacks without timing games.
        """
        self.sample_count += 1
        self.subsystems[classify_stack(frames)] += 1
        self.stacks[
            tuple(_frame_label(f, fn) for f, fn in reversed(frames))
        ] += 1

    def reset(self) -> None:
        self.stacks.clear()
        self.subsystems.clear()
        self.sample_count = 0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def attribution(self) -> Dict[str, float]:
        """Subsystem -> fraction of samples, descending."""
        total = self.sample_count
        if not total:
            return {}
        return {
            name: count / total
            for name, count in self.subsystems.most_common()
        }

    def attributed_fraction(self) -> float:
        """Fraction of samples landing in a *named* repro subsystem."""
        total = self.sample_count
        if not total:
            return 0.0
        return 1.0 - self.subsystems.get("external", 0) / total

    def collapsed(self) -> str:
        """Brendan-Gregg folded stacks: ``frame;frame;frame count``."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self) -> str:
        parts = ", ".join(
            f"{name} {share:.1%}" for name, share in self.attribution().items()
        )
        return f"{self.sample_count} samples: {parts}" if parts else "0 samples"
