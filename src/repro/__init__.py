"""repro — ARP cache poisoning: attacks, defenses, and the analysis harness.

A reproduction of *An Analysis on the Schemes for Detecting and Preventing
ARP Cache Poisoning Attacks* (Abad & Bonilla, ICDCSW 2007) as a simulated-
LAN framework: byte-accurate packet codecs, a learning switch, full host
stacks, the attack toolkit, twelve defense schemes, and an evaluation
harness that regenerates the paper's comparison tables and figures.

Quickstart::

    from repro import Simulator, Lan
    from repro.attacks import MitmAttack
    from repro.schemes import make_scheme

    sim = Simulator(seed=1)
    lan = Lan(sim)
    lan.add_monitor()
    victim, mallory = lan.add_host("victim"), lan.add_host("mallory")
    scheme = make_scheme("hybrid")
    scheme.install(lan, protected=[victim, lan.gateway, lan.monitor])
    MitmAttack(mallory, victim, lan.gateway).start()
    sim.run(until=30)
    print("\\n".join(str(a) for a in scheme.alerts))
"""

from repro._version import __version__
from repro.sim import Simulator
from repro.net import Ipv4Address, Ipv4Network, MacAddress
from repro.l2.topology import Lan
from repro.stack import Host, Router
from repro.schemes import Scheme, make_scheme, all_profiles
from repro.faults import FaultSpec, parse_fault_spec
from repro.core import (
    Analyzer,
    ScenarioConfig,
    run,
    figure_1_detection_latency,
    figure_2_overhead,
    figure_3_resolution_latency,
    figure_4_interception,
    table_1_criteria,
    table_2_effectiveness,
    table_3_false_positives,
    table_4_footprint,
)

__all__ = [
    "__version__",
    "Simulator",
    "Ipv4Address",
    "Ipv4Network",
    "MacAddress",
    "Lan",
    "Host",
    "Router",
    "Scheme",
    "make_scheme",
    "all_profiles",
    "Analyzer",
    "ScenarioConfig",
    "run",
    "FaultSpec",
    "parse_fault_spec",
    "table_1_criteria",
    "table_2_effectiveness",
    "table_3_false_positives",
    "table_4_footprint",
    "figure_1_detection_latency",
    "figure_2_overhead",
    "figure_3_resolution_latency",
    "figure_4_interception",
]
