"""ARP cache-update policies of the operating systems the paper discusses.

Which poisoning variant works against which victim is decided almost
entirely by these flags: classic literature (and the Anticap/Antidote
papers) distinguishes stacks that accept *unsolicited* replies, stacks
that only *update existing* entries from requests, and hardened stacks.
The profiles below reproduce those behaviours so the effectiveness matrix
(Table 2) exercises real policy differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "OsProfile",
    "LINUX",
    "WINDOWS_XP",
    "SOLARIS_LIKE",
    "STRICT",
    "PROFILES",
]


@dataclass(frozen=True)
class OsProfile:
    """Knobs governing how a host updates its ARP cache.

    Attributes
    ----------
    accept_unsolicited_reply:
        Create/overwrite a cache entry from a reply that was never asked
        for.  Classic Windows behaviour; the easiest poisoning target.
    update_from_request:
        Refresh/overwrite an *existing* entry using the sender fields of a
        received request.  Linux does this (it is cheap), which is what
        request-poisoning exploits.
    create_from_request:
        Create a brand-new entry from a received request's sender fields
        (beyond replying to it).  Solaris-like stacks do; Linux does not.
    accept_gratuitous:
        Honour gratuitous announcements (needed for failover/IP takeover,
        exploited by gratuitous poisoning).
    reply_wait:
        Seconds a resolution waits for a reply before retrying.
    max_retries:
        Resolution attempts before giving up.
    cache_timeout:
        Seconds a dynamic entry stays valid without refresh.
    neighbor_table_size:
        Bound on the ARP cache (Linux ``gc_thresh3``-style); ``None``
        means unbounded.  Bounded tables are what neighbor-exhaustion
        attacks evict entries out of.
    """

    name: str
    accept_unsolicited_reply: bool
    update_from_request: bool
    create_from_request: bool
    accept_gratuitous: bool
    reply_wait: float = 1.0
    max_retries: int = 3
    cache_timeout: float = 60.0
    neighbor_table_size: Optional[int] = None


LINUX = OsProfile(
    name="linux",
    accept_unsolicited_reply=False,
    update_from_request=True,
    create_from_request=False,
    accept_gratuitous=True,
)

WINDOWS_XP = OsProfile(
    name="windows-xp",
    accept_unsolicited_reply=True,
    update_from_request=True,
    create_from_request=True,
    accept_gratuitous=True,
)

SOLARIS_LIKE = OsProfile(
    name="solaris-like",
    accept_unsolicited_reply=False,
    update_from_request=True,
    create_from_request=True,
    accept_gratuitous=True,
    cache_timeout=20.0 * 60,
)

STRICT = OsProfile(
    name="strict",
    accept_unsolicited_reply=False,
    update_from_request=False,
    create_from_request=False,
    accept_gratuitous=False,
)

PROFILES: dict[str, OsProfile] = {
    p.name: p for p in (LINUX, WINDOWS_XP, SOLARIS_LIKE, STRICT)
}
