"""A DHCP server component (RFC 2131 server side).

Runs on top of a :class:`~repro.stack.host.Host` bound to UDP port 67.
Leases come from a finite pool — which is the whole point: DHCP
starvation wins by exhausting it, and the DHCP-snooping binding table
that Dynamic ARP Inspection trusts is built from this server's ACKs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import CodecError, DhcpError
from repro.net.addresses import (
    BROADCAST_IP,
    BROADCAST_MAC,
    Ipv4Address,
    Ipv4Network,
    MacAddress,
)
from repro.packets.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
)
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.udp import UdpDatagram
from repro.stack.host import Host

__all__ = ["Lease", "DhcpServer"]


@dataclass
class Lease:
    """One active address lease."""

    ip: Ipv4Address
    mac: MacAddress
    expires_at: float

    def active(self, now: float) -> bool:
        return self.expires_at > now


class DhcpServer:
    """Leases addresses from ``pool_start``..``pool_end`` within ``network``."""

    def __init__(
        self,
        host: Host,
        network: Ipv4Network,
        pool_start: int,
        pool_end: int,
        router: Ipv4Address,
        lease_time: float = 600.0,
        offer_hold: float = 10.0,
    ) -> None:
        if host.ip is None:
            raise DhcpError("DHCP server host needs a static IP")
        if not 1 <= pool_start <= pool_end <= network.num_hosts:
            raise DhcpError(
                f"bad pool [{pool_start}, {pool_end}] for {network}"
            )
        self.host = host
        self.network = network
        self.pool: List[Ipv4Address] = [
            network.host(i) for i in range(pool_start, pool_end + 1)
        ]
        self.router = router
        self.lease_time = lease_time
        self.offer_hold = offer_hold
        self.leases: Dict[MacAddress, Lease] = {}
        self._offered: Dict[int, tuple[Ipv4Address, float]] = {}  # xid -> (ip, until)
        self.offers_made = 0
        self.acks_sent = 0
        self.naks_sent = 0
        self.discovers_seen = 0
        self.pool_exhausted_events = 0
        #: Observers of (mac, ip, lease_time) on every ACK — DHCP snooping
        #: builds its binding table from this.
        self.ack_listeners: List[Callable[[MacAddress, Ipv4Address, float], None]] = []
        host.udp_bind(DHCP_SERVER_PORT, self._on_udp)

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _expire(self) -> None:
        now = self.host.sim.now
        self.leases = {m: l for m, l in self.leases.items() if l.active(now)}
        self._offered = {
            xid: (ip, until)
            for xid, (ip, until) in self._offered.items()
            if until > now
        }

    def _in_use(self) -> set[Ipv4Address]:
        used = {lease.ip for lease in self.leases.values()}
        used.update(ip for ip, _ in self._offered.values())
        return used

    def _pick_address(self, mac: MacAddress) -> Optional[Ipv4Address]:
        self._expire()
        lease = self.leases.get(mac)
        if lease is not None:
            return lease.ip
        used = self._in_use()
        for candidate in self.pool:
            if candidate not in used:
                return candidate
        return None

    @property
    def free_addresses(self) -> int:
        self._expire()
        return len(self.pool) - len(self._in_use() & set(self.pool))

    @property
    def is_exhausted(self) -> bool:
        return self.free_addresses == 0

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def _on_udp(self, host: Host, src_ip: Ipv4Address, datagram: UdpDatagram) -> None:
        try:
            message = DhcpMessage.decode(datagram.payload)
        except CodecError:
            return
        mtype = message.message_type
        if mtype == DhcpMessageType.DISCOVER:
            self._on_discover(message)
        elif mtype == DhcpMessageType.REQUEST:
            self._on_request(message)
        elif mtype == DhcpMessageType.RELEASE:
            self._on_release(message)

    def _on_discover(self, message: DhcpMessage) -> None:
        self.discovers_seen += 1
        ip = self._pick_address(message.chaddr)
        if ip is None:
            self.pool_exhausted_events += 1
            return  # servers stay silent when the pool is dry
        self._offered[message.xid] = (ip, self.host.sim.now + self.offer_hold)
        self.offers_made += 1
        offer = DhcpMessage.offer(
            chaddr=message.chaddr,
            xid=message.xid,
            yiaddr=ip,
            server_id=self.host.ip,
            lease_time=int(self.lease_time),
            netmask=self.network.netmask,
            router=self.router,
        )
        self._send(offer, message.chaddr)

    def _on_request(self, message: DhcpMessage) -> None:
        wanted = message.requested_ip or message.ciaddr
        server_id = message.server_id
        if server_id is not None and server_id != self.host.ip:
            # Client chose another server; release any offer we held.
            self._offered.pop(message.xid, None)
            return
        self._expire()
        ok = (
            wanted is not None
            and not wanted.is_unspecified
            and wanted in self.network
            and (
                wanted == self.leases.get(message.chaddr, Lease(wanted, message.chaddr, 0)).ip
                or wanted not in self._in_use()
                or self._offered.get(message.xid, (None, 0))[0] == wanted
            )
        )
        if not ok:
            self.naks_sent += 1
            nak = DhcpMessage.nak(message.chaddr, message.xid, self.host.ip)
            self._send(nak, message.chaddr)
            return
        self._offered.pop(message.xid, None)
        self.leases[message.chaddr] = Lease(
            ip=wanted,
            mac=message.chaddr,
            expires_at=self.host.sim.now + self.lease_time,
        )
        self.acks_sent += 1
        ack = DhcpMessage.ack(
            chaddr=message.chaddr,
            xid=message.xid,
            yiaddr=wanted,
            server_id=self.host.ip,
            lease_time=int(self.lease_time),
            netmask=self.network.netmask,
            router=self.router,
        )
        for listener in list(self.ack_listeners):
            listener(message.chaddr, wanted, self.lease_time)
        self._send(ack, message.chaddr)

    def _on_release(self, message: DhcpMessage) -> None:
        lease = self.leases.get(message.chaddr)
        if lease is not None and lease.ip == message.ciaddr:
            del self.leases[message.chaddr]

    def _send(self, message: DhcpMessage, chaddr: MacAddress) -> None:
        """Reply toward the client: L2 unicast to chaddr, L3 broadcast.

        Clients in INIT state have no IP yet, so replies go to the limited
        broadcast address but are framed straight at the client's MAC.
        """
        datagram = UdpDatagram(
            src_port=DHCP_SERVER_PORT,
            dst_port=DHCP_CLIENT_PORT,
            payload=message.encode(),
        )
        packet = Ipv4Packet(
            src=self.host.ip,
            dst=BROADCAST_IP,
            proto=IpProto.UDP,
            payload=datagram.encode(),
        )
        frame = EthernetFrame(
            dst=chaddr,
            src=self.host.mac,
            ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        self.host.transmit_frame(frame)
