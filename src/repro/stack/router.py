"""The LAN's default gateway, with a thin simulated WAN behind it.

MITM-of-gateway is the flagship ARP poisoning scenario, so experiments
need a real gateway: a host with forwarding enabled whose off-link
traffic goes to a pluggable WAN hook.  The built-in hook behaves like a
remote server farm — it answers ICMP echo and simple UDP request/response
exchanges after a configurable WAN round-trip.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CodecError
from repro.net.addresses import Ipv4Address, Ipv4Network, MacAddress
from repro.packets.icmp import IcmpMessage
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.udp import UdpDatagram
from repro.sim.simulator import Simulator
from repro.stack.host import Host
from repro.stack.os_profiles import LINUX, OsProfile

__all__ = ["Router"]

#: A WAN hook receives the outbound packet and returns an optional response.
WanHook = Callable[[Ipv4Packet], Optional[Ipv4Packet]]


class Router(Host):
    """A gateway host: forwards on-link traffic and uplinks the rest."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        ip: Ipv4Address,
        network: Ipv4Network,
        wan_rtt: float = 0.02,
        profile: OsProfile = LINUX,
    ) -> None:
        super().__init__(
            sim, name, mac, ip=ip, network=network, gateway=None, profile=profile
        )
        self.ip_forward = True
        self.wan_rtt = wan_rtt
        self.wan_hook: WanHook = self._default_wan
        self.wan_tx = 0
        self.wan_rx = 0

    def _ip_forward(self, packet: Ipv4Packet) -> None:
        if packet.ttl <= 1:
            return
        out = packet.decremented()
        self.counters["ip_forwarded"] += 1
        out = self.forward_taps.transform(out)
        if self._on_link(out.dst):
            self.resolve(out.dst, on_resolved=lambda mac: self._tx_ip(mac, out))
            return
        # Off-link: hand to the WAN.
        self.wan_tx += 1
        response = self.wan_hook(out)
        if response is None:
            return

        def deliver_response() -> None:
            self.wan_rx += 1
            if self._on_link(response.dst):
                self.resolve(
                    response.dst,
                    on_resolved=lambda mac: self._tx_ip(mac, response),
                )

        self.sim.schedule(self.wan_rtt, deliver_response, name=f"{self.name}.wan")

    # ------------------------------------------------------------------
    # Built-in "the internet" behaviour
    # ------------------------------------------------------------------
    def _default_wan(self, packet: Ipv4Packet) -> Optional[Ipv4Packet]:
        """Echo-style remote endpoint: answers pings and UDP requests."""
        if packet.proto == IpProto.ICMP:
            try:
                message = IcmpMessage.decode(packet.payload)
            except CodecError:
                return None
            if not message.is_echo_request:
                return None
            return Ipv4Packet(
                src=packet.dst,
                dst=packet.src,
                proto=IpProto.ICMP,
                payload=message.reply_to().encode(),
            )
        if packet.proto == IpProto.UDP:
            try:
                datagram = UdpDatagram.decode(packet.payload)
            except CodecError:
                return None
            answer = UdpDatagram(
                src_port=datagram.dst_port,
                dst_port=datagram.src_port,
                payload=b"wan-echo:" + datagram.payload[:64],
            )
            return Ipv4Packet(
                src=packet.dst,
                dst=packet.src,
                proto=IpProto.UDP,
                payload=answer.encode(),
            )
        return None
