"""A DHCP client component (RFC 2131 client side, DORA + renew).

Drives a host from unconfigured to bound, announces the new binding with
a gratuitous ARP (the real-world behaviour that passive detectors must
not mistake for poisoning), and renews at T1.  Lease churn from many of
these clients is the benign-noise workload of the false-positive table.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import CodecError
from repro.net.addresses import (
    BROADCAST_IP,
    BROADCAST_MAC,
    Ipv4Address,
    Ipv4Network,
    ZERO_IP,
)
from repro.packets.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
)
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.udp import UdpDatagram
from repro.stack.host import Host

__all__ = ["DhcpClient"]

_INIT = "init"
_SELECTING = "selecting"
_REQUESTING = "requesting"
_BOUND = "bound"


class DhcpClient:
    """Acquires and maintains a lease for ``host``."""

    def __init__(
        self,
        host: Host,
        on_bound: Optional[Callable[[Ipv4Address], None]] = None,
        retry_timeout: float = 4.0,
        max_retries: int = 4,
        announce_on_bind: bool = True,
    ) -> None:
        self.host = host
        self.on_bound = on_bound
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.announce_on_bind = announce_on_bind
        self.state = _INIT
        self.xid = 0
        self.server_id: Optional[Ipv4Address] = None
        self.offered_ip: Optional[Ipv4Address] = None
        self.lease_time: Optional[float] = None
        self.bound_ip: Optional[Ipv4Address] = None
        self.attempts = 0
        self.failures = 0
        self.binds = 0
        self.naks = 0
        self._timer = None
        self._renew_cancel: Optional[Callable[[], None]] = None
        self._rng = host.sim.rng_stream(f"dhcp-client/{host.name}")
        host.udp_bind(DHCP_CLIENT_PORT, self._on_udp)

    # ------------------------------------------------------------------
    # State machine entry points
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin (or restart) acquisition."""
        self.state = _SELECTING
        self.attempts = 1
        self.xid = self._rng.getrandbits(32)
        self._send_discover()
        self._arm_timer()

    def release(self) -> None:
        """Give the lease back and deconfigure."""
        if self.bound_ip is None or self.server_id is None:
            return
        message = DhcpMessage.release(
            chaddr=self.host.mac,
            xid=self._rng.getrandbits(32),
            ciaddr=self.bound_ip,
            server_id=self.server_id,
        )
        self._send(message)
        if self._renew_cancel is not None:
            self._renew_cancel()
            self._renew_cancel = None
        self.bound_ip = None
        self.state = _INIT

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def _on_udp(self, host: Host, src_ip: Ipv4Address, datagram: UdpDatagram) -> None:
        try:
            message = DhcpMessage.decode(datagram.payload)
        except CodecError:
            return
        if message.chaddr != self.host.mac or message.xid != self.xid:
            return
        mtype = message.message_type
        if mtype == DhcpMessageType.OFFER and self.state == _SELECTING:
            self._on_offer(message)
        elif mtype == DhcpMessageType.ACK and self.state == _REQUESTING:
            self._on_ack(message)
        elif mtype == DhcpMessageType.NAK and self.state == _REQUESTING:
            self.naks += 1
            self.start()

    def _on_offer(self, message: DhcpMessage) -> None:
        if message.server_id is None or message.yiaddr.is_unspecified:
            return
        self._cancel_timer()
        self.state = _REQUESTING
        self.server_id = message.server_id
        self.offered_ip = message.yiaddr
        request = DhcpMessage.request(
            chaddr=self.host.mac,
            xid=self.xid,
            requested=message.yiaddr,
            server_id=message.server_id,
        )
        self._send(request)
        self._arm_timer()

    def _on_ack(self, message: DhcpMessage) -> None:
        self._cancel_timer()
        self.state = _BOUND
        self.bound_ip = message.yiaddr
        self.lease_time = float(message.lease_time or 600)
        self.binds += 1
        netmask = message.options.get(1)
        prefix = bin(int.from_bytes(netmask, "big")).count("1") if netmask else 24
        network = Ipv4Network(
            f"{Ipv4Address(int(message.yiaddr) & (~((1 << (32 - prefix)) - 1) & 0xFFFFFFFF))}/{prefix}"
        )
        self.host.set_ip(message.yiaddr, network=network, gateway=message.router)
        if self.announce_on_bind:
            self.host.announce()
        if self.on_bound is not None:
            self.on_bound(message.yiaddr)
        self._schedule_renew()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        def on_timeout() -> None:
            if self.state == _BOUND:
                return
            if self.attempts >= self.max_retries:
                self.failures += 1
                self.state = _INIT
                return
            self.attempts += 1
            if self.state == _SELECTING:
                self._send_discover()
            elif self.state == _REQUESTING and self.offered_ip is not None:
                request = DhcpMessage.request(
                    chaddr=self.host.mac,
                    xid=self.xid,
                    requested=self.offered_ip,
                    server_id=self.server_id,
                )
                self._send(request)
            self._arm_timer()

        self._timer = self.host.sim.schedule(
            self.retry_timeout, on_timeout, name=f"{self.host.name}.dhcp-timer"
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_renew(self) -> None:
        if self.lease_time is None:
            return
        t1 = self.lease_time / 2

        def renew() -> None:
            if self.state != _BOUND or self.bound_ip is None:
                return
            self.state = _REQUESTING
            self.xid = self._rng.getrandbits(32)
            self.attempts = 1
            request = DhcpMessage.request(
                chaddr=self.host.mac,
                xid=self.xid,
                requested=self.bound_ip,
                server_id=self.server_id,
            )
            self._send(request)
            self._arm_timer()

        event = self.host.sim.schedule(t1, renew, name=f"{self.host.name}.dhcp-renew")
        self._renew_cancel = event.cancel

    # ------------------------------------------------------------------
    # Send helpers
    # ------------------------------------------------------------------
    def _send_discover(self) -> None:
        self._send(DhcpMessage.discover(chaddr=self.host.mac, xid=self.xid))

    def _send(self, message: DhcpMessage) -> None:
        """Broadcast toward servers; works with or without an IP."""
        datagram = UdpDatagram(
            src_port=DHCP_CLIENT_PORT,
            dst_port=DHCP_SERVER_PORT,
            payload=message.encode(),
        )
        src = self.host.ip if self.host.ip is not None else ZERO_IP
        packet = Ipv4Packet(
            src=src, dst=BROADCAST_IP, proto=IpProto.UDP, payload=datagram.encode()
        )
        frame = EthernetFrame(
            dst=BROADCAST_MAC,
            src=self.host.mac,
            ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        self.host.transmit_frame(frame)
