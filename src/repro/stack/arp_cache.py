"""Per-host ARP cache.

The cache is the thing the whole paper is about poisoning.  It records
where each binding came from (``source``), keeps an update history, and
exposes change notifications — host-resident detectors (the middleware
scheme) and the metrics layer both subscribe to those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.net.addresses import Ipv4Address, MacAddress

__all__ = ["ArpCacheEntry", "ArpCacheChange", "ArpCache", "BindingSource"]


class BindingSource:
    """How a cache entry got there (for auditability and detection)."""

    STATIC = "static"
    SOLICITED_REPLY = "solicited-reply"
    UNSOLICITED_REPLY = "unsolicited-reply"
    REQUEST = "request"
    GRATUITOUS = "gratuitous"
    DHCP = "dhcp"
    SARP = "sarp"
    TARP = "tarp"


@dataclass
class ArpCacheEntry:
    """One IP -> MAC binding."""

    ip: Ipv4Address
    mac: MacAddress
    expires_at: float
    source: str
    static: bool = False
    updated_at: float = 0.0


@dataclass(frozen=True)
class ArpCacheChange:
    """Emitted whenever a binding is created, changed or refreshed."""

    time: float
    ip: Ipv4Address
    old_mac: Optional[MacAddress]
    new_mac: MacAddress
    source: str

    @property
    def is_rebinding(self) -> bool:
        """True when an existing IP flipped to a different MAC."""
        return self.old_mac is not None and self.old_mac != self.new_mac


class ArpCache:
    """A mutable IP -> MAC table with expiry, pinning and change hooks.

    ``capacity`` bounds the table like a real kernel neighbor table
    (Linux ``gc_thresh3``); when full, inserting a new dynamic binding
    evicts the least-recently-updated dynamic entry.  That eviction is
    exactly what neighbor-table exhaustion attacks exploit.
    """

    def __init__(
        self, default_timeout: float = 60.0, capacity: Optional[int] = None
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.default_timeout = default_timeout
        self.capacity = capacity
        self._entries: Dict[Ipv4Address, ArpCacheEntry] = {}
        self._listeners: List[Callable[[ArpCacheChange], None]] = []
        self.history: List[ArpCacheChange] = []
        self.rejected_updates = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def on_change(
        self, listener: Callable[[ArpCacheChange], None]
    ) -> Callable[[], None]:
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def _notify(self, change: ArpCacheChange) -> None:
        self.history.append(change)
        for listener in list(self._listeners):
            listener(change)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(
        self,
        ip: Ipv4Address,
        mac: MacAddress,
        now: float,
        source: str,
        timeout: Optional[float] = None,
    ) -> bool:
        """Insert or update a dynamic binding.

        Returns ``False`` (and counts a rejection) when the entry is
        pinned static — static entries are exactly the "immune to dynamic
        updates" prevention mechanism.
        """
        existing = self._entries.get(ip)
        if existing is not None and existing.static:
            self.rejected_updates += 1
            return False
        if existing is None and self.capacity is not None:
            self._evict_if_full(now)
        old_mac = existing.mac if existing is not None else None
        ttl = self.default_timeout if timeout is None else timeout
        self._entries[ip] = ArpCacheEntry(
            ip=ip,
            mac=mac,
            expires_at=now + ttl,
            source=source,
            updated_at=now,
        )
        self._notify(
            ArpCacheChange(time=now, ip=ip, old_mac=old_mac, new_mac=mac, source=source)
        )
        return True

    def _evict_if_full(self, now: float) -> None:
        """Free one slot: drop expired dynamics first, then the LRU one."""
        assert self.capacity is not None
        if len(self._entries) < self.capacity:
            return
        expired = [
            ip
            for ip, entry in self._entries.items()
            if not entry.static and entry.expires_at <= now
        ]
        if expired:
            del self._entries[expired[0]]
            return
        dynamics = [e for e in self._entries.values() if not e.static]
        if not dynamics:
            return  # table pinned solid; insertion will exceed capacity
        victim = min(dynamics, key=lambda e: e.updated_at)
        del self._entries[victim.ip]
        self.evictions += 1

    def pin(self, ip: Ipv4Address, mac: MacAddress, now: float = 0.0) -> None:
        """Install a static (poison-proof) binding."""
        old = self._entries.get(ip)
        old_mac = old.mac if old is not None else None
        self._entries[ip] = ArpCacheEntry(
            ip=ip,
            mac=mac,
            expires_at=float("inf"),
            source=BindingSource.STATIC,
            static=True,
            updated_at=now,
        )
        self._notify(
            ArpCacheChange(
                time=now, ip=ip, old_mac=old_mac, new_mac=mac,
                source=BindingSource.STATIC,
            )
        )

    def unpin(self, ip: Ipv4Address) -> None:
        entry = self._entries.get(ip)
        if entry is not None and entry.static:
            del self._entries[ip]

    def invalidate(self, ip: Ipv4Address) -> None:
        self._entries.pop(ip, None)

    def age_out(self, ip: Ipv4Address) -> bool:
        """Remove a *dynamic* entry (models natural expiry); static stays."""
        entry = self._entries.get(ip)
        if entry is None or entry.static:
            return False
        del self._entries[ip]
        return True

    def flush_dynamic(self) -> None:
        self._entries = {ip: e for ip, e in self._entries.items() if e.static}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, ip: Ipv4Address, now: float) -> Optional[MacAddress]:
        entry = self._entries.get(ip)
        if entry is None:
            return None
        if not entry.static and entry.expires_at <= now:
            del self._entries[ip]
            return None
        return entry.mac

    def entry(self, ip: Ipv4Address) -> Optional[ArpCacheEntry]:
        """Raw entry access (no expiry side effects) for inspection."""
        return self._entries.get(ip)

    def __contains__(self, ip: Ipv4Address) -> bool:
        return ip in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ArpCacheEntry]:
        return iter(self._entries.values())

    def rebinding_events(self) -> List[ArpCacheChange]:
        """All historical changes where an IP moved between MACs."""
        return [c for c in self.history if c.is_rebinding]
