"""A simulated end host: NIC, ARP resolver/cache, IPv4, ICMP, UDP, TCP-lite.

The host is where ARP cache poisoning actually lands, so its ARP input
path is written to be *hookable* in exactly the three places the surveyed
defenses attach:

* ``arp_guards`` — called on every received ARP packet before the cache is
  touched; a guard can force-accept, reject, or abstain.  Anticap,
  Antidote, S-ARP/TARP verification and the host middleware all live here.
* ``arp_tx_transform`` — rewrites ARP packets this host originates;
  S-ARP/TARP use it to append signatures/tickets.
* ``arp_rx_cost`` / ``arp_tx_cost`` — charge signing/verification time to
  the simulated clock, so crypto schemes show up in resolution latency.

``arp_guards``, ``frame_taps`` and ``forward_taps`` are
:class:`repro.hooks.HookPoint` pipelines: deterministically ordered,
fault-isolated (a crashing guard is counted and attributed, not fatal),
and safe against removal during dispatch.  They keep a list-compatible
``append``/``remove`` surface for ad-hoc taps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CodecError, StackError
from repro.hooks import HookPoint, Pipeline
from repro.l2.device import Device, Port
from repro.net.addresses import (
    BROADCAST_IP,
    BROADCAST_MAC,
    Ipv4Address,
    Ipv4Network,
    MacAddress,
)
from repro.obs.trace import TRACER
from repro.perf import PERF
from repro.packets.arp import ArpOp, ArpPacket
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.icmp import IcmpMessage, IcmpType
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.tcp import TcpFlags, TcpSegment
from repro.packets.udp import UdpDatagram
from repro.sim.simulator import Simulator
from repro.sim.trace import Direction, TraceRecorder
from repro.stack.arp_cache import ArpCache, BindingSource
from repro.stack.os_profiles import LINUX, OsProfile

__all__ = ["Host", "ArpGuard", "UdpHandler"]

#: Guard verdicts: True = force accept, False = drop, None = no opinion.
ArpGuard = Callable[["Host", ArpPacket, EthernetFrame], Optional[bool]]
#: UDP handler signature: (host, src_ip, datagram).
UdpHandler = Callable[["Host", Ipv4Address, UdpDatagram], None]


@dataclass
class _PendingResolution:
    started_at: float
    attempts: int = 1
    waiters: List[Tuple[Callable[[MacAddress], None], Optional[Callable[[], None]]]] = (
        field(default_factory=list)
    )
    timer: Optional[object] = None  # sim Event


@dataclass
class _PendingPing:
    callback: Optional[Callable[[Ipv4Address, float], None]]
    sent_at: float
    timer: Optional[object] = None  # sim Event for the reply timeout


class Host(Device):
    """An end station on the LAN.

    Parameters
    ----------
    sim, name:
        Simulation engine and a unique host name.
    mac:
        The NIC's hardware address.
    ip:
        Static IPv4 address, or ``None`` when the host will DHCP.
    network:
        The LAN subnet; used for on-link vs via-gateway routing.
    gateway:
        Default gateway IP (resolved through ARP like everything else).
    profile:
        The OS cache-update policy (:mod:`repro.stack.os_profiles`).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        ip: Optional[Ipv4Address] = None,
        network: Optional[Ipv4Network] = None,
        gateway: Optional[Ipv4Address] = None,
        profile: OsProfile = LINUX,
    ) -> None:
        super().__init__(sim, name)
        self.nic: Port = self.add_port(name=f"{name}.eth0")
        self.mac = mac
        self.ip = ip
        self.network = network
        self.gateway = gateway
        self.profile = profile
        self.arp_cache = ArpCache(
            default_timeout=profile.cache_timeout,
            capacity=profile.neighbor_table_size,
        )
        self.recorder = TraceRecorder()
        self.promiscuous = False
        self.ip_forward = False

        # Scheme attachment points — every list-like surface is a
        # fault-isolated HookPoint (repro.hooks): deterministic ordering,
        # one-shot removal tokens, per-scheme error attribution.
        self.hooks = Pipeline(node=name)
        #: ARP input guards; first non-None verdict wins.
        self.arp_guards: HookPoint = self.hooks.point(
            "host.arp_guard", fallback_label="arp-guard"
        )
        self.arp_tx_transform: Optional[Callable[[ArpPacket], ArpPacket]] = None
        self.arp_rx_cost: Optional[Callable[[ArpPacket], float]] = None
        self.arp_tx_cost: Optional[Callable[[ArpPacket], float]] = None
        #: Promiscuous observers of every received frame (monitors, sniffers).
        self.frame_taps: HookPoint = self.hooks.point("host.frame_tap")
        #: Forward taps may return a replacement packet (tampering) or None.
        self.forward_taps: HookPoint = self.hooks.point("host.forward_tap")

        # Transport state ------------------------------------------------
        self._pending_arp: Dict[Ipv4Address, _PendingResolution] = {}
        self._udp_handlers: Dict[int, UdpHandler] = {}
        self.tcp_open_ports: set[int] = set()
        self._pending_pings: Dict[Tuple[int, int], _PendingPing] = {}
        self._pending_tcp: Dict[
            Tuple[Ipv4Address, int, int], Callable[[TcpSegment], None]
        ] = {}
        self._ping_ids = itertools.count(1)
        self._ip_ids = itertools.count(1)
        self._ephemeral_ports = itertools.count(49152)
        self.icmp_echo_enabled = True
        self.arp_responder_enabled = True

        # Counters ---------------------------------------------------------
        self.counters: Dict[str, int] = {
            "arp_rx": 0,
            "arp_tx": 0,
            "arp_requests_sent": 0,
            "arp_replies_sent": 0,
            "arp_guard_drops": 0,
            "arp_unsolicited_ignored": 0,
            "arp_resolution_failures": 0,
            "ip_tx": 0,
            "ip_rx": 0,
            "ip_forwarded": 0,
            "ip_no_route": 0,
            "ip_misaddressed": 0,
            "icmp_echo_rx": 0,
            "icmp_reply_rx": 0,
            "udp_rx": 0,
            "udp_unreachable": 0,
            "tcp_rx": 0,
            "decode_errors": 0,
        }
        self.resolution_latencies: List[float] = []

    # ==================================================================
    # Configuration helpers
    # ==================================================================
    def set_ip(
        self,
        ip: Ipv4Address,
        network: Optional[Ipv4Network] = None,
        gateway: Optional[Ipv4Address] = None,
    ) -> None:
        """(Re)configure addressing — used by the DHCP client."""
        self.ip = ip
        if network is not None:
            self.network = network
        if gateway is not None:
            self.gateway = gateway

    def udp_bind(self, port: int, handler: UdpHandler) -> None:
        if port in self._udp_handlers:
            raise StackError(f"{self.name}: UDP port {port} already bound")
        self._udp_handlers[port] = handler

    def udp_unbind(self, port: int) -> None:
        self._udp_handlers.pop(port, None)

    def add_arp_guard(
        self, guard: ArpGuard, priority: int = 0, owner: Optional[str] = None
    ) -> Callable[[], None]:
        """Install an ARP input guard; returns a one-shot uninstaller."""
        return self.arp_guards.add(guard, priority=priority, owner=owner)

    # ==================================================================
    # Frame input
    # ==================================================================
    def on_frame(self, port: Port, data: bytes) -> None:
        if (
            not self.frame_taps.hooks
            and not self.promiscuous
            and len(data) >= 14
            and not data[0] & 1  # I/G bit clear: unicast destination
            and data[:6] != self.mac.packed
        ):
            # NIC-level filter: a non-promiscuous NIC drops foreign
            # unicast by comparing the first six wire bytes — no frame
            # object is built and nothing is captured, exactly like a
            # sniffer running without promiscuous mode.  Taps or the
            # promiscuous flag disable the filter.
            return
        self.recorder.record(self.sim.now, self.name, Direction.RX, data)
        try:
            # Lazy view: only the 14-byte header is parsed here.  A frame
            # this host drops (foreign unicast, unhandled ethertype) is
            # discarded without the payload ever being materialized.
            frame = EthernetFrame.lazy(data)
        except CodecError:
            self.counters["decode_errors"] += 1
            return
        if TRACER.enabled:
            tracer = TRACER
            fid = tracer.provenance.lookup(data)
            previous = tracer.current_frame
            tracer.current_frame = fid
            try:
                with tracer.span("host.rx", node=self.name, frame=fid):
                    self._frame_dispatch(frame, data)
            finally:
                tracer.current_frame = previous
        else:
            self._frame_dispatch(frame, data)

    def on_frame_batch(self, port: Port, datas: Sequence[bytes]) -> None:
        """Vectorized NIC receive: filter the whole batch, then unroll.

        A non-promiscuous, untapped NIC compares destination MAC slices
        across every frame in the batch in one comprehension — foreign
        unicast never produces a frame view, a capture record, or even a
        per-frame Python call.  Anything that makes the NIC see
        everything (taps, promiscuous mode, tracing) falls back to the
        exact per-frame path.
        """
        if self.frame_taps.hooks or self.promiscuous or TRACER.enabled:
            on_frame = self.on_frame
            for data in datas:
                on_frame(port, data)
            return
        mine = self.mac.packed
        survivors = [
            d for d in datas if len(d) < 14 or d[0] & 1 or d[:6] == mine
        ]
        PERF.nic_batch_filtered += len(datas) - len(survivors)
        if not survivors:
            return
        on_frame = self.on_frame
        for data in survivors:
            on_frame(port, data)

    def _frame_dispatch(self, frame: EthernetFrame, data: bytes) -> None:
        if self.frame_taps.hooks:
            # The hook point handles tracing (one scheme.inspect span per
            # labeled tap) and isolates tap exceptions.
            self.frame_taps.emit(frame, data)
        addressed = frame.dst == self.mac or frame.dst.is_multicast
        if not addressed:
            # NIC in non-promiscuous mode filters foreign unicast; in
            # promiscuous mode the taps above already saw it, but the
            # protocol stack still ignores it.
            return
        if frame.ethertype == EtherType.ARP:
            self._arp_rx(frame)
        elif frame.ethertype == EtherType.IPV4:
            self._ip_rx(frame)

    # ==================================================================
    # ARP
    # ==================================================================
    def _arp_rx(self, frame: EthernetFrame) -> None:
        try:
            arp = ArpPacket.decode(frame.payload)
        except CodecError:
            self.counters["decode_errors"] += 1
            return
        self.counters["arp_rx"] += 1
        cost = self.arp_rx_cost(arp) if self.arp_rx_cost is not None else 0.0
        if cost > 0:
            # Crypto schemes defer processing past the verification cost;
            # carry the frame id across the scheduling gap so guards and
            # alerts still attribute to the triggering frame.
            fid = TRACER.current_frame if TRACER.enabled else None
            self.sim.schedule(
                cost,
                lambda: self._arp_process(arp, frame, fid),
                name=f"{self.name}.arp-crypto",
            )
        else:
            self._arp_process(arp, frame)

    def _arp_process(
        self,
        arp: ArpPacket,
        frame: EthernetFrame,
        fid: Optional[int] = None,
    ) -> None:
        tracer = TRACER
        if tracer.enabled and fid is not None:
            tracer.current_frame = fid
        # One code path for traced and untraced runs: the hook point
        # emits per-guard scheme.inspect spans itself when tracing is on,
        # isolates guard crashes, and applies the fail-open/closed policy.
        verdict = self.arp_guards.verdict(self, arp, frame)
        if verdict is False:
            self.counters["arp_guard_drops"] += 1
            if tracer.enabled:
                tracer.instant(
                    "host.drop",
                    node=self.name,
                    reason="arp-guard",
                    frame=tracer.current_frame,
                )
            return

        forced = verdict is True
        if arp.is_gratuitous:
            self._arp_gratuitous(arp, forced)
            return
        if arp.is_request:
            self._arp_request_in(arp, forced)
        else:
            self._arp_reply_in(arp, frame, forced)

    def _arp_gratuitous(self, arp: ArpPacket, forced: bool) -> None:
        if not (forced or self.profile.accept_gratuitous):
            return
        exists = arp.spa in self.arp_cache
        if forced or exists or self.profile.create_from_request:
            self._cache_put(arp, BindingSource.GRATUITOUS)

    def _arp_request_in(self, arp: ArpPacket, forced: bool) -> None:
        # 1. Answer if the request is for our address.
        if (
            self.ip is not None
            and arp.tpa == self.ip
            and self.arp_responder_enabled
        ):
            reply = ArpPacket.reply(
                sha=self.mac, spa=self.ip, tha=arp.sha, tpa=arp.spa
            )
            self.send_arp(reply, dst_mac=arp.sha)
        # 2. Optionally learn the sender binding.
        if arp.spa.is_unspecified:
            return  # RFC 5227 probe carries no binding
        exists = arp.spa in self.arp_cache
        should = forced or (
            (exists and self.profile.update_from_request)
            or (
                not exists
                and self.profile.create_from_request
                and self.ip is not None
                and arp.tpa == self.ip
            )
        )
        # A solicited resolution can also be completed by a request that
        # crosses ours (both sides resolving each other simultaneously) —
        # but only on stacks that learn from requests at all.  Strict
        # stacks (S-ARP/TARP) must keep waiting for an authenticated reply.
        if arp.spa in self._pending_arp and (
            forced or self.profile.update_from_request
        ):
            self._cache_put(arp, BindingSource.REQUEST)
            self._complete_resolution(arp.spa, arp.sha)
        elif should:
            self._cache_put(arp, BindingSource.REQUEST)

    def _arp_reply_in(
        self, arp: ArpPacket, frame: EthernetFrame, forced: bool
    ) -> None:
        pending = self._pending_arp.get(arp.spa)
        if pending is not None:
            self._cache_put(arp, BindingSource.SOLICITED_REPLY)
            self._complete_resolution(arp.spa, arp.sha)
            return
        if forced or self.profile.accept_unsolicited_reply:
            self._cache_put(arp, BindingSource.UNSOLICITED_REPLY)
            return
        if self.profile.update_from_request and arp.spa in self.arp_cache:
            # Linux-style: an unsolicited reply refreshes an existing entry
            # (treated like any sender-binding sighting).
            self._cache_put(arp, BindingSource.UNSOLICITED_REPLY)
            return
        self.counters["arp_unsolicited_ignored"] += 1

    def _cache_put(self, arp: ArpPacket, source: str) -> None:
        self.arp_cache.put(arp.spa, arp.sha, now=self.sim.now, source=source)
        if TRACER.enabled:
            # Cache updates are where poisoning lands: the audit trail
            # records every accepted binding with the frame that caused it.
            TRACER.instant(
                "arp.cache_put",
                node=self.name,
                ip=str(arp.spa),
                mac=str(arp.sha),
                source=source,
                frame=TRACER.current_frame,
            )

    def accept_arp_binding(self, ip: Ipv4Address, mac: MacAddress, source: str) -> None:
        """Scheme API: install a vetted binding and wake pending resolutions.

        Defenses that vet ARP asynchronously (Antidote's probe, S-ARP's
        key lookup) drop the packet in their guard, verify out of band,
        and then call this to commit the binding.
        """
        self.arp_cache.put(ip, mac, now=self.sim.now, source=source)
        self._complete_resolution(ip, mac)

    # ------------------------------------------------------------------
    # ARP output & resolution
    # ------------------------------------------------------------------
    def send_arp(self, arp: ArpPacket, dst_mac: MacAddress) -> None:
        """Transmit an ARP packet, applying scheme transform and tx cost."""
        if self.arp_tx_transform is not None:
            arp = self.arp_tx_transform(arp)
        cost = self.arp_tx_cost(arp) if self.arp_tx_cost is not None else 0.0

        def do_send() -> None:
            frame = EthernetFrame(
                dst=dst_mac, src=self.mac, ethertype=EtherType.ARP,
                payload=arp.encode(),
            )
            self.counters["arp_tx"] += 1
            if arp.is_request:
                self.counters["arp_requests_sent"] += 1
            else:
                self.counters["arp_replies_sent"] += 1
            self.transmit_frame(frame)

        if cost > 0:
            self.sim.schedule(cost, do_send)
        else:
            do_send()

    def announce(self) -> None:
        """Broadcast a gratuitous ARP for our own binding (boot / failover)."""
        if self.ip is None:
            raise StackError(f"{self.name}: cannot announce without an IP")
        self.send_arp(
            ArpPacket.gratuitous(self.mac, self.ip, as_reply=False),
            dst_mac=BROADCAST_MAC,
        )

    def is_resolving(self, ip: Ipv4Address) -> bool:
        """True while a resolution for ``ip`` is outstanding.

        Scheme API: "solicited" is defined by this predicate — a reply for
        an IP we are not resolving is unsolicited by definition.
        """
        return ip in self._pending_arp

    def resolve(
        self,
        ip: Ipv4Address,
        on_resolved: Callable[[MacAddress], None],
        on_failed: Optional[Callable[[], None]] = None,
    ) -> None:
        """Resolve ``ip`` to a MAC, from cache or by asking the network."""
        cached = self.arp_cache.get(ip, self.sim.now)
        if cached is not None:
            on_resolved(cached)
            return
        pending = self._pending_arp.get(ip)
        if pending is not None:
            pending.waiters.append((on_resolved, on_failed))
            return
        pending = _PendingResolution(started_at=self.sim.now)
        pending.waiters.append((on_resolved, on_failed))
        self._pending_arp[ip] = pending
        self._send_arp_request(ip)
        self._arm_resolution_timer(ip)

    def _send_arp_request(self, ip: Ipv4Address) -> None:
        spa = self.ip if self.ip is not None else Ipv4Address(0)
        request = ArpPacket.request(sha=self.mac, spa=spa, tpa=ip)
        self.send_arp(request, dst_mac=BROADCAST_MAC)

    def _arm_resolution_timer(self, ip: Ipv4Address) -> None:
        pending = self._pending_arp.get(ip)
        if pending is None:
            return

        def on_timeout() -> None:
            current = self._pending_arp.get(ip)
            if current is None:
                return
            if current.attempts >= self.profile.max_retries:
                del self._pending_arp[ip]
                self.counters["arp_resolution_failures"] += 1
                for _, on_failed in current.waiters:
                    if on_failed is not None:
                        on_failed()
                return
            current.attempts += 1
            self._send_arp_request(ip)
            self._arm_resolution_timer(ip)

        pending.timer = self.sim.schedule(
            self.profile.reply_wait, on_timeout, name=f"{self.name}.arp-timeout"
        )

    def _complete_resolution(self, ip: Ipv4Address, mac: MacAddress) -> None:
        pending = self._pending_arp.pop(ip, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        latency = self.sim.now - pending.started_at
        self.resolution_latencies.append(latency)
        # Registry metric (resolutions are rare — well off the wire fast
        # path, so the labeled observe is affordable unconditionally).
        from repro.obs.registry import REGISTRY

        REGISTRY.histogram(
            "arp_resolution_seconds",
            "ARP resolution latency per host",
            labels=("host",),
        ).labels(host=self.name).observe(latency)
        for on_resolved, _ in pending.waiters:
            on_resolved(mac)

    # ==================================================================
    # IPv4
    # ==================================================================
    def _on_link(self, ip: Ipv4Address) -> bool:
        return self.network is not None and ip in self.network

    def send_ip(
        self,
        dst: Ipv4Address,
        proto: int,
        payload: bytes,
        ttl: int = 64,
        on_unresolvable: Optional[Callable[[], None]] = None,
    ) -> None:
        """Send an IPv4 packet, resolving the next hop as needed."""
        if self.ip is None:
            raise StackError(f"{self.name}: no IP address configured")
        packet = Ipv4Packet(
            src=self.ip,
            dst=dst,
            proto=proto,
            payload=payload,
            ttl=ttl,
            identification=next(self._ip_ids) & 0xFFFF,
        )
        self.counters["ip_tx"] += 1
        if dst == self.ip:
            self._ip_deliver(packet)
            return
        is_bcast = dst.is_broadcast or (
            self.network is not None and dst == self.network.broadcast
        )
        if is_bcast:
            self._tx_ip(BROADCAST_MAC, packet)
            return
        if self._on_link(dst):
            next_hop = dst
        elif self.gateway is not None:
            next_hop = self.gateway
        else:
            self.counters["ip_no_route"] += 1
            if on_unresolvable is not None:
                on_unresolvable()
            return

        def failed() -> None:
            if on_unresolvable is not None:
                on_unresolvable()

        self.resolve(
            next_hop,
            on_resolved=lambda mac: self._tx_ip(mac, packet),
            on_failed=failed,
        )

    def _tx_ip(self, dst_mac: MacAddress, packet: Ipv4Packet) -> None:
        frame = EthernetFrame(
            dst=dst_mac, src=self.mac, ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        self.transmit_frame(frame)

    def transmit_frame(self, frame: EthernetFrame, origin: Optional[str] = None) -> None:
        """Put a fully formed frame on the wire (also used by attackers).

        ``origin`` labels the injection in the provenance table (attack
        tools pass e.g. ``"attack:arp-poison/reply"``); by default frames
        are attributed to this host.
        """
        data = frame.encode()
        if TRACER.enabled:
            # A frame transmitted while processing a received one (an ARP
            # reply answering a request, a forwarded packet) records that
            # frame as its causal parent.
            fid = TRACER.provenance.new_frame(
                data,
                origin or f"host:{self.name}",
                self.sim.now,
                parent=TRACER.current_frame,
            )
            TRACER.instant("host.tx", node=self.name, frame=fid, origin=origin)
        self.recorder.record(self.sim.now, self.name, Direction.TX, data)
        self.nic.transmit(data)

    def _ip_rx(self, frame: EthernetFrame) -> None:
        try:
            packet = Ipv4Packet.decode(frame.payload)
        except CodecError:
            self.counters["decode_errors"] += 1
            return
        self.counters["ip_rx"] += 1
        for_us = (
            self.ip is not None
            and (
                packet.dst == self.ip
                or packet.dst.is_broadcast
                or (self.network is not None and packet.dst == self.network.broadcast)
            )
        ) or (self.ip is None and packet.dst.is_broadcast)
        if for_us:
            self._ip_deliver(packet)
        elif self.ip_forward:
            self._ip_forward(packet)
        else:
            # L2 delivered it to us but L3 says it belongs to someone else:
            # the victim-side symptom of a poisoned peer cache.
            self.counters["ip_misaddressed"] += 1

    def _ip_forward(self, packet: Ipv4Packet) -> None:
        if packet.ttl <= 1:
            return
        out = packet.decremented()
        self.counters["ip_forwarded"] += 1
        out = self.forward_taps.transform(out)
        if self._on_link(out.dst):
            next_hop = out.dst
        elif self.gateway is not None:
            next_hop = self.gateway
        else:
            self.counters["ip_no_route"] += 1
            return
        self.resolve(next_hop, on_resolved=lambda mac: self._tx_ip(mac, out))

    # ------------------------------------------------------------------
    # Transport demux
    # ------------------------------------------------------------------
    def _ip_deliver(self, packet: Ipv4Packet) -> None:
        if packet.proto == IpProto.ICMP:
            self._icmp_rx(packet)
        elif packet.proto == IpProto.UDP:
            self._udp_rx(packet)
        elif packet.proto == IpProto.TCP:
            self._tcp_rx(packet)

    # -- ICMP ------------------------------------------------------------
    def _icmp_rx(self, packet: Ipv4Packet) -> None:
        try:
            message = IcmpMessage.decode(packet.payload)
        except CodecError:
            self.counters["decode_errors"] += 1
            return
        if message.is_echo_request:
            self.counters["icmp_echo_rx"] += 1
            if self.icmp_echo_enabled:
                self.send_ip(packet.src, IpProto.ICMP, message.reply_to().encode())
        elif message.is_echo_reply:
            self.counters["icmp_reply_rx"] += 1
            key = (message.identifier, message.sequence)
            pending = self._pending_pings.pop(key, None)
            if pending is not None:
                if pending.timer is not None:
                    pending.timer.cancel()
                if pending.callback is not None:
                    pending.callback(packet.src, self.sim.now - pending.sent_at)

    def _register_ping(
        self,
        key: Tuple[int, int],
        on_reply: Optional[Callable[[Ipv4Address, float], None]],
        timeout: Optional[float],
        on_timeout: Optional[Callable[[], None]],
    ) -> None:
        """Track an outstanding echo; with ``timeout`` the entry expires.

        Without a timeout an unanswered echo (lost frame, downed link)
        would sit in ``_pending_pings`` forever — harmless per ping, but
        a leak under fault injection where loss is routine.
        """
        pending = _PendingPing(callback=on_reply, sent_at=self.sim.now)
        self._pending_pings[key] = pending
        if timeout is not None:

            def _expire() -> None:
                if self._pending_pings.pop(key, None) is not None:
                    if on_timeout is not None:
                        on_timeout()

            pending.timer = self.sim.schedule(timeout, _expire, name="icmp.timeout")

    def ping(
        self,
        dst: Ipv4Address,
        on_reply: Optional[Callable[[Ipv4Address, float], None]] = None,
        payload: bytes = b"repro-ping",
        sequence: int = 1,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> Tuple[int, int]:
        """Send an ICMP echo request; ``on_reply(src, rtt)`` on answer.

        With ``timeout`` the pending entry is dropped (and
        ``on_timeout`` called) if no reply arrives within that many
        simulated seconds, so the wait is always bounded.
        """
        identifier = next(self._ping_ids) & 0xFFFF
        key = (identifier, sequence & 0xFFFF)
        self._register_ping(key, on_reply, timeout, on_timeout)
        message = IcmpMessage.echo_request(identifier, sequence, payload)
        self.send_ip(dst, IpProto.ICMP, message.encode())
        return key

    def ping_via(
        self,
        dst_ip: Ipv4Address,
        dst_mac: MacAddress,
        on_reply: Optional[Callable[[Ipv4Address, float], None]] = None,
        payload: bytes = b"repro-probe",
        sequence: int = 1,
        timeout: Optional[float] = None,
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> Tuple[int, int]:
        """Echo request framed at an explicit MAC, bypassing ARP.

        This is the verification primitive active detectors use: probing
        the *previous* owner of a binding tells you whether it is still
        alive, without trusting the (possibly poisoned) ARP layer.
        ``timeout``/``on_timeout`` bound the wait exactly as for
        :meth:`ping`.
        """
        if self.ip is None:
            raise StackError(f"{self.name}: cannot probe without an IP")
        identifier = next(self._ping_ids) & 0xFFFF
        key = (identifier, sequence & 0xFFFF)
        self._register_ping(key, on_reply, timeout, on_timeout)
        message = IcmpMessage.echo_request(identifier, sequence, payload)
        packet = Ipv4Packet(
            src=self.ip,
            dst=dst_ip,
            proto=IpProto.ICMP,
            payload=message.encode(),
            identification=next(self._ip_ids) & 0xFFFF,
        )
        frame = EthernetFrame(
            dst=dst_mac, src=self.mac, ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        self.transmit_frame(frame)
        return key

    # -- UDP ---------------------------------------------------------------
    def _udp_rx(self, packet: Ipv4Packet) -> None:
        try:
            datagram = UdpDatagram.decode(packet.payload)
        except CodecError:
            self.counters["decode_errors"] += 1
            return
        self.counters["udp_rx"] += 1
        handler = self._udp_handlers.get(datagram.dst_port)
        if handler is None:
            self.counters["udp_unreachable"] += 1
            return
        handler(self, packet.src, datagram)

    def send_udp(
        self,
        dst: Ipv4Address,
        src_port: int,
        dst_port: int,
        payload: bytes,
    ) -> None:
        datagram = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
        self.send_ip(dst, IpProto.UDP, datagram.encode())

    def ephemeral_port(self) -> int:
        return next(self._ephemeral_ports) % 65536

    # -- TCP (connection-light) ---------------------------------------------
    def _tcp_rx(self, packet: Ipv4Packet) -> None:
        try:
            segment = TcpSegment.decode(packet.payload)
        except CodecError:
            self.counters["decode_errors"] += 1
            return
        self.counters["tcp_rx"] += 1
        key = (packet.src, segment.src_port, segment.dst_port)
        waiter = self._pending_tcp.pop(key, None)
        if waiter is not None:
            waiter(segment)
            return
        # Stateful sessions (repro.stack.tcp_session) claim their segments.
        demux = getattr(self, "tcp_session_demux", None)
        if demux is not None and demux(packet.src, segment):
            return
        if segment.flags & TcpFlags.SYN and not segment.flags & TcpFlags.ACK:
            if segment.dst_port in self.tcp_open_ports:
                answer = TcpSegment.syn_ack(
                    segment.dst_port, segment.src_port, seq=0, ack=segment.seq + 1
                )
            else:
                answer = TcpSegment.rst(segment.dst_port, segment.src_port, seq=0)
            self.send_ip(packet.src, IpProto.TCP, answer.encode())

    def tcp_probe(
        self,
        dst: Ipv4Address,
        dst_port: int,
        on_answer: Callable[[TcpSegment], None],
    ) -> int:
        """Send a SYN and surface whatever comes back (SYN-ACK or RST).

        This is the probe primitive active verification schemes use: only
        the true owner of an IP answers a SYN addressed to it.
        """
        src_port = self.ephemeral_port()
        self._pending_tcp[(dst, dst_port, src_port)] = on_answer
        syn = TcpSegment.syn(src_port, dst_port, seq=1)
        self.send_ip(dst, IpProto.TCP, syn.encode())
        return src_port
