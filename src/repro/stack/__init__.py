"""Host network stack: ARP, IPv4, ICMP, UDP, TCP-lite, DHCP, routing."""

from repro.stack.arp_cache import ArpCache, ArpCacheChange, ArpCacheEntry, BindingSource
from repro.stack.dhcp_client import DhcpClient
from repro.stack.dhcp_server import DhcpServer, Lease
from repro.stack.host import Host
from repro.stack.os_profiles import (
    LINUX,
    PROFILES,
    SOLARIS_LIKE,
    STRICT,
    WINDOWS_XP,
    OsProfile,
)
from repro.stack.router import Router
from repro.stack.tcp_session import TcpClient, TcpConnection, TcpServer

__all__ = [
    "ArpCache",
    "ArpCacheChange",
    "ArpCacheEntry",
    "BindingSource",
    "DhcpClient",
    "DhcpServer",
    "Lease",
    "Host",
    "Router",
    "TcpClient",
    "TcpConnection",
    "TcpServer",
    "OsProfile",
    "LINUX",
    "WINDOWS_XP",
    "SOLARIS_LIKE",
    "STRICT",
    "PROFILES",
]
