"""Minimal stateful TCP sessions (handshake, ordered data, FIN/RST).

Enough TCP to make session hijacking demonstrable end-to-end: real
sequence/acknowledgement numbers, in-order delivery checks, and RST
teardown — the things a hijacker must observe and forge.  Deliberately
omitted (the simulated LAN neither loses nor reorders packets unless an
attacker does it): retransmission, windows, congestion control.

Usage::

    server = TcpServer(host_b, port=80, on_data=lambda conn, data: ...)
    client = TcpClient(host_a)
    conn = client.connect(host_b.ip, 80, on_connected=..., on_data=...)
    conn.send(b"GET / HTTP/1.0")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CodecError, StackError
from repro.net.addresses import Ipv4Address
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.tcp import TcpFlags, TcpSegment
from repro.stack.host import Host

__all__ = ["TcpConnection", "TcpServer", "TcpClient"]

CLOSED = "closed"
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
FIN_WAIT = "fin-wait"


FlowKey = Tuple[Ipv4Address, int, int]  # (peer ip, peer port, local port)


class TcpConnection:
    """One end of a TCP conversation."""

    def __init__(
        self,
        host: Host,
        peer_ip: Ipv4Address,
        peer_port: int,
        local_port: int,
        initial_seq: int,
        on_data: Optional[Callable[["TcpConnection", bytes], None]] = None,
        on_close: Optional[Callable[["TcpConnection"], None]] = None,
    ) -> None:
        self.host = host
        self.peer_ip = peer_ip
        self.peer_port = peer_port
        self.local_port = local_port
        self.state = CLOSED
        self.snd_nxt = initial_seq
        self.rcv_nxt = 0
        self.on_data = on_data
        self.on_close = on_close
        self.on_connected: Optional[Callable[["TcpConnection"], None]] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.out_of_order_drops = 0
        self.received: List[bytes] = []

    # ------------------------------------------------------------------
    @property
    def key(self) -> FlowKey:
        return (self.peer_ip, self.peer_port, self.local_port)

    def _emit(self, flags: int, payload: bytes = b"") -> None:
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.peer_port,
            seq=self.snd_nxt & 0xFFFFFFFF,
            ack=self.rcv_nxt & 0xFFFFFFFF,
            flags=flags,
            payload=payload,
        )
        self.host.send_ip(self.peer_ip, IpProto.TCP, segment.encode())

    # ------------------------------------------------------------------
    # Active open / data / close
    # ------------------------------------------------------------------
    def open(self) -> None:
        self.state = SYN_SENT
        self._emit(TcpFlags.SYN)
        self.snd_nxt += 1  # SYN consumes one sequence number

    def send(self, data: bytes) -> None:
        if self.state != ESTABLISHED:
            raise StackError(f"cannot send in state {self.state}")
        self._emit(TcpFlags.ACK | TcpFlags.PSH, data)
        self.snd_nxt += len(data)
        self.bytes_sent += len(data)

    def close(self) -> None:
        if self.state == ESTABLISHED:
            self.state = FIN_WAIT
            self._emit(TcpFlags.FIN | TcpFlags.ACK)
            self.snd_nxt += 1

    def abort(self) -> None:
        if self.state != CLOSED:
            self._emit(TcpFlags.RST)
            self._dead()

    def _dead(self) -> None:
        was_open = self.state != CLOSED
        self.state = CLOSED
        if was_open and self.on_close is not None:
            self.on_close(self)

    # ------------------------------------------------------------------
    # Segment input (driven by the session registry on the host)
    # ------------------------------------------------------------------
    def handle(self, segment: TcpSegment) -> None:
        if segment.flags & TcpFlags.RST:
            # A forged or genuine reset kills the connection outright if
            # the sequence number is in window (here: exact match).
            if segment.seq == self.rcv_nxt or self.state == SYN_SENT:
                self._dead()
            return
        if self.state == SYN_SENT and segment.flags & TcpFlags.SYN:
            if not segment.flags & TcpFlags.ACK or segment.ack != self.snd_nxt:
                return
            self.rcv_nxt = (segment.seq + 1) & 0xFFFFFFFF
            self.state = ESTABLISHED
            self._emit(TcpFlags.ACK)
            if self.on_connected is not None:
                self.on_connected(self)
            return
        if self.state == SYN_RCVD and segment.flags & TcpFlags.ACK:
            if segment.ack == self.snd_nxt:
                self.state = ESTABLISHED
            # fall through: the ACK may carry data
        if self.state not in (ESTABLISHED, FIN_WAIT):
            return
        if segment.flags & TcpFlags.FIN and segment.seq == self.rcv_nxt:
            self.rcv_nxt = (self.rcv_nxt + 1) & 0xFFFFFFFF
            self._emit(TcpFlags.ACK)
            self._dead()
            return
        if segment.payload:
            if segment.seq != self.rcv_nxt:
                self.out_of_order_drops += 1
                return  # no reassembly: strict in-order delivery
            self.rcv_nxt = (self.rcv_nxt + len(segment.payload)) & 0xFFFFFFFF
            self.bytes_received += len(segment.payload)
            self.received.append(segment.payload)
            self._emit(TcpFlags.ACK)
            if self.on_data is not None:
                self.on_data(self, segment.payload)


class _SessionRegistry:
    """Per-host demux of TCP segments to connections/listeners."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.connections: Dict[FlowKey, TcpConnection] = {}
        self.listeners: Dict[int, "TcpServer"] = {}
        host.tcp_session_demux = self._demux  # type: ignore[attr-defined]

    @classmethod
    def of(cls, host: Host) -> "_SessionRegistry":
        registry = getattr(host, "_tcp_session_registry", None)
        if registry is None:
            registry = cls(host)
            host._tcp_session_registry = registry  # type: ignore[attr-defined]
        return registry

    def _demux(self, src_ip: Ipv4Address, segment: TcpSegment) -> bool:
        key = (src_ip, segment.src_port, segment.dst_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.handle(segment)
            return True
        listener = self.listeners.get(segment.dst_port)
        if listener is not None:
            listener.accept(src_ip, segment)
            return True
        return False


class TcpServer:
    """A listening socket accepting any number of peers."""

    def __init__(
        self,
        host: Host,
        port: int,
        on_data: Optional[Callable[[TcpConnection, bytes], None]] = None,
        on_close: Optional[Callable[[TcpConnection], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.on_data = on_data
        self.on_close = on_close
        self.accepted: List[TcpConnection] = []
        registry = _SessionRegistry.of(host)
        if port in registry.listeners:
            raise StackError(f"{host.name}: TCP port {port} already listening")
        registry.listeners[port] = self
        host.tcp_open_ports.add(port)
        self._isn = host.sim.rng_stream(f"tcp/{host.name}/{port}")

    def accept(self, src_ip: Ipv4Address, segment: TcpSegment) -> None:
        if not (segment.flags & TcpFlags.SYN) or segment.flags & TcpFlags.ACK:
            return
        registry = _SessionRegistry.of(self.host)
        conn = TcpConnection(
            host=self.host,
            peer_ip=src_ip,
            peer_port=segment.src_port,
            local_port=self.port,
            initial_seq=self._isn.getrandbits(32),
            on_data=self.on_data,
            on_close=self.on_close,
        )
        conn.state = SYN_RCVD
        conn.rcv_nxt = (segment.seq + 1) & 0xFFFFFFFF
        registry.connections[conn.key] = conn
        self.accepted.append(conn)
        conn._emit(TcpFlags.SYN | TcpFlags.ACK)
        conn.snd_nxt += 1

    def close(self) -> None:
        registry = _SessionRegistry.of(self.host)
        registry.listeners.pop(self.port, None)
        self.host.tcp_open_ports.discard(self.port)


class TcpClient:
    """Factory for outbound connections from one host."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._isn = host.sim.rng_stream(f"tcp-client/{host.name}")

    def connect(
        self,
        dst_ip: Ipv4Address,
        dst_port: int,
        on_connected: Optional[Callable[[TcpConnection], None]] = None,
        on_data: Optional[Callable[[TcpConnection, bytes], None]] = None,
        on_close: Optional[Callable[[TcpConnection], None]] = None,
    ) -> TcpConnection:
        registry = _SessionRegistry.of(self.host)
        conn = TcpConnection(
            host=self.host,
            peer_ip=dst_ip,
            peer_port=dst_port,
            local_port=self.host.ephemeral_port(),
            initial_seq=self._isn.getrandbits(32),
            on_data=on_data,
            on_close=on_close,
        )
        conn.on_connected = on_connected
        registry.connections[conn.key] = conn
        conn.open()
        return conn
