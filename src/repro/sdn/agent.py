"""The switch-resident side of the control plane.

A :class:`SwitchAgent` layers a flow-table mode over an existing
learning :class:`~repro.l2.switch.Switch`: while the controller is
reachable the agent owns the data plane (flow lookup, packet-in on
miss), and when the control channel drops the switch *falls back* to
its native learning behaviour — fail-open — or blackholes data traffic
— fail-closed — until a control message is heard again.

The agent keeps the learning plane's CAM warm while in flow mode
(shadow learning) so a fail-open transition is seamless; the CAM and
the flow table are both flushed on failover, exactly like a real switch
forgetting state it can no longer trust.
"""

from __future__ import annotations

import itertools
from typing import Dict, Tuple

from repro.errors import CodecError
from repro.l2.device import Port
from repro.l2.switch import Switch
from repro.net.addresses import MacAddress
from repro.obs.registry import REGISTRY
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.openflow import (
    NO_BUFFER,
    BarrierReply,
    BarrierRequest,
    FlowAction,
    FlowMod,
    FlowModCommand,
    PacketIn,
    PacketInReason,
    PacketOut,
    decode_message,
)
from repro.sdn.flow_table import DEFAULT_FLOW_CAPACITY, FlowEntry, FlowTable

__all__ = ["SwitchAgent", "FAIL_OPEN", "FAIL_CLOSED", "DEFAULT_MAX_PENDING"]

FAIL_OPEN = "open"
FAIL_CLOSED = "closed"

#: Bound on buffered frames awaiting a controller verdict.
DEFAULT_MAX_PENDING = 64


class SwitchAgent:
    """Flow-table mode layered over a learning switch.

    Parameters
    ----------
    switch:
        The switch to take over; ``switch.sdn_agent`` must be pointed at
        this agent by the installer.
    control_port_index:
        The switch port wired to the controller.
    mac, controller_mac:
        Addresses of the agent's and the controller's control endpoints.
    fail_mode:
        ``"open"`` — degrade to learning-switch forwarding when the
        controller is unreachable; ``"closed"`` — drop data traffic.
    """

    def __init__(
        self,
        switch: Switch,
        control_port_index: int,
        mac: MacAddress,
        controller_mac: MacAddress,
        fail_mode: str = FAIL_OPEN,
        flow_capacity: int = DEFAULT_FLOW_CAPACITY,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if fail_mode not in (FAIL_OPEN, FAIL_CLOSED):
            raise ValueError(f"fail_mode must be 'open' or 'closed', got {fail_mode!r}")
        self.switch = switch
        self.control_port = control_port_index
        self.mac = mac
        self.controller_mac = controller_mac
        self.fail_mode = fail_mode
        self.table = FlowTable(capacity=flow_capacity)
        self.max_pending = max_pending
        self.mode = "flow"
        #: buffer_id -> (in_port, wire bytes) awaiting a controller verdict.
        self._pending: Dict[int, Tuple[int, bytes]] = {}
        self._buffer_ids = itertools.count(1)

        self.packet_ins_sent = 0
        self.packet_in_drops = 0
        self.flow_mods_applied = 0
        self.packet_outs_applied = 0
        self.flow_drops = 0
        self.closed_drops = 0
        self.fallbacks = 0
        self.recoveries = 0
        self.control_messages_sent = 0

        name = switch.name
        self._packet_in_metric = REGISTRY.counter(
            "packet_in_total",
            "Packet-in messages sent to the controller",
            labels=("switch",),
        ).labels(switch=name)
        self._flow_mod_metric = REGISTRY.counter(
            "flow_mods_total",
            "Flow modifications applied at the switch",
            labels=("switch",),
        ).labels(switch=name)
        self._evict_metric = REGISTRY.counter(
            "flow_table_evictions_total",
            "Flow entries evicted because the table was full",
            labels=("switch",),
        ).labels(switch=name)
        drops = REGISTRY.counter(
            "packet_in_drops_total",
            "Frames not sent to the controller (queue overflow, failover)",
            labels=("switch", "reason"),
        )
        self._overflow_metric = drops.labels(switch=name, reason="overflow")
        self._failover_metric = drops.labels(switch=name, reason="failover")

    # ------------------------------------------------------------------
    # Switch integration
    # ------------------------------------------------------------------
    def on_switch_frame(self, port: Port, frame: EthernetFrame, data: bytes) -> bool:
        """Claim a frame from the switch data plane; False defers to it."""
        if (
            port.index == self.control_port
            and frame.ethertype == EtherType.EXPERIMENTAL
        ):
            self._control_rx(frame)
            return True
        if self.mode != "flow":
            if self.fail_mode == FAIL_CLOSED:
                # Fail-closed: no controller, no data plane.
                self.closed_drops += 1
                self.switch.dropped_frames += 1
                self.switch._mirror(port, data)
                return True
            return False  # fail-open: the learning plane takes over

        sw = self.switch
        now = sw.sim.now
        if sw.ingress_filters.hooks and not sw._run_ingress_filters(port, frame):
            # Stacked switch-resident schemes (DAI, port security) veto
            # before the flow table, exactly as on the learning plane.
            sw.dropped_frames += 1
            sw._mirror(port, data)
            return True
        sw.cam.learn(frame.src, port.index, now)  # shadow learning for failover
        sw._mirror(port, data)

        entry = self.table.lookup(port.index, frame.src, frame.dst, frame.ethertype, now)
        if entry is not None:
            self._apply_action(entry.action, entry.out_port, port.index, data)
            return True
        self._packet_in(port, frame, data)
        return True

    def on_link_down(self, port_index: int) -> None:
        """Switch callback: a port lost its link (flap, cable pull)."""
        if port_index != self.control_port or self.mode != "flow":
            return
        self.mode = "fallback"
        self.fallbacks += 1
        self.table.clear()
        for port in self.switch.ports:
            self.switch.cam.flush_port(port.index)
        if self._pending:
            # Verdicts will never arrive; the buffered frames are stale.
            self.packet_in_drops += len(self._pending)
            self._failover_metric.inc(len(self._pending))
            self._pending.clear()

    # ------------------------------------------------------------------
    # Control channel
    # ------------------------------------------------------------------
    def _control_rx(self, frame: EthernetFrame) -> None:
        try:
            message = decode_message(frame.payload)
        except CodecError:
            return
        if self.mode != "flow":
            # Hearing the controller again ends the fallback window.
            self.mode = "flow"
            self.recoveries += 1
        if isinstance(message, FlowMod):
            self._apply_flow_mod(message)
        elif isinstance(message, PacketOut):
            self._apply_packet_out(message)
        elif isinstance(message, BarrierRequest):
            self._send_control(BarrierReply(xid=message.xid))

    def _apply_flow_mod(self, mod: FlowMod) -> None:
        self.flow_mods_applied += 1
        self._flow_mod_metric.inc()
        now = self.switch.sim.now
        if mod.command == FlowModCommand.DELETE:
            self.table.remove(mod.match)
            return
        entry = FlowEntry(
            match=mod.match,
            action=mod.action,
            out_port=mod.out_port,
            priority=mod.priority,
            idle_timeout=float(mod.idle_timeout),
            hard_timeout=float(mod.hard_timeout),
        )
        evicted = self.table.install(entry, now)
        if evicted is not None:
            self._evict_metric.inc()
        if mod.buffer_id != NO_BUFFER:
            parked = self._pending.pop(mod.buffer_id, None)
            if parked is not None:
                in_port, data = parked
                self._apply_action(mod.action, mod.out_port, in_port, data)

    def _apply_packet_out(self, out: PacketOut) -> None:
        self.packet_outs_applied += 1
        parked = self._pending.pop(out.buffer_id, None)
        if parked is not None:
            in_port, data = parked
        elif out.frame:
            in_port, data = out.in_port, out.frame
        else:
            return  # stale verdict for a frame dropped at failover
        self._apply_action(out.action, out.out_port, in_port, data)

    def _apply_action(
        self, action: int, out_port: int, in_port: int, data: bytes
    ) -> None:
        sw = self.switch
        if action == FlowAction.OUTPUT:
            if out_port == in_port or not 0 <= out_port < len(sw.ports):
                return  # hairpin or a port that no longer exists
            sw.forwarded_frames += 1
            sw._send(out_port, data)
        elif action == FlowAction.FLOOD:
            sw._flood(sw.ports[in_port], data)
        else:  # DROP
            self.flow_drops += 1
            sw.dropped_frames += 1

    # ------------------------------------------------------------------
    # Packet-in path
    # ------------------------------------------------------------------
    def _packet_in(self, port: Port, frame: EthernetFrame, data: bytes) -> None:
        if len(self._pending) >= self.max_pending:
            # Backpressure: the in-flight window is full (saturated
            # controller or slow channel).
            self.packet_in_drops += 1
            self._overflow_metric.inc()
            if self.fail_mode == FAIL_CLOSED:
                self.switch.dropped_frames += 1
            else:
                self._learning_forward(port, frame, data)
            return
        buffer_id = next(self._buffer_ids) & 0xFFFFFFFF
        self._pending[buffer_id] = (port.index, data)
        self.packet_ins_sent += 1
        self._packet_in_metric.inc()
        self._send_control(
            PacketIn.for_frame(buffer_id, port.index, PacketInReason.NO_MATCH, data)
        )

    def _learning_forward(self, port: Port, frame: EthernetFrame, data: bytes) -> None:
        """Forward one frame the way the learning plane would (fail-open
        overflow): the CAM is already warm from shadow learning."""
        sw = self.switch
        if frame.dst.is_multicast:
            sw._flood(port, data)
            return
        out_index = sw.cam.lookup(frame.dst, sw.sim.now)
        if out_index is None:
            sw._flood(port, data)
            return
        if out_index == port.index:
            return
        sw.forwarded_frames += 1
        sw._send(out_index, data)

    def _send_control(self, message) -> None:
        frame = EthernetFrame(
            dst=self.controller_mac,
            src=self.mac,
            ethertype=EtherType.EXPERIMENTAL,
            payload=message.encode(),
        )
        self.control_messages_sent += 1
        # Silently lost while the control link is down — exactly the
        # semantics of a dead TCP channel, surfaced by keepalive timeouts.
        self.switch.ports[self.control_port].transmit(frame.encode())

    # ------------------------------------------------------------------
    def pending_packet_ins(self) -> int:
        return len(self._pending)

    def state_size(self) -> int:
        return len(self.table) + len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SwitchAgent({self.switch.name}, mode={self.mode}, "
            f"flows={len(self.table)}, pending={len(self._pending)})"
        )
