"""A simulated OpenFlow-like control plane.

The package models the three pieces later SDN work adds on top of the
paper's LAN: a :class:`~repro.sdn.controller.Controller` reachable over
modeled control channels, a :class:`~repro.sdn.agent.SwitchAgent` that
layers a bounded :class:`~repro.sdn.flow_table.FlowTable` mode over the
existing learning switch, and the failover semantics between them
(fail-open to learning mode vs fail-closed).  The ``sdn-arp-guard``
scheme (:mod:`repro.schemes.sdn_guard`) builds its ARP defense on this
plane; the ``flow-table-exhaustion`` attack targets it.
"""

from repro.sdn.agent import (
    DEFAULT_MAX_PENDING,
    FAIL_CLOSED,
    FAIL_OPEN,
    SwitchAgent,
)
from repro.sdn.controller import (
    DEFAULT_CONTROL_LATENCY,
    ControlChannel,
    Controller,
)
from repro.sdn.flow_table import DEFAULT_FLOW_CAPACITY, FlowEntry, FlowTable

__all__ = [
    "Controller",
    "ControlChannel",
    "SwitchAgent",
    "FlowTable",
    "FlowEntry",
    "DEFAULT_CONTROL_LATENCY",
    "DEFAULT_FLOW_CAPACITY",
    "DEFAULT_MAX_PENDING",
    "FAIL_OPEN",
    "FAIL_CLOSED",
]
