"""The simulated OpenFlow-like controller.

One :class:`Controller` owns a dedicated control channel (an ordinary
:class:`~repro.l2.device.Link`, so RTT is modeled and fault injection
applies) to each switch it manages.  Its reactive policy is the POX
``l2_learning`` shape with an ARP twist borrowed from the SDN
mitigation exemplar:

* every packet-in teaches it ``src MAC → port``;
* ARP is **never** given a flow — each ARP frame is validated through
  the pluggable :attr:`arp_validator` and released with a packet-out,
  so a spoofed sender cannot hide behind a cached verdict.  A failed
  validation installs a high-priority ingress *drop rule* instead;
* other traffic gets exact-match learning flows with an idle timeout,
  so the first frame of every conversation is seen here — except DHCP,
  which is always released with a packet-out and never given a flow,
  so the snoop (:attr:`dhcp_listener`) sees the full DORA exchange;
* periodic barrier keepalives measure control-channel RTT and double
  as the liveness signal that lets a fallen-back switch rejoin.

The controller is registered in ``lan.hosts`` (so fault targets like
``flap=ctrl`` resolve) but carries no IP address, keeping it invisible
to workloads, protection lists and the LAN's true-binding inventory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import CodecError
from repro.l2.device import Device, Link, Port
from repro.l2.switch import Switch
from repro.net.addresses import Ipv4Address, MacAddress
from repro.obs.registry import REGISTRY
from repro.packets.arp import ArpPacket
from repro.packets.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
)
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.openflow import (
    BarrierReply,
    BarrierRequest,
    FlowAction,
    FlowMatch,
    FlowMod,
    PacketIn,
    PacketOut,
    decode_message,
)
from repro.packets.udp import UdpDatagram
from repro.sdn.agent import DEFAULT_MAX_PENDING, FAIL_OPEN, SwitchAgent
from repro.sdn.flow_table import DEFAULT_FLOW_CAPACITY

__all__ = ["Controller", "ControlChannel", "DEFAULT_CONTROL_LATENCY"]

#: One-way control-channel latency: a controller is typically a few
#: switch hops away, so an order of magnitude above a LAN segment.
DEFAULT_CONTROL_LATENCY = 500e-6

#: An ARP validator sees (switch_name, in_port, frame, arp) → allow?
ArpValidator = Callable[[str, int, EthernetFrame, ArpPacket], bool]
#: A DHCP listener sees every snooped ACK: (ip, mac, lease_seconds).
DhcpListener = Callable[[Ipv4Address, MacAddress, float], None]


@dataclass
class ControlChannel:
    """Controller-side state for one managed switch."""

    switch_name: str
    switch: Switch
    port: Port  # the controller's end of the control link
    agent: SwitchAgent
    agent_mac: MacAddress
    link: Link
    up: bool = True
    mac_to_port: Dict[MacAddress, int] = field(default_factory=dict)


class Controller(Device):
    """A reactive learning controller with pluggable ARP/DHCP policy."""

    def __init__(
        self,
        sim,
        name: str = "ctrl",
        control_latency: float = DEFAULT_CONTROL_LATENCY,
        keepalive_interval: float = 1.0,
        flow_idle_timeout: int = 10,
        drop_rule_idle_timeout: int = 60,
    ) -> None:
        super().__init__(sim, name)
        #: No IP: workloads, protection lists and ``true_bindings()`` all
        #: filter on ``ip is not None``, which keeps the controller out of
        #: the experiment population while still living in ``lan.hosts``.
        self.ip: Optional[Ipv4Address] = None
        self.mac: Optional[MacAddress] = None
        self.control_latency = control_latency
        self.keepalive_interval = keepalive_interval
        self.flow_idle_timeout = flow_idle_timeout
        self.drop_rule_idle_timeout = drop_rule_idle_timeout

        self.arp_validator: Optional[ArpValidator] = None
        self.dhcp_listener: Optional[DhcpListener] = None

        self._channels: Dict[int, ControlChannel] = {}  # by local port index
        self._by_switch: Dict[str, ControlChannel] = {}
        self._keepalive_cancels: List[Callable[[], None]] = []
        self._barrier_sent: Dict[int, float] = {}
        self._next_xid = 1

        self.packet_ins_received = 0
        self.malformed_packet_ins = 0
        self.flow_mods_sent = 0
        self.packet_outs_sent = 0
        self.spoof_drops = 0
        self.control_messages_sent = 0
        self.disconnects = 0
        self.reconnects = 0

        self._rtt_metric = REGISTRY.histogram(
            "controller_rtt_seconds",
            "Control-channel round-trip time (barrier request to reply)",
            labels=("switch",),
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def nic(self) -> Port:
        """First control port — lets fault targets resolve ``flap=ctrl``
        through the same ``host.nic.link`` path as any host."""
        if not self.ports:
            raise RuntimeError(f"{self.name}: not connected to any switch")
        return self.ports[0]

    def connect(
        self,
        lan,
        switch_name: str,
        switch: Switch,
        fail_mode: str = FAIL_OPEN,
        flow_capacity: int = DEFAULT_FLOW_CAPACITY,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> ControlChannel:
        """Wire a control channel to ``switch`` and take over its plane."""
        if switch_name in self._by_switch:
            raise ValueError(f"{self.name}: already connected to {switch_name}")
        if switch.sdn_agent is not None:
            raise ValueError(f"{switch.name}: already has an SDN agent")
        if self.mac is None:
            self.mac = lan._alloc_mac()
        switch_port = lan._take_switch_port(switch_name)
        my_port = self.add_port(name=f"{self.name}.of{len(self.ports)}")
        link = Link(
            lan.sim, my_port, switch.ports[switch_port],
            latency=self.control_latency,
        )
        lan.links.append(link)
        agent = SwitchAgent(
            switch,
            control_port_index=switch_port,
            mac=lan._alloc_mac(),
            controller_mac=self.mac,
            fail_mode=fail_mode,
            flow_capacity=flow_capacity,
            max_pending=max_pending,
        )
        switch.sdn_agent = agent
        channel = ControlChannel(
            switch_name=switch_name,
            switch=switch,
            port=my_port,
            agent=agent,
            agent_mac=agent.mac,
            link=link,
        )
        self._channels[my_port.index] = channel
        self._by_switch[switch_name] = channel
        # Pre-create the RTT series so the family shows up at zero.
        self._rtt_metric.labels(switch=switch_name)
        self._keepalive_cancels.append(
            self.sim.call_every(
                self.keepalive_interval,
                lambda ch=channel: self._keepalive(ch),
                name=f"sdn.keepalive/{switch_name}",
            )
        )
        return channel

    def disconnect_all(self) -> None:
        """Detach from every switch (scheme uninstall)."""
        for cancel in self._keepalive_cancels:
            cancel()
        self._keepalive_cancels.clear()
        for channel in self._channels.values():
            channel.switch.sdn_agent = None
            channel.link.disconnect()
        self._channels.clear()
        self._by_switch.clear()

    def channel_for(self, switch_name: str) -> ControlChannel:
        return self._by_switch[switch_name]

    @property
    def channels(self) -> List[ControlChannel]:
        return list(self._channels.values())

    # ------------------------------------------------------------------
    # Link events
    # ------------------------------------------------------------------
    def link_down(self, port_index: int) -> None:
        """Duck-typed fault callback: our end of a control link dropped."""
        channel = self._channels.get(port_index)
        if channel is not None and channel.up:
            channel.up = False
            self.disconnects += 1

    # ------------------------------------------------------------------
    # Control input
    # ------------------------------------------------------------------
    def on_frame(self, port: Port, data: bytes) -> None:
        channel = self._channels.get(port.index)
        if channel is None:
            return
        try:
            frame = EthernetFrame.lazy(data)
        except CodecError:
            return
        if frame.ethertype != EtherType.EXPERIMENTAL:
            return
        try:
            message = decode_message(frame.payload)
        except CodecError:
            return
        if not channel.up:
            # Any message over the channel proves it is back.
            channel.up = True
            self.reconnects += 1
        if isinstance(message, PacketIn):
            self._packet_in(channel, message)
        elif isinstance(message, BarrierReply):
            self._barrier_reply(channel, message)

    def _barrier_reply(self, channel: ControlChannel, reply: BarrierReply) -> None:
        sent_at = self._barrier_sent.pop(reply.xid, None)
        if sent_at is not None:
            self._rtt_metric.labels(switch=channel.switch_name).observe(
                self.sim.now - sent_at
            )

    def _keepalive(self, channel: ControlChannel) -> None:
        xid = self._next_xid & 0xFFFFFFFF
        self._next_xid += 1
        self._barrier_sent[xid] = self.sim.now
        if len(self._barrier_sent) > 1024:  # unanswered probes of dead channels
            self._barrier_sent.pop(next(iter(self._barrier_sent)))
        self._send(channel, BarrierRequest(xid=xid))

    # ------------------------------------------------------------------
    # Packet-in policy
    # ------------------------------------------------------------------
    def _packet_in(self, channel: ControlChannel, msg: PacketIn) -> None:
        self.packet_ins_received += 1
        try:
            inner = EthernetFrame.lazy(msg.frame)
        except CodecError:
            self.malformed_packet_ins += 1
            return
        channel.mac_to_port[inner.src] = msg.in_port
        if inner.ethertype == EtherType.ARP:
            self._handle_arp(channel, msg, inner)
            return
        if inner.ethertype == EtherType.IPV4 and self.dhcp_listener is not None:
            self._snoop_dhcp(inner)
        self._handle_data(channel, msg, inner)

    def _handle_arp(
        self, channel: ControlChannel, msg: PacketIn, inner: EthernetFrame
    ) -> None:
        try:
            arp = ArpPacket.decode(inner.payload)
        except CodecError:
            arp = None
        if (
            arp is not None
            and self.arp_validator is not None
            and not self.arp_validator(channel.switch_name, msg.in_port, inner, arp)
        ):
            # Spoofed sender: drop the frame *and* program an ingress
            # drop rule so the flood stops consuming control bandwidth.
            self.spoof_drops += 1
            self._send_flow_mod(
                channel,
                FlowMod(
                    match=FlowMatch(
                        in_port=msg.in_port,
                        src=inner.src,
                        ethertype=EtherType.ARP,
                    ),
                    action=FlowAction.DROP,
                    priority=100,
                    idle_timeout=self.drop_rule_idle_timeout,
                    buffer_id=msg.buffer_id,
                ),
            )
            return
        # Valid (or unparseable, which the hosts will reject themselves):
        # release via packet-out, installing nothing, so the *next* ARP
        # from this sender is validated again.
        out = channel.mac_to_port.get(inner.dst)
        if inner.dst.is_multicast or out is None or out == msg.in_port:
            action, out_port = FlowAction.FLOOD, 0
        else:
            action, out_port = FlowAction.OUTPUT, out
        self._send_packet_out(channel, msg, action, out_port)

    def _handle_data(
        self, channel: ControlChannel, msg: PacketIn, inner: EthernetFrame
    ) -> None:
        out = channel.mac_to_port.get(inner.dst)
        if inner.dst.is_multicast or out is None:
            self._send_packet_out(channel, msg, FlowAction.FLOOD, 0)
            return
        if out == msg.in_port:
            self._send_packet_out(channel, msg, FlowAction.DROP, 0)
            return
        if self._is_dhcp(inner):
            # DHCP never gets a flow: the snoop must see every ACK, and a
            # flow installed for the OFFER would carry the ACK (same
            # src/dst/ethertype) past the controller.
            self._send_packet_out(channel, msg, FlowAction.OUTPUT, out)
            return
        # Exact-match learning flow: pinning (in_port, src, dst, ethertype)
        # means every new conversation direction packet-ins once.
        self._send_flow_mod(
            channel,
            FlowMod(
                match=FlowMatch(
                    in_port=msg.in_port,
                    src=inner.src,
                    dst=inner.dst,
                    ethertype=inner.ethertype,
                ),
                action=FlowAction.OUTPUT,
                out_port=out,
                idle_timeout=self.flow_idle_timeout,
                buffer_id=msg.buffer_id,
            ),
        )

    @staticmethod
    def _is_dhcp(inner: EthernetFrame) -> bool:
        if inner.ethertype != EtherType.IPV4:
            return False
        try:
            packet = Ipv4Packet.decode(inner.payload)
            if packet.proto != IpProto.UDP:
                return False
            datagram = UdpDatagram.decode(packet.payload)
        except CodecError:
            return False
        return bool(
            {datagram.src_port, datagram.dst_port}
            & {DHCP_SERVER_PORT, DHCP_CLIENT_PORT}
        )

    def _snoop_dhcp(self, inner: EthernetFrame) -> None:
        try:
            packet = Ipv4Packet.decode(inner.payload)
            if packet.proto != IpProto.UDP:
                return
            datagram = UdpDatagram.decode(packet.payload)
            if (
                datagram.src_port != DHCP_SERVER_PORT
                or datagram.dst_port != DHCP_CLIENT_PORT
            ):
                return
            message = DhcpMessage.decode(datagram.payload)
        except CodecError:
            return  # truncated past the snoop window, or not DHCP at all
        if (
            message.message_type == DhcpMessageType.ACK
            and not message.yiaddr.is_unspecified
        ):
            self.dhcp_listener(
                message.yiaddr, message.chaddr, float(message.lease_time or 600)
            )

    # ------------------------------------------------------------------
    # Control output
    # ------------------------------------------------------------------
    def _send_flow_mod(self, channel: ControlChannel, mod: FlowMod) -> None:
        self.flow_mods_sent += 1
        self._send(channel, mod)

    def _send_packet_out(
        self, channel: ControlChannel, msg: PacketIn, action: int, out_port: int
    ) -> None:
        self.packet_outs_sent += 1
        self._send(
            channel,
            PacketOut(
                buffer_id=msg.buffer_id,
                in_port=msg.in_port,
                action=action,
                out_port=out_port,
            ),
        )

    def _send(self, channel: ControlChannel, message) -> None:
        frame = EthernetFrame(
            dst=channel.agent_mac,
            src=self.mac,
            ethertype=EtherType.EXPERIMENTAL,
            payload=message.encode(),
        )
        self.control_messages_sent += 1
        channel.port.transmit(frame.encode())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Controller({self.name}, switches={len(self._channels)}, "
            f"packet_ins={self.packet_ins_received})"
        )
