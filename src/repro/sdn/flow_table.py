"""The bounded, priority-ordered flow table of an SDN-mode switch.

Entries expire lazily (idle and hard timeouts checked on lookup, like
CAM aging) and the table is capacity-bounded: installing into a full
table evicts the least-recently-used entry and counts it, which is the
signal the flow-table-exhaustion attack drives and the
``flow_table_evictions_total`` metric exposes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.net.addresses import MacAddress
from repro.packets.openflow import FlowAction, FlowMatch

__all__ = ["FlowEntry", "FlowTable", "DEFAULT_FLOW_CAPACITY"]

#: Default table size — small for a real switch, deliberately so: the
#: exhaustion attack should be able to fill it within one scenario.
DEFAULT_FLOW_CAPACITY = 128


@dataclass
class FlowEntry:
    """One installed flow: a match, an action, and its lifetime state."""

    match: FlowMatch
    action: int = FlowAction.DROP
    out_port: int = 0
    priority: int = 0
    idle_timeout: float = 0.0  # 0 = never idles out
    hard_timeout: float = 0.0  # 0 = no hard expiry
    installed_at: float = 0.0
    last_used: float = 0.0
    packets: int = 0
    seq: int = field(default=0, compare=False)

    def expired(self, now: float) -> bool:
        if self.hard_timeout > 0 and now >= self.installed_at + self.hard_timeout:
            return True
        return self.idle_timeout > 0 and now >= self.last_used + self.idle_timeout

    def touch(self, now: float) -> None:
        self.last_used = now
        self.packets += 1


class FlowTable:
    """Priority-ordered match table with LRU eviction when full."""

    def __init__(self, capacity: int = DEFAULT_FLOW_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"flow table capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: List[FlowEntry] = []
        self._seq = itertools.count()
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    def install(self, entry: FlowEntry, now: float) -> Optional[FlowEntry]:
        """Add ``entry``; returns the evicted entry when the table was full.

        An entry with an identical match and priority replaces the old
        one in place (OpenFlow ADD semantics), which is not an eviction.
        """
        self.sweep(now)
        entry.installed_at = now
        entry.last_used = now
        entry.seq = next(self._seq)
        for i, existing in enumerate(self._entries):
            if existing.priority == entry.priority and existing.match == entry.match:
                self._entries[i] = entry
                self._resort()
                return None
        evicted: Optional[FlowEntry] = None
        if len(self._entries) >= self.capacity:
            evicted = min(
                self._entries, key=lambda e: (e.last_used, e.installed_at, e.seq)
            )
            self._entries.remove(evicted)
            self.evictions += 1
        self._entries.append(entry)
        self._resort()
        return evicted

    def remove(self, match: FlowMatch) -> int:
        """Delete every entry with exactly this match; returns the count."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.match != match]
        return before - len(self._entries)

    def lookup(
        self,
        in_port: int,
        src: MacAddress,
        dst: MacAddress,
        ethertype: int,
        now: float,
    ) -> Optional[FlowEntry]:
        """Highest-priority live entry matching the frame, or ``None``."""
        hit: Optional[FlowEntry] = None
        dead: List[FlowEntry] = []
        for entry in self._entries:  # kept sorted: highest priority first
            if entry.expired(now):
                dead.append(entry)
                continue
            if hit is None and entry.match.matches(in_port, src, dst, ethertype):
                hit = entry
        for entry in dead:
            self._entries.remove(entry)
            self.expirations += 1
        if hit is not None:
            hit.touch(now)
        return hit

    def sweep(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        live = [e for e in self._entries if not e.expired(now)]
        removed = len(self._entries) - len(live)
        self._entries = live
        self.expirations += removed
        return removed

    def clear(self) -> int:
        """Flush everything (controller failover); returns the count."""
        count = len(self._entries)
        self._entries.clear()
        return count

    def _resort(self) -> None:
        self._entries.sort(key=lambda e: (-e.priority, e.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowTable({len(self._entries)}/{self.capacity}, "
            f"evictions={self.evictions})"
        )
