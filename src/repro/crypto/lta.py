"""The Local Ticket Agent (LTA) behind TARP (ticket-based ARP).

TARP avoids S-ARP's per-reply signing by handing each host a long-lived
*ticket* — the LTA's signature over the host's ``(IP, MAC)`` binding with
a validity window — at attachment time.  ARP replies carry the ticket;
receivers verify one LTA signature instead of contacting anybody.  The
known weakness (which the analysis surfaces) is that tickets can be
replayed by an attacker who also spoofs the victim's MAC.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CryptoError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey

__all__ = ["Ticket", "LocalTicketAgent"]


@dataclass(frozen=True)
class Ticket:
    """An LTA-signed ``(IP, MAC)`` binding with a validity window."""

    ip: Ipv4Address
    mac: MacAddress
    issued_at: float
    expires_at: float
    signature: bytes

    @staticmethod
    def message_bytes(
        ip: Ipv4Address, mac: MacAddress, issued_at: float, expires_at: float
    ) -> bytes:
        return (
            b"repro-ticket|"
            + ip.packed
            + mac.packed
            + struct.pack("!dd", issued_at, expires_at)
        )

    def verify(self, lta_key: PublicKey) -> bool:
        return lta_key.verify(
            self.message_bytes(self.ip, self.mac, self.issued_at, self.expires_at),
            self.signature,
        )

    def valid_at(self, now: float) -> bool:
        return self.issued_at <= now < self.expires_at

    def encode(self) -> bytes:
        return (
            self.ip.packed
            + self.mac.packed
            + struct.pack("!dd", self.issued_at, self.expires_at)
            + struct.pack("!H", len(self.signature))
            + self.signature
        )

    @classmethod
    def decode(cls, data: bytes) -> "Ticket":
        if len(data) < 4 + 6 + 16 + 2:
            raise CryptoError("ticket blob too short")
        ip = Ipv4Address(data[:4])
        mac = MacAddress(data[4:10])
        issued_at, expires_at = struct.unpack("!dd", data[10:26])
        (sig_len,) = struct.unpack("!H", data[26:28])
        if len(data) < 28 + sig_len:
            raise CryptoError("ticket blob truncated")
        return cls(
            ip=ip,
            mac=mac,
            issued_at=issued_at,
            expires_at=expires_at,
            signature=data[28 : 28 + sig_len],
        )


class LocalTicketAgent:
    """Issues tickets; holds the only signing key in a TARP deployment."""

    def __init__(self, keypair: KeyPair, default_validity: float = 3600.0) -> None:
        self.keypair = keypair
        self.default_validity = default_validity
        self.tickets_issued = 0

    @property
    def public_key(self) -> PublicKey:
        return self.keypair.public

    def issue(
        self,
        ip: Ipv4Address,
        mac: MacAddress,
        now: float,
        validity: float | None = None,
    ) -> Ticket:
        span = self.default_validity if validity is None else validity
        if span <= 0:
            raise CryptoError(f"ticket validity must be positive, got {span}")
        message = Ticket.message_bytes(ip, mac, now, now + span)
        self.tickets_issued += 1
        return Ticket(
            ip=ip,
            mac=mac,
            issued_at=now,
            expires_at=now + span,
            signature=self.keypair.private.sign(message),
        )
