"""Key pairs for the cryptographic ARP schemes (S-ARP, TARP).

This is a real, self-contained RSA implementation with deliberately small
moduli (default 512 bits).  The point is *structural* fidelity, not
cryptographic strength: signing genuinely requires the private exponent,
verification genuinely needs only ``(n, e)``, and public keys serialize to
bytes so they can travel in simulated packets.  Production deployments of
S-ARP used DSA via OpenSSL; the substitution keeps the property the
analysis depends on (unforgeability inside the simulation) while staying
dependency-free.  Timing is charged separately through the cost model in
:mod:`repro.crypto.sign`, not measured from these operations.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import CryptoError

__all__ = ["PublicKey", "PrivateKey", "KeyPair", "generate_keypair"]

_E = 65537


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if candidate % _E == 1:
            continue  # keep e invertible mod (p-1)
        if _is_probable_prime(candidate, rng):
            return candidate


def _digest_int(message: bytes, modulus: int) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % modulus


@dataclass(frozen=True)
class PublicKey:
    """An RSA verification key ``(n, e)``."""

    n: int
    e: int

    def verify(self, message: bytes, signature: bytes) -> bool:
        """True iff ``signature`` is valid for ``message`` under this key."""
        try:
            sig_int = int.from_bytes(signature, "big")
        except (TypeError, ValueError):
            return False
        if not 0 < sig_int < self.n:
            return False
        return pow(sig_int, self.e, self.n) == _digest_int(message, self.n)

    # -- wire form -----------------------------------------------------
    def encode(self) -> bytes:
        n_bytes = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        e_bytes = self.e.to_bytes(4, "big")
        return len(n_bytes).to_bytes(2, "big") + n_bytes + e_bytes

    @classmethod
    def decode(cls, data: bytes) -> "PublicKey":
        if len(data) < 2:
            raise CryptoError("public key blob too short")
        n_len = int.from_bytes(data[:2], "big")
        if len(data) < 2 + n_len + 4:
            raise CryptoError("public key blob truncated")
        n = int.from_bytes(data[2 : 2 + n_len], "big")
        e = int.from_bytes(data[2 + n_len : 2 + n_len + 4], "big")
        if n <= 0 or e <= 0:
            raise CryptoError("public key blob malformed")
        return cls(n=n, e=e)

    @property
    def fingerprint(self) -> str:
        """Short identifier used in logs and alerts."""
        return hashlib.sha256(self.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class PrivateKey:
    """An RSA signing key.  Never serialized; never leaves its owner."""

    n: int
    d: int

    def sign(self, message: bytes) -> bytes:
        sig_int = pow(_digest_int(message, self.n), self.d, self.n)
        return sig_int.to_bytes((self.n.bit_length() + 7) // 8, "big")


@dataclass(frozen=True)
class KeyPair:
    """A matched public/private key pair."""

    public: PublicKey
    private: PrivateKey


def generate_keypair(rng: random.Random, bits: int = 512) -> KeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    Deterministic given the ``rng`` state, so experiments are repeatable.
    """
    if bits < 128:
        raise CryptoError(f"modulus of {bits} bits is too small even for a toy")
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = pow(_E, -1, phi)
        except ValueError:
            continue
        return KeyPair(public=PublicKey(n=n, e=_E), private=PrivateKey(n=n, d=d))
