"""The Authoritative Key Distributor (AKD) that S-ARP relies on.

S-ARP assumes a trusted LAN service that knows every host's public key
and answers "what is the key for IP x?" queries, itself authenticated by
a master key distributed out of band.  We implement the AKD as a real
simulated service: a UDP responder on the AKD host plus a client-side
resolver with caching, so the key-management traffic S-ARP adds is
visible in the overhead measurements (Figure 2).

Wire format (UDP port 5500):
  query:    b"AKDQ" + ip(4)
  response: b"AKDR" + ip(4) + len(2) + pubkey-blob + len(2) + akd-signature
The signature covers ``ip + pubkey-blob`` and is made with the AKD's own
private key, whose public half every enrolled host holds a priori.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from repro.errors import CryptoError, KeyRegistrationError
from repro.net.addresses import Ipv4Address
from repro.crypto.keys import KeyPair, PublicKey
from repro.packets.udp import UdpDatagram
from repro.stack.host import Host

__all__ = ["AkdService", "AkdClient", "AKD_PORT"]

AKD_PORT = 5500
_QUERY = b"AKDQ"
_RESPONSE = b"AKDR"


class AkdService:
    """The server side: an enrollment registry plus the UDP responder."""

    def __init__(self, host: Host, keypair: KeyPair) -> None:
        if host.ip is None:
            raise KeyRegistrationError("AKD host needs a static IP")
        self.host = host
        self.keypair = keypair
        self._registry: Dict[Ipv4Address, PublicKey] = {}
        self.queries_served = 0
        self.unknown_queries = 0
        host.udp_bind(AKD_PORT, self._on_udp)

    @property
    def public_key(self) -> PublicKey:
        return self.keypair.public

    def enroll(self, ip: Ipv4Address, key: PublicKey) -> None:
        """Register a host's key (done at deployment time, out of band)."""
        existing = self._registry.get(ip)
        if existing is not None and existing != key:
            raise KeyRegistrationError(
                f"{ip} already enrolled with a different key"
            )
        self._registry[ip] = key

    def revoke(self, ip: Ipv4Address) -> None:
        self._registry.pop(ip, None)

    def knows(self, ip: Ipv4Address) -> bool:
        return ip in self._registry

    @property
    def registry_size(self) -> int:
        return len(self._registry)

    def _on_udp(self, host: Host, src_ip: Ipv4Address, datagram: UdpDatagram) -> None:
        payload = datagram.payload
        if len(payload) < 8 or payload[:4] != _QUERY:
            return
        ip = Ipv4Address(payload[4:8])
        key = self._registry.get(ip)
        if key is None:
            self.unknown_queries += 1
            return
        self.queries_served += 1
        blob = key.encode()
        signature = self.keypair.private.sign(ip.packed + blob)
        response = (
            _RESPONSE
            + ip.packed
            + struct.pack("!H", len(blob))
            + blob
            + struct.pack("!H", len(signature))
            + signature
        )
        host.send_udp(src_ip, AKD_PORT, datagram.src_port, response)


class AkdClient:
    """The client side: query-with-callback plus a verified key cache."""

    def __init__(
        self,
        host: Host,
        akd_ip: Ipv4Address,
        akd_public_key: PublicKey,
        timeout: float = 0.5,
    ) -> None:
        self.host = host
        self.akd_ip = akd_ip
        self.akd_public_key = akd_public_key
        self.timeout = timeout
        self.cache: Dict[Ipv4Address, PublicKey] = {}
        self._pending: Dict[Ipv4Address, List[Callable[[Optional[PublicKey]], None]]] = {}
        self._port = host.ephemeral_port()
        self.queries_sent = 0
        self.bad_responses = 0
        host.udp_bind(self._port, self._on_udp)

    def lookup(
        self, ip: Ipv4Address, callback: Callable[[Optional[PublicKey]], None]
    ) -> None:
        """Fetch the public key for ``ip`` (cached, or over the wire)."""
        cached = self.cache.get(ip)
        if cached is not None:
            callback(cached)
            return
        waiters = self._pending.get(ip)
        if waiters is not None:
            waiters.append(callback)
            return
        self._pending[ip] = [callback]
        self.queries_sent += 1
        self.host.send_udp(self.akd_ip, self._port, AKD_PORT, _QUERY + ip.packed)

        def on_timeout() -> None:
            callbacks = self._pending.pop(ip, None)
            if callbacks is None:
                return
            for cb in callbacks:
                cb(None)

        self.host.sim.schedule(self.timeout, on_timeout, name="akd.timeout")

    def _on_udp(self, host: Host, src_ip: Ipv4Address, datagram: UdpDatagram) -> None:
        payload = datagram.payload
        if len(payload) < 10 or payload[:4] != _RESPONSE:
            return
        ip = Ipv4Address(payload[4:8])
        (blob_len,) = struct.unpack("!H", payload[8:10])
        if len(payload) < 10 + blob_len + 2:
            self.bad_responses += 1
            return
        blob = payload[10 : 10 + blob_len]
        (sig_len,) = struct.unpack("!H", payload[10 + blob_len : 12 + blob_len])
        signature = payload[12 + blob_len : 12 + blob_len + sig_len]
        if not self.akd_public_key.verify(ip.packed + blob, signature):
            self.bad_responses += 1
            return  # forged AKD response; ignore
        try:
            key = PublicKey.decode(blob)
        except CryptoError:
            self.bad_responses += 1
            return
        self.cache[ip] = key
        callbacks = self._pending.pop(ip, [])
        for cb in callbacks:
            cb(key)
