"""Crypto substrate for S-ARP / TARP: RSA keys, signed bindings, AKD, LTA."""

from repro.crypto.akd import AKD_PORT, AkdClient, AkdService
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.crypto.lta import LocalTicketAgent, Ticket
from repro.crypto.sign import CryptoCostModel, SignedBinding

__all__ = [
    "AKD_PORT",
    "AkdClient",
    "AkdService",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "LocalTicketAgent",
    "Ticket",
    "CryptoCostModel",
    "SignedBinding",
]
