"""Signing cost model and signed-binding message formats.

Two things live here:

* :class:`CryptoCostModel` — the CPU time charged to the simulated clock
  for sign/verify operations.  Defaults approximate the DSA timings the
  S-ARP authors reported on early-2000s hardware, which is what makes the
  reproduced Figure 3 (resolution-latency comparison) show S-ARP's
  characteristic slowdown.
* :class:`SignedBinding` — the payload S-ARP carries in its ARP extension:
  the claimed ``(IP, MAC)`` binding, a timestamp (anti-replay), the
  signer's key fingerprint, and the signature bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CryptoError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.crypto.keys import PrivateKey, PublicKey

__all__ = ["CryptoCostModel", "SignedBinding"]


@dataclass(frozen=True)
class CryptoCostModel:
    """Seconds of CPU charged per cryptographic operation.

    Defaults are in the ballpark of the measurements published for S-ARP
    (DSA-512 on ~800 MHz hardware): signing dominated by the modexp with
    the private exponent, verification somewhat cheaper, and a modest
    per-message serialization overhead.
    """

    sign_time: float = 2.0e-3
    verify_time: float = 1.2e-3
    lookup_time: float = 0.1e-3

    def scaled(self, factor: float) -> "CryptoCostModel":
        """A model ``factor`` times slower/faster (hardware sweeps)."""
        if factor <= 0:
            raise CryptoError(f"cost factor must be positive, got {factor}")
        return CryptoCostModel(
            sign_time=self.sign_time * factor,
            verify_time=self.verify_time * factor,
            lookup_time=self.lookup_time * factor,
        )


@dataclass(frozen=True)
class SignedBinding:
    """A signed ``(IP, MAC, timestamp)`` claim."""

    ip: Ipv4Address
    mac: MacAddress
    timestamp: float
    signature: bytes

    @staticmethod
    def message_bytes(ip: Ipv4Address, mac: MacAddress, timestamp: float) -> bytes:
        """The canonical byte string that gets signed."""
        return b"repro-binding|" + ip.packed + mac.packed + struct.pack("!d", timestamp)

    @classmethod
    def create(
        cls,
        ip: Ipv4Address,
        mac: MacAddress,
        timestamp: float,
        key: PrivateKey,
    ) -> "SignedBinding":
        signature = key.sign(cls.message_bytes(ip, mac, timestamp))
        return cls(ip=ip, mac=mac, timestamp=timestamp, signature=signature)

    def verify(self, key: PublicKey) -> bool:
        return key.verify(
            self.message_bytes(self.ip, self.mac, self.timestamp), self.signature
        )

    def fresh(self, now: float, max_age: float) -> bool:
        """Anti-replay freshness window check."""
        return now - max_age <= self.timestamp <= now + 1e-6

    # -- wire form -----------------------------------------------------
    def encode(self) -> bytes:
        return (
            self.ip.packed
            + self.mac.packed
            + struct.pack("!d", self.timestamp)
            + struct.pack("!H", len(self.signature))
            + self.signature
        )

    @classmethod
    def decode(cls, data: bytes) -> "SignedBinding":
        if len(data) < 4 + 6 + 8 + 2:
            raise CryptoError("signed binding blob too short")
        ip = Ipv4Address(data[:4])
        mac = MacAddress(data[4:10])
        (timestamp,) = struct.unpack("!d", data[10:18])
        (sig_len,) = struct.unpack("!H", data[18:20])
        if len(data) < 20 + sig_len:
            raise CryptoError("signed binding blob truncated")
        return cls(ip=ip, mac=mac, timestamp=timestamp, signature=data[20 : 20 + sig_len])
