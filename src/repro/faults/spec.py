"""Fault specifications — the declarative half of ``repro.faults``.

A :class:`FaultSpec` describes link/host impairments as plain data:
probabilities for frame loss / duplication / reordering / corruption,
added latency and jitter, link flap schedules and host cache churn.  It
parses from a compact string (``loss=0.05,jitter=2ms,flap=eth0@t3-5``),
round-trips through JSON, and is deliberately free of any simulation
machinery — :mod:`repro.faults.inject` turns a spec into scheduled
events and hook installations.

The compact grammar, one comma-separated ``key=value`` list:

``loss= dup= reorder= corrupt=``
    Per-frame probabilities in ``[0, 1]``.
``latency= jitter=``
    Durations: a bare float is seconds; ``us``/``ms``/``s`` suffixes are
    accepted (``2ms``, ``50us``, ``1.5s``).  ``latency`` adds a fixed
    delay to every frame; ``jitter`` adds ``U(0, jitter)`` on top.
``reorder_gap=``
    Extra hold applied to frames selected by ``reorder`` (duration).
``flap=TARGET@tSTART-END``
    Takes the link attached to host/port ``TARGET`` down at simulated
    time ``START`` and back up at ``END`` (seconds).  Repeatable.
``churn=RATE``
    Poisson rate (events/second) of host ARP-cache flushes across the
    LAN.

Canonicalisation: :attr:`FaultSpec.spec_string` renders keys in a fixed
order with repr-stable floats, so equal specs produce equal strings —
the property campaign cache keys rely on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields
from typing import Dict, NamedTuple, Optional, Tuple, Union

from repro.errors import FaultError

__all__ = ["FaultSpec", "LinkFlap", "parse_fault_spec"]

#: Duration-suffix multipliers, longest suffix first so ``us`` wins over ``s``.
_DURATION_SUFFIXES = (("us", 1e-6), ("ms", 1e-3), ("s", 1.0))

#: Spec keys that carry probabilities in [0, 1].
_PROBABILITY_KEYS = ("loss", "dup", "reorder", "corrupt")

#: Spec keys that carry durations (seconds, suffix grammar accepted).
_DURATION_KEYS = ("latency", "jitter", "reorder_gap")


class LinkFlap(NamedTuple):
    """One scheduled down/up cycle of the link attached to ``target``."""

    target: str
    start: float
    end: float

    @property
    def spec_string(self) -> str:
        return f"flap={self.target}@t{_render_float(self.start)}-{_render_float(self.end)}"


def _render_float(value: float) -> str:
    """Compact, repr-stable float rendering (``3.0`` -> ``3``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def parse_duration(text: str, key: str = "duration") -> float:
    """Parse ``2ms``/``50us``/``1.5s``/bare-seconds into float seconds."""
    raw = text.strip()
    for suffix, scale in _DURATION_SUFFIXES:
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            break
    else:
        scale = 1.0
    try:
        value = float(raw)
    except ValueError:
        raise FaultError(f"{key}: cannot parse duration {text!r}") from None
    return value * scale


def _parse_flap(text: str) -> LinkFlap:
    """Parse ``TARGET@tSTART-END`` into a :class:`LinkFlap`."""
    target, sep, window = text.partition("@")
    if not sep or not target:
        raise FaultError(f"flap: expected TARGET@tSTART-END, got {text!r}")
    if not window.startswith("t"):
        raise FaultError(f"flap: window must start with 't', got {text!r}")
    # Split on "-" unless it is an exponent sign ("1e-06-2.5" -> two times).
    parts = re.split(r"(?<![eE])-", window[1:])
    if len(parts) != 2:
        raise FaultError(f"flap: expected tSTART-END window, got {text!r}")
    try:
        start = float(parts[0])
        end = float(parts[1])
    except ValueError:
        raise FaultError(f"flap: cannot parse window in {text!r}") from None
    return LinkFlap(target=target, start=start, end=end)


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic link/host impairment model, as plain data.

    All randomness derives from the simulation's seeded RNG streams when
    the spec is installed — the spec itself is pure configuration.
    """

    #: Per-frame drop probability.
    loss: float = 0.0
    #: Fixed extra one-way delay added to every frame, seconds.
    latency: float = 0.0
    #: Uniform random extra delay in ``[0, jitter]`` seconds per frame.
    jitter: float = 0.0
    #: Per-frame duplication probability (the copy follows immediately).
    dup: float = 0.0
    #: Probability a frame is held back so later frames overtake it.
    reorder: float = 0.0
    #: Hold duration applied to reordered frames, seconds.
    reorder_gap: float = 1e-3
    #: Per-frame probability of a single flipped byte.
    corrupt: float = 0.0
    #: Poisson rate (events/second) of random host ARP-cache flushes.
    churn: float = 0.0
    #: Scheduled link down/up windows.
    flaps: Tuple[LinkFlap, ...] = field(default=())

    def __post_init__(self) -> None:
        for key in _PROBABILITY_KEYS:
            value = getattr(self, key)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{key}: probability must be in [0, 1], got {value}")
        for key in _DURATION_KEYS:
            value = getattr(self, key)
            if value < 0:
                raise FaultError(f"{key}: duration must be >= 0, got {value}")
        if self.churn < 0:
            raise FaultError(f"churn: rate must be >= 0, got {self.churn}")
        if self.reorder and self.reorder_gap <= 0:
            raise FaultError("reorder_gap: must be > 0 when reorder is set")
        flaps = tuple(
            flap if isinstance(flap, LinkFlap) else LinkFlap(*flap)
            for flap in self.flaps
        )
        object.__setattr__(self, "flaps", flaps)
        for flap in flaps:
            if flap.start < 0:
                raise FaultError(f"flap: start must be >= 0, got {flap.start}")
            if flap.end <= flap.start:
                raise FaultError(
                    f"flap: window must end after it starts, got {flap.spec_string}"
                )

    # ------------------------------------------------------------------
    # Parsing / rendering
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the compact comma-separated grammar into a spec."""
        values: Dict[str, float] = {}
        flaps = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise FaultError(f"expected key=value, got {item!r}")
            if key == "flap":
                flaps.append(_parse_flap(value))
                continue
            if key in values:
                raise FaultError(f"duplicate key {key!r} in fault spec")
            if key in _PROBABILITY_KEYS or key == "churn":
                try:
                    values[key] = float(value)
                except ValueError:
                    raise FaultError(f"{key}: cannot parse {value!r}") from None
            elif key in _DURATION_KEYS:
                values[key] = parse_duration(value, key)
            else:
                known = (*_PROBABILITY_KEYS, *_DURATION_KEYS, "churn", "flap")
                raise FaultError(
                    f"unknown fault key {key!r}; known keys: {', '.join(known)}"
                )
        return cls(flaps=tuple(flaps), **values)

    @property
    def spec_string(self) -> str:
        """Canonical compact rendering (fixed key order, stable floats)."""
        parts = []
        for f in fields(self):
            if f.name == "flaps":
                continue
            value = getattr(self, f.name)
            if value == f.default:
                continue
            parts.append(f"{f.name}={_render_float(value)}")
        parts.extend(flap.spec_string for flap in self.flaps)
        return ",".join(parts)

    @property
    def is_idle(self) -> bool:
        """True when the spec impairs nothing (equivalent to no spec)."""
        return not self.spec_string

    def needs_link_hook(self) -> bool:
        """Does this spec require the per-frame link impairment hook?"""
        return bool(
            self.loss
            or self.latency
            or self.jitter
            or self.dup
            or self.reorder
            or self.corrupt
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {}
        for f in fields(self):
            if f.name == "flaps":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                payload[f.name] = value
        if self.flaps:
            payload["flaps"] = [
                {"target": flap.target, "start": flap.start, "end": flap.end}
                for flap in self.flaps
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise FaultError(f"fault spec payload must be a dict, got {payload!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultError(f"unknown fault spec fields: {sorted(unknown)}")
        kwargs = dict(payload)
        raw_flaps = kwargs.pop("flaps", [])
        try:
            flaps = tuple(
                LinkFlap(
                    target=str(item["target"]),
                    start=float(item["start"]),
                    end=float(item["end"]),
                )
                for item in raw_flaps
            )
        except (KeyError, TypeError, ValueError):
            raise FaultError(f"malformed flap entries: {raw_flaps!r}") from None
        return cls(flaps=flaps, **kwargs)

    def __str__(self) -> str:
        return self.spec_string or "none"


def parse_fault_spec(
    value: Union[str, FaultSpec, None],
) -> Optional[FaultSpec]:
    """Normalise user input into an optional :class:`FaultSpec`.

    ``None``, ``""`` and ``"none"`` mean no faults; a :class:`FaultSpec`
    passes through; anything else is parsed with the compact grammar.
    """
    if value is None:
        return None
    if isinstance(value, FaultSpec):
        return None if value.is_idle else value
    if not isinstance(value, str):
        raise FaultError(f"fault spec must be a string, got {type(value).__name__}")
    text = value.strip()
    if not text or text.lower() == "none":
        return None
    spec = FaultSpec.parse(text)
    return None if spec.is_idle else spec
