"""Deterministic, composable fault injection for the simulated LAN.

The paper's scheme comparison assumes a clean network; this package
stresses that assumption with seeded link/host impairments — frame
loss, latency + jitter, duplication, reordering, byte corruption, link
flaps and host cache churn — attached at L2 through the
:mod:`repro.hooks` pipeline (zero-cost when idle).

Split in two halves:

* :mod:`repro.faults.spec` — :class:`FaultSpec`, pure data: parsed
  from the compact ``loss=0.05,jitter=2ms,flap=victim@t3-5`` grammar,
  JSON round-trippable, carried verbatim by ``ScenarioConfig`` and
  campaign cells.
* :mod:`repro.faults.inject` — :class:`FaultInjector`, the runtime:
  installs per-link impairment hooks, flap schedules and churn
  processes on a built :class:`~repro.l2.topology.Lan`.

See ``docs/faults.md`` for the grammar, determinism guarantees and the
degradation-metric reference.
"""

from repro.faults.inject import (
    FaultInjector,
    LinkImpairment,
    apply_faults,
    fault_events_counter,
    fault_frames_counter,
)
from repro.faults.spec import FaultSpec, LinkFlap, parse_fault_spec

__all__ = [
    "FaultSpec",
    "LinkFlap",
    "parse_fault_spec",
    "FaultInjector",
    "LinkImpairment",
    "apply_faults",
    "fault_frames_counter",
    "fault_events_counter",
]
