"""Fault injection — the runtime half of ``repro.faults``.

:class:`FaultInjector` turns a :class:`~repro.faults.spec.FaultSpec`
into live machinery on a built :class:`~repro.l2.topology.Lan`:

* a :class:`LinkImpairment` transform hook on every link's ``faults``
  hook point (frame loss, latency, jitter, reordering, corruption,
  duplication),
* scheduled link flaps (both ports shut, switch CAM flushed via
  :meth:`~repro.l2.switch.Switch.link_down`, ports restored at the
  window's end),
* a Poisson host-churn process flushing random hosts' dynamic ARP
  entries.

Determinism: every random draw comes from per-component
:meth:`~repro.sim.simulator.Simulator.rng_stream` streams keyed by
stable names (``faults/link/<a>|<b>``, ``faults/churn``), and each
impairment draws in a fixed order with disabled dimensions drawing
nothing — so the same seed and spec replay the exact same fault
sequence regardless of which other dimensions are enabled.

Degradation is observable through the metrics registry:
``fault_frames_total{kind}`` counts per-frame impairments
(``dropped``/``delayed``/``duplicated``/``reordered``/``corrupted``)
and ``fault_events_total{kind}`` counts discrete events
(``flap_down``/``flap_up``/``churn_flush``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import FaultError
from repro.faults.spec import FaultSpec, LinkFlap
from repro.hooks import TeardownStack
from repro.obs.registry import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.l2.device import Link, Port
    from repro.l2.topology import Lan

__all__ = [
    "FaultInjector",
    "LinkImpairment",
    "fault_frames_counter",
    "fault_events_counter",
]

#: Delivery plan entry: (extra delay seconds, frame payload).
PlanEntry = Tuple[float, bytes]


def fault_frames_counter():
    """The ``fault_frames_total{kind}`` registry counter family."""
    return REGISTRY.counter(
        "fault_frames_total",
        "Frames impaired by the fault-injection layer, by impairment kind",
        labels=("kind",),
    )


def fault_events_counter():
    """The ``fault_events_total{kind}`` registry counter family."""
    return REGISTRY.counter(
        "fault_events_total",
        "Discrete fault events (link flaps, host churn), by kind",
        labels=("kind",),
    )


class LinkImpairment:
    """Per-link transform hook rewriting the frame delivery plan.

    Installed on :attr:`Link.faults <repro.l2.device.Link.faults>`; the
    value is a tuple of ``(extra_delay, payload)`` entries and the hook
    returns the impaired plan (possibly empty — frame lost).  Draws
    happen in a fixed order (loss, jitter, reorder, corrupt, dup) with
    disabled dimensions drawing nothing, which keeps replay stable when
    specs differ only in which dimensions are on.
    """

    __slots__ = ("spec", "rng", "_counts")

    def __init__(self, spec: FaultSpec, rng, counts: Dict[str, object]) -> None:
        self.spec = spec
        self.rng = rng
        self._counts = counts

    def __call__(self, plan, link, sender) -> Tuple[PlanEntry, ...]:
        spec = self.spec
        rng = self.rng
        out: List[PlanEntry] = []
        for extra, payload in plan:
            if spec.loss and rng.random() < spec.loss:
                self._counts["dropped"].inc()
                continue
            delay = extra
            if spec.latency:
                delay += spec.latency
            if spec.jitter:
                delay += rng.random() * spec.jitter
            if delay != extra:
                self._counts["delayed"].inc()
            if spec.reorder and rng.random() < spec.reorder:
                delay += spec.reorder_gap
                self._counts["reordered"].inc()
            if spec.corrupt and payload and rng.random() < spec.corrupt:
                index = rng.randrange(len(payload))
                bit = 1 << rng.randrange(8)
                payload = (
                    payload[:index]
                    + bytes((payload[index] ^ bit,))
                    + payload[index + 1 :]
                )
                self._counts["corrupted"].inc()
            out.append((delay, payload))
            if spec.dup and rng.random() < spec.dup:
                out.append((delay, payload))
                self._counts["duplicated"].inc()
        return tuple(out)


def _link_stream_name(link: "Link") -> str:
    return f"faults/link/{link.a.name}|{link.b.name}"


class FaultInjector:
    """Installs a :class:`FaultSpec` onto a built LAN; reversible.

    Construction does not touch the LAN — call :meth:`install` once the
    topology is built (``Scenario`` does this automatically when its
    config carries a ``fault_spec``).  Links added after ``install``
    (e.g. by a churn workload joining hosts mid-run) are **not**
    impaired; call :meth:`cover_new_links` to extend coverage.
    """

    def __init__(self, spec: FaultSpec, lan: "Lan") -> None:
        self.spec = spec
        self.lan = lan
        self.sim = lan.sim
        self.installed = False
        self.links_covered = 0
        self._teardowns = TeardownStack(owner="faults")
        self._events: List[object] = []
        self._downed_ports: List["Port"] = []
        self._churn_rng = None
        self._churn_event = None
        self._churn_hosts: List[str] = []
        counter = fault_frames_counter()
        self._frame_counts = {
            kind: counter.labels(kind=kind)
            for kind in ("dropped", "delayed", "duplicated", "reordered", "corrupted")
        }
        events = fault_events_counter()
        self._event_counts = {
            kind: events.labels(kind=kind)
            for kind in ("flap_down", "flap_up", "churn_flush")
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        if self.installed:
            raise FaultError("fault injector already installed")
        self.installed = True
        if self.spec.needs_link_hook():
            self.cover_new_links()
        for flap in self.spec.flaps:
            self._schedule_flap(flap)
        if self.spec.churn:
            self._churn_rng = self.sim.rng_stream("faults/churn")
            self._churn_hosts = sorted(self.lan.hosts)
            self._schedule_churn()
        return self

    def cover_new_links(self) -> int:
        """Impair any LAN links not yet hooked; returns how many."""
        if not self.spec.needs_link_hook():
            return 0
        added = 0
        for link in self.lan.links[self.links_covered :]:
            impairment = LinkImpairment(
                self.spec,
                self.sim.rng_stream(_link_stream_name(link)),
                self._frame_counts,
            )
            self._teardowns.push(link.faults.add(impairment, owner="faults"))
            added += 1
        self.links_covered = len(self.lan.links)
        return added

    def uninstall(self) -> None:
        """Remove hooks, cancel pending events, restore downed ports."""
        for event in self._events:
            event.cancel()
        self._events.clear()
        if self._churn_event is not None:
            self._churn_event.cancel()
            self._churn_event = None
        for port in self._downed_ports:
            port.no_shut()
        self._downed_ports.clear()
        self._teardowns.close()
        self.installed = False
        self.links_covered = 0

    # ------------------------------------------------------------------
    # Link flaps
    # ------------------------------------------------------------------
    def _schedule_flap(self, flap: LinkFlap) -> None:
        # Resolve eagerly when possible so typos fail at install time.
        # A target that does not exist *yet* — e.g. the ``ctrl`` host a
        # scheme registers after faults are applied — is deferred and
        # resolved when the flap window opens; a target still unknown at
        # that point raises the same FaultError, just later.
        resolved: List[Optional["Link"]] = [None]
        try:
            resolved[0] = self._resolve_flap_link(flap.target)
        except FaultError as error:
            if "unknown target" not in str(error):
                raise  # ambiguous / unattached targets exist now: real errors

        def flap_down() -> None:
            if resolved[0] is None:
                resolved[0] = self._resolve_flap_link(flap.target)
            self._flap_down(resolved[0])

        def flap_up() -> None:
            if resolved[0] is not None:  # down never resolved: nothing to restore
                self._flap_up(resolved[0])

        self._events.append(
            self.sim.schedule_at(flap.start, flap_down, name="faults.flap_down")
        )
        self._events.append(
            self.sim.schedule_at(flap.end, flap_up, name="faults.flap_up")
        )

    def _resolve_flap_link(self, target: str) -> "Link":
        host = self.lan.hosts.get(target)
        if host is not None:
            link = host.nic.link
            if link is None:
                raise FaultError(f"flap: host {target!r} has no attached link")
            return link
        exact = [
            link
            for link in self.lan.links
            if target in (link.a.name, link.b.name)
        ]
        if not exact:
            # Forgiving suffix match ("eth0" for a one-host lab LAN).
            exact = [
                link
                for link in self.lan.links
                if any(p.name.endswith("." + target) for p in (link.a, link.b))
            ]
        if len(exact) == 1:
            return exact[0]
        if len(exact) > 1:
            names = sorted({p.name for link in exact for p in (link.a, link.b)})
            raise FaultError(
                f"flap: target {target!r} is ambiguous; matching ports: {names}"
            )
        raise FaultError(
            f"flap: unknown target {target!r}; known hosts: {sorted(self.lan.hosts)}"
        )

    def _flap_down(self, link: "Link") -> None:
        for port in (link.a, link.b):
            port.shut()
            self._downed_ports.append(port)
            link_down = getattr(port.device, "link_down", None)
            if link_down is not None:
                link_down(port.index)
        self._event_counts["flap_down"].inc()

    def _flap_up(self, link: "Link") -> None:
        for port in (link.a, link.b):
            port.no_shut()
            if port in self._downed_ports:
                self._downed_ports.remove(port)
        self._event_counts["flap_up"].inc()

    # ------------------------------------------------------------------
    # Host churn
    # ------------------------------------------------------------------
    def _schedule_churn(self) -> None:
        gap = self._churn_rng.expovariate(self.spec.churn)
        self._churn_event = self.sim.schedule(
            gap, self._churn_tick, name="faults.churn"
        )

    def _churn_tick(self) -> None:
        name = self._churn_hosts[self._churn_rng.randrange(len(self._churn_hosts))]
        host = self.lan.hosts.get(name)
        cache = getattr(host, "arp_cache", None)
        if cache is not None:
            cache.flush_dynamic()
            self._event_counts["churn_flush"].inc()
        self._schedule_churn()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector({self.spec.spec_string or 'idle'!s}, "
            f"links={self.links_covered}, installed={self.installed})"
        )


def apply_faults(spec: Optional[FaultSpec], lan: "Lan") -> Optional[FaultInjector]:
    """Install ``spec`` on ``lan`` when it impairs anything; else no-op."""
    if spec is None or spec.is_idle:
        return None
    return FaultInjector(spec, lan).install()
