"""Address model: MAC / IPv4 value types and the vendor OUI registry."""

from repro.net.addresses import (
    BROADCAST_IP,
    BROADCAST_MAC,
    ZERO_IP,
    ZERO_MAC,
    Ipv4Address,
    Ipv4Network,
    MacAddress,
)
from repro.net.oui import KNOWN_OUIS, oui_of, vendor_for

__all__ = [
    "MacAddress",
    "Ipv4Address",
    "Ipv4Network",
    "BROADCAST_MAC",
    "ZERO_MAC",
    "ZERO_IP",
    "BROADCAST_IP",
    "KNOWN_OUIS",
    "oui_of",
    "vendor_for",
]
