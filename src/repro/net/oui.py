"""A tiny vendor OUI registry.

arpwatch-style monitors report the NIC vendor of a newly seen station; the
registry below carries a representative slice of the IEEE OUI database so
those reports (and the locally-administered heuristic some detectors use)
work inside the simulation.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import MacAddress

__all__ = ["vendor_for", "oui_of", "KNOWN_OUIS"]

#: OUI prefix -> vendor name.  A representative sample, not the full IEEE list.
KNOWN_OUIS: dict[int, str] = {
    0x080027: "PCS Systemtechnik (VirtualBox)",
    0x525400: "QEMU/KVM virtual NIC",
    0x005056: "VMware",
    0x4C5E0C: "Routerboard (MikroTik)",
    0xE48D8C: "Routerboard (MikroTik)",
    0xDCA632: "Raspberry Pi Trading",
    0xB827EB: "Raspberry Pi Foundation",
    0x3C5282: "Hewlett Packard",
    0x00163E: "Xensource",
    0xF0DEF1: "Wistron InfoComm",
    0x001B63: "Apple",
    0xA45E60: "Apple",
    0x00E04C: "Realtek",
    0x00D861: "Micro-Star (MSI)",
    0x4C3488: "Intel Corporate",
    0x8C1645: "LCFC Electronics (Lenovo)",
    0x000C29: "VMware",
    0x001A2B: "Ayecom Technology",
    0x886B6E: "Shenzhen Bilian",
    0x6CB311: "Shenzhen Lianrui",
}


def oui_of(mac: MacAddress) -> int:
    """The 24-bit OUI prefix of ``mac``."""
    return mac.oui


def vendor_for(mac: MacAddress) -> Optional[str]:
    """Vendor name for ``mac``, or ``None`` when the OUI is unknown.

    Locally-administered addresses have no registered vendor by
    construction and always return ``None``.
    """
    if mac.is_locally_administered:
        return None
    return KNOWN_OUIS.get(mac.oui)
