"""MAC and IPv4 address value types.

These are small immutable objects used throughout the library instead of
raw strings/ints so that parsing and formatting mistakes surface once, at
construction, instead of deep inside a codec.  Both types round-trip to
the exact wire encodings used by :mod:`repro.packets`.
"""

from __future__ import annotations

import random
import re
from functools import lru_cache, total_ordering
from typing import Iterator, Optional, Union

from repro.errors import AddressError

__all__ = [
    "MacAddress",
    "Ipv4Address",
    "Ipv4Network",
    "BROADCAST_MAC",
    "ZERO_MAC",
    "ZERO_IP",
    "BROADCAST_IP",
    "intern_stats",
]

#: Bound on each intern cache; a LAN simulation touches far fewer distinct
#: addresses, so in practice the caches never evict.
_INTERN_CAPACITY = 8192

_MAC_RE = re.compile(r"^([0-9A-Fa-f]{2})([:\-][0-9A-Fa-f]{2}){5}$")


@total_ordering
class MacAddress:
    """A 48-bit Ethernet hardware address.

    Accepts another :class:`MacAddress`, a ``bytes`` of length 6, an int in
    ``[0, 2**48)``, or a string in ``aa:bb:cc:dd:ee:ff`` /
    ``aa-bb-cc-dd-ee-ff`` form.
    """

    __slots__ = ("_value", "_packed")

    def __init__(self, value: Union["MacAddress", bytes, int, str]) -> None:
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise AddressError(f"MAC bytes must have length 6, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, int):
            if not 0 <= value < 1 << 48:
                raise AddressError(f"MAC int out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"malformed MAC address: {value!r}")
            self._value = int(value.replace("-", ":").replace(":", ""), 16)
        else:
            raise AddressError(f"cannot build MacAddress from {type(value).__name__}")
        self._packed: Optional[bytes] = None

    @classmethod
    def from_wire(cls, data: bytes) -> "MacAddress":
        """Interned constructor for the 6-byte wire encoding.

        Codecs parse the same handful of addresses over and over; this
        returns a shared instance per distinct wire value (bounded LRU)
        instead of re-parsing and re-allocating on every frame.
        """
        return _intern_mac(bytes(data))

    # -- representation -------------------------------------------------
    @property
    def packed(self) -> bytes:
        """The 6-byte wire encoding (computed once per instance)."""
        packed = self._packed
        if packed is None:
            packed = self._packed = self._value.to_bytes(6, "big")
        return packed

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __int__(self) -> int:
        return self._value

    # -- semantics -------------------------------------------------------
    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the I/G bit is set (includes broadcast)."""
        return bool(self._value >> 40 & 0x01)

    @property
    def is_unicast(self) -> bool:
        return not self.is_multicast

    @property
    def is_locally_administered(self) -> bool:
        return bool(self._value >> 40 & 0x02)

    @property
    def oui(self) -> int:
        """The 24-bit organizationally unique identifier prefix."""
        return self._value >> 24

    # -- plumbing ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if isinstance(other, MacAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self._value))

    @classmethod
    def random(cls, rng: random.Random, oui: Optional[int] = None) -> "MacAddress":
        """A random unicast address, optionally under a fixed vendor OUI.

        When no OUI is given the locally-administered bit is set, matching
        what real spoofing tools generate.
        """
        if oui is None:
            head = (rng.getrandbits(24) & ~0x010000 | 0x020000) << 24
        else:
            if not 0 <= oui < 1 << 24:
                raise AddressError(f"OUI out of range: {oui}")
            head = (oui & ~0x010000) << 24
        return cls(head | rng.getrandbits(24))


BROADCAST_MAC = MacAddress("ff:ff:ff:ff:ff:ff")
ZERO_MAC = MacAddress("00:00:00:00:00:00")


@total_ordering
class Ipv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value", "_packed")

    def __init__(self, value: Union["Ipv4Address", bytes, int, str]) -> None:
        if isinstance(value, Ipv4Address):
            self._value = value._value
        elif isinstance(value, bytes):
            if len(value) != 4:
                raise AddressError(f"IPv4 bytes must have length 4, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, int):
            if not 0 <= value < 1 << 32:
                raise AddressError(f"IPv4 int out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise AddressError(f"malformed IPv4 address: {value!r}")
            acc = 0
            for part in parts:
                if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                    raise AddressError(f"malformed IPv4 octet in {value!r}")
                octet = int(part)
                if octet > 255:
                    raise AddressError(f"IPv4 octet out of range in {value!r}")
                acc = acc << 8 | octet
            self._value = acc
        else:
            raise AddressError(f"cannot build Ipv4Address from {type(value).__name__}")
        self._packed: Optional[bytes] = None

    @classmethod
    def from_wire(cls, data: bytes) -> "Ipv4Address":
        """Interned constructor for the 4-byte wire encoding (see
        :meth:`MacAddress.from_wire`)."""
        return _intern_ip(bytes(data))

    @property
    def packed(self) -> bytes:
        packed = self._packed
        if packed is None:
            packed = self._packed = self._value.to_bytes(4, "big")
        return packed

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24 & 255}.{v >> 16 & 255}.{v >> 8 & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"Ipv4Address('{self}')"

    def __int__(self) -> int:
        return self._value

    def __add__(self, offset: int) -> "Ipv4Address":
        return Ipv4Address((self._value + offset) & 0xFFFFFFFF)

    @property
    def is_unspecified(self) -> bool:
        return self._value == 0

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFF

    @property
    def is_multicast(self) -> bool:
        return 0xE0000000 <= self._value < 0xF0000000

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ipv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "Ipv4Address") -> bool:
        if isinstance(other, Ipv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))


ZERO_IP = Ipv4Address("0.0.0.0")
BROADCAST_IP = Ipv4Address("255.255.255.255")


@lru_cache(maxsize=_INTERN_CAPACITY)
def _intern_mac(packed: bytes) -> MacAddress:
    return MacAddress(packed)


@lru_cache(maxsize=_INTERN_CAPACITY)
def _intern_ip(packed: bytes) -> Ipv4Address:
    return Ipv4Address(packed)


def intern_stats() -> tuple[int, int]:
    """Aggregate ``(hits, misses)`` across both address intern caches.

    Read by :data:`repro.perf.PERF` to report the intern hit rate; cache
    maintenance itself is handled entirely by :func:`functools.lru_cache`.
    """
    mac_info = _intern_mac.cache_info()
    ip_info = _intern_ip.cache_info()
    return (mac_info.hits + ip_info.hits, mac_info.misses + ip_info.misses)


class Ipv4Network:
    """An IPv4 subnet in CIDR form, e.g. ``Ipv4Network('192.168.88.0/24')``."""

    __slots__ = ("network", "prefix")

    def __init__(self, cidr: Union[str, "Ipv4Network"]) -> None:
        if isinstance(cidr, Ipv4Network):
            self.network = cidr.network
            self.prefix = cidr.prefix
            return
        try:
            addr_part, prefix_part = cidr.split("/")
        except ValueError:
            raise AddressError(f"malformed CIDR: {cidr!r}") from None
        try:
            prefix = int(prefix_part)
        except ValueError:
            raise AddressError(f"malformed CIDR prefix: {cidr!r}") from None
        if not 0 <= prefix <= 32:
            raise AddressError(f"CIDR prefix out of range: {cidr!r}")
        base = Ipv4Address(addr_part)
        mask = self._mask_for(prefix)
        if int(base) & ~mask:
            raise AddressError(f"CIDR has host bits set: {cidr!r}")
        self.network = base
        self.prefix = prefix

    @staticmethod
    def _mask_for(prefix: int) -> int:
        return 0 if prefix == 0 else ~((1 << (32 - prefix)) - 1) & 0xFFFFFFFF

    @property
    def netmask(self) -> Ipv4Address:
        return Ipv4Address(self._mask_for(self.prefix))

    @property
    def broadcast(self) -> Ipv4Address:
        return Ipv4Address(int(self.network) | ~self._mask_for(self.prefix) & 0xFFFFFFFF)

    @property
    def num_hosts(self) -> int:
        """Usable host addresses (excludes network and broadcast)."""
        total = 1 << (32 - self.prefix)
        return max(0, total - 2)

    def __contains__(self, address: Ipv4Address) -> bool:
        mask = self._mask_for(self.prefix)
        return int(address) & mask == int(self.network)

    def hosts(self) -> Iterator[Ipv4Address]:
        """Iterate usable host addresses in ascending order."""
        start = int(self.network) + 1
        end = int(self.broadcast)
        for value in range(start, end):
            yield Ipv4Address(value)

    def host(self, index: int) -> Ipv4Address:
        """The ``index``-th usable host address (1-based, like .1, .2 ...)."""
        if index < 1 or index > self.num_hosts:
            raise AddressError(
                f"host index {index} out of range for /{self.prefix} network"
            )
        return Ipv4Address(int(self.network) + index)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix}"

    def __repr__(self) -> str:
        return f"Ipv4Network('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ipv4Network):
            return self.network == other.network and self.prefix == other.prefix
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("net", int(self.network), self.prefix))
