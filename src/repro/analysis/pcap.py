"""pcap import/export for trace captures.

Writes classic libpcap format (magic ``0xa1b2c3d4``, microsecond
timestamps, LINKTYPE_ETHERNET), so a simulated capture opens directly in
Wireshark/tcpdump — and real captures of Ethernet traffic can be pulled
back in and fed to the offline analyzer.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, List, Union

from repro.errors import CodecError
from repro.sim.trace import Direction, TraceRecord

__all__ = ["write_pcap", "read_pcap", "PCAP_MAGIC"]

PCAP_MAGIC = 0xA1B2C3D4
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


def write_pcap(
    records: Iterable[TraceRecord],
    destination: Union[str, Path],
    snaplen: int = 65535,
) -> int:
    """Write ``records`` to ``destination``; returns the record count.

    Records are sorted by timestamp (pcap readers expect monotonic
    captures); frames longer than ``snaplen`` are truncated with the
    original length preserved in the header, like a real capture.
    """
    ordered = sorted(records, key=lambda r: r.time)
    path = Path(destination)
    count = 0
    with path.open("wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                2,  # version major
                4,  # version minor
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                _LINKTYPE_ETHERNET,
            )
        )
        for record in ordered:
            seconds = int(record.time)
            micros = int(round((record.time - seconds) * 1_000_000))
            if micros >= 1_000_000:  # carry from rounding
                seconds += 1
                micros -= 1_000_000
            captured = record.frame[:snaplen]
            fh.write(
                _RECORD_HEADER.pack(seconds, micros, len(captured), len(record.frame))
            )
            fh.write(captured)
            count += 1
    return count


def read_pcap(source: Union[str, Path]) -> List[TraceRecord]:
    """Read an Ethernet pcap back into :class:`TraceRecord` objects.

    Handles both byte orders; rejects nanosecond-format and non-Ethernet
    captures with :class:`~repro.errors.CodecError`.
    """
    data = Path(source).read_bytes()
    if len(data) < _GLOBAL_HEADER.size:
        raise CodecError("pcap: file shorter than the global header")
    magic_le = struct.unpack("<I", data[:4])[0]
    if magic_le == PCAP_MAGIC:
        endian = "<"
    elif struct.unpack(">I", data[:4])[0] == PCAP_MAGIC:
        endian = ">"
    else:
        raise CodecError(f"pcap: unrecognized magic 0x{magic_le:08x}")
    header = struct.Struct(endian + "IHHiIII")
    record_header = struct.Struct(endian + "IIII")
    (_, _, _, _, _, _, linktype) = header.unpack_from(data, 0)
    if linktype != _LINKTYPE_ETHERNET:
        raise CodecError(f"pcap: linktype {linktype} is not Ethernet")
    records: List[TraceRecord] = []
    offset = header.size
    index = 0
    while offset < len(data):
        if offset + record_header.size > len(data):
            raise CodecError("pcap: truncated record header")
        seconds, micros, caplen, _origlen = record_header.unpack_from(data, offset)
        offset += record_header.size
        if offset + caplen > len(data):
            raise CodecError("pcap: truncated record body")
        frame = data[offset : offset + caplen]
        offset += caplen
        records.append(
            TraceRecord(
                time=seconds + micros / 1_000_000,
                location=f"pcap[{index}]",
                direction=Direction.RX,
                frame=frame,
            )
        )
        index += 1
    return records
