"""pcap import/export for trace captures — streaming-first.

Writes classic libpcap format (magic ``0xa1b2c3d4``, microsecond
timestamps, LINKTYPE_ETHERNET), so a simulated capture opens directly in
Wireshark/tcpdump — and real captures of Ethernet traffic can be pulled
back in and fed to the offline analyzer or the replay engine.

The primitives are streaming: :func:`iter_pcap` is a generator over a
fixed-size read buffer (a multi-GB capture is never materialized), and
:class:`PcapWriter` is a context manager with incremental ``append()``.
The eager :func:`read_pcap`/:func:`write_pcap` remain as warn-once
deprecation shims over them.
"""

from __future__ import annotations

import struct
import warnings
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Union

from repro.errors import PcapError
from repro.sim.trace import Direction, TraceRecord

__all__ = [
    "PCAP_MAGIC",
    "PcapWriter",
    "iter_pcap",
    "read_pcap",
    "write_pcap",
]

PCAP_MAGIC = 0xA1B2C3D4
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")

#: Fixed read-buffer size for :func:`iter_pcap` (bytes).  The reader never
#: holds more than roughly this much file data plus one frame in memory.
READ_BUFFER = 1 << 16


class PcapWriter:
    """Incremental classic-pcap writer.

    Context manager: opens ``destination`` (or wraps an already-open
    binary file object), writes the global header immediately, and
    appends one record per :meth:`append` call — nothing is buffered
    beyond the OS file buffer, so arbitrarily long captures stream out
    in O(1) memory.

    Unlike the legacy :func:`write_pcap`, records are written in call
    order; callers feeding live taps already append in timestamp order,
    and the shim sorts before delegating.
    """

    def __init__(
        self,
        destination: Union[str, Path, BinaryIO],
        snaplen: int = 65535,
    ) -> None:
        self.snaplen = snaplen
        self.count = 0
        self._owns_file = not hasattr(destination, "write")
        if self._owns_file:
            self._fh: BinaryIO = Path(destination).open("wb")
        else:
            self._fh = destination  # type: ignore[assignment]
        self._fh.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC,
                2,  # version major
                4,  # version minor
                0,  # thiszone
                0,  # sigfigs
                snaplen,
                _LINKTYPE_ETHERNET,
            )
        )

    def append(self, record: TraceRecord) -> None:
        """Write one record; frames longer than ``snaplen`` are truncated
        with the original length preserved in the header, like a real
        capture."""
        self.append_frame(record.time, record.frame)

    def append_frame(self, timestamp: float, frame: bytes) -> None:
        """Write one raw ``(timestamp, frame)`` pair (replay-source shape)."""
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:  # carry from rounding
            seconds += 1
            micros -= 1_000_000
        captured = frame[: self.snaplen]
        self._fh.write(_RECORD_HEADER.pack(seconds, micros, len(captured), len(frame)))
        self._fh.write(captured)
        self.count += 1

    def close(self) -> None:
        if self._owns_file and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _open_reader(source: Union[str, Path, BinaryIO], buffer_size: int) -> tuple:
    """Return ``(fh, owns)`` for a path or already-open binary stream."""
    if hasattr(source, "read"):
        return source, False
    return Path(source).open("rb", buffering=buffer_size), True


def iter_pcap(
    source: Union[str, Path, BinaryIO],
    buffer_size: int = READ_BUFFER,
) -> Iterator[TraceRecord]:
    """Stream an Ethernet pcap as :class:`TraceRecord` objects.

    Generator over a fixed-size read buffer — the file is never
    materialized, so multi-GB captures replay in O(``buffer_size``)
    memory.  Handles both byte orders; rejects nanosecond-format and
    non-Ethernet captures; a capture that ends mid-record raises
    :class:`~repro.errors.PcapError` naming the byte offset of the
    short record instead of silently truncating.
    """
    reader, owns = _open_reader(source, buffer_size)
    try:
        head = reader.read(_GLOBAL_HEADER.size)
        if len(head) < _GLOBAL_HEADER.size:
            raise PcapError("pcap: file shorter than the global header")
        magic_le = struct.unpack("<I", head[:4])[0]
        if magic_le == PCAP_MAGIC:
            endian = "<"
        elif struct.unpack(">I", head[:4])[0] == PCAP_MAGIC:
            endian = ">"
        else:
            raise PcapError(f"pcap: unrecognized magic 0x{magic_le:08x}")
        header = struct.Struct(endian + "IHHiIII")
        record_header = struct.Struct(endian + "IIII")
        (_, _, _, _, _, _, linktype) = header.unpack(head)
        if linktype != _LINKTYPE_ETHERNET:
            raise PcapError(f"pcap: linktype {linktype} is not Ethernet")
        offset = header.size
        index = 0
        while True:
            raw_header = reader.read(record_header.size)
            if not raw_header:
                return
            if len(raw_header) < record_header.size:
                raise PcapError(
                    f"pcap: truncated record header at byte offset {offset} "
                    f"(record {index}: got {len(raw_header)} of "
                    f"{record_header.size} header bytes)"
                )
            seconds, micros, caplen, _origlen = record_header.unpack(raw_header)
            offset += record_header.size
            frame = reader.read(caplen)
            if len(frame) < caplen:
                raise PcapError(
                    f"pcap: truncated record body at byte offset {offset} "
                    f"(record {index}: got {len(frame)} of {caplen} bytes)"
                )
            offset += caplen
            yield TraceRecord(
                time=seconds + micros / 1_000_000,
                location=f"pcap[{index}]",
                direction=Direction.RX,
                frame=frame,
            )
            index += 1
    finally:
        if owns:
            reader.close()


# ======================================================================
# Legacy eager API — thin deprecation shims over the streaming primitives
# ======================================================================
#: Legacy function names that already warned this process (warn once each).
_LEGACY_WARNED: set = set()


def _warn_legacy(name: str, replacement: str) -> None:
    if name in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(name)
    warnings.warn(
        f"repro.analysis.pcap.{name}() is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def write_pcap(
    records: Iterable[TraceRecord],
    destination: Union[str, Path],
    snaplen: int = 65535,
) -> int:
    """Deprecated: use :class:`PcapWriter`.

    Sorts ``records`` by timestamp (pcap readers expect monotonic
    captures) then streams them through an incremental writer.
    """
    _warn_legacy("write_pcap", "PcapWriter")
    with PcapWriter(destination, snaplen=snaplen) as writer:
        for record in sorted(records, key=lambda r: r.time):
            writer.append(record)
        return writer.count


def read_pcap(source: Union[str, Path]) -> List[TraceRecord]:
    """Deprecated: use :func:`iter_pcap`.

    Eagerly materializes the whole capture as a list — fine for test
    fixtures, wrong for multi-GB traces.
    """
    _warn_legacy("read_pcap", "iter_pcap")
    return list(iter_pcap(source))
