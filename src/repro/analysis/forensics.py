"""Offline capture forensics: run detection logic over a stored trace.

Monitors work in real time; incident response works on pcaps.  The
:class:`OfflineArpAnalyzer` takes any sequence of
:class:`~repro.sim.trace.TraceRecord` (a link recorder, a switch's
mirror recorder, a host's NIC recorder) and re-runs the passive
detection battery over it after the fact: the arpwatch-style pairing
database, the Snort-style instantaneous signatures, a reply-storm
scan, and a DHCP-consistency cross-check.  The output is a timeline of
:class:`Finding` objects plus summary statistics — what an analyst
would pull out of Wireshark by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CodecError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
)
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.udp import UdpDatagram
from repro.schemes.monitor_base import BindingDatabase
from repro.sim.trace import TraceRecord

__all__ = ["Finding", "CaptureSummary", "OfflineArpAnalyzer"]


@dataclass(frozen=True)
class Finding:
    """One suspicious event recovered from the capture."""

    time: float
    kind: str
    ip: Optional[Ipv4Address] = None
    mac: Optional[MacAddress] = None
    detail: str = ""

    def __str__(self) -> str:
        subject = f" {self.ip}" if self.ip is not None else ""
        suspect = f" at {self.mac}" if self.mac is not None else ""
        return f"[{self.time:10.3f}] {self.kind}{subject}{suspect} {self.detail}".rstrip()


@dataclass
class CaptureSummary:
    """Aggregate statistics over the analyzed capture."""

    frames: int = 0
    arp_packets: int = 0
    arp_requests: int = 0
    arp_replies: int = 0
    gratuitous: int = 0
    dhcp_messages: int = 0
    undecodable: int = 0
    stations: int = 0
    rebindings: int = 0
    findings: List[Finding] = field(default_factory=list)

    def findings_of(self, kind: str) -> List[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def render(self) -> str:
        """A human-readable incident report."""
        lines = [
            f"frames: {self.frames}  (undecodable: {self.undecodable})",
            f"arp: {self.arp_packets} ({self.arp_requests} req / "
            f"{self.arp_replies} rep, {self.gratuitous} gratuitous)",
            f"dhcp messages: {self.dhcp_messages}",
            f"stations: {self.stations}  rebinding events: {self.rebindings}",
        ]
        if self.findings:
            lines.append("findings:")
            lines.extend(f"  {finding}" for finding in self.findings)
        else:
            lines.append("findings: none")
        return "\n".join(lines)


class OfflineArpAnalyzer:
    """Replays a capture through the passive detection battery."""

    def __init__(
        self,
        known_bindings: Optional[Dict[Ipv4Address, MacAddress]] = None,
        storm_threshold: int = 12,
        storm_window: float = 10.0,
        dhcp_grace: float = 30.0,
        dedup_window: float = 60.0,
    ) -> None:
        self.known_bindings = dict(known_bindings or {})
        self.storm_threshold = storm_threshold
        self.storm_window = storm_window
        self.dhcp_grace = dhcp_grace
        self.dedup_window = dedup_window
        self.db = BindingDatabase()
        self._reply_times: Dict[Tuple[Ipv4Address, MacAddress], List[float]] = {}
        self._storm_flagged: set[Tuple[Ipv4Address, MacAddress]] = set()
        self._dhcp_recent: Dict[Ipv4Address, Tuple[MacAddress, float]] = {}
        self._finding_seen: Dict[tuple, float] = {}
        #: (kind, ip, mac) -> occurrences suppressed by the dedup window.
        self.repeat_counts: Dict[tuple, int] = {}
        self.scan_threshold = 16
        self.scan_window = 10.0
        self._request_fanout: Dict[MacAddress, List[Tuple[float, Ipv4Address]]] = {}

    def _emit(self, summary: CaptureSummary, finding: Finding) -> None:
        """Append a finding, condensing repeats within the dedup window."""
        key = (finding.kind, finding.ip, finding.mac)
        last = self._finding_seen.get(key)
        if (
            self.dedup_window > 0
            and last is not None
            and finding.time - last < self.dedup_window
        ):
            self.repeat_counts[key] = self.repeat_counts.get(key, 0) + 1
            return
        self._finding_seen[key] = finding.time
        summary.findings.append(finding)

    # ------------------------------------------------------------------
    def analyze(self, records: Iterable[TraceRecord]) -> CaptureSummary:
        """Run the battery over ``records`` (time-ordered) and summarize."""
        summary = CaptureSummary()
        for record in sorted(records, key=lambda r: r.time):
            summary.frames += 1
            try:
                frame = EthernetFrame.decode(record.frame)
            except CodecError:
                summary.undecodable += 1
                continue
            if frame.ethertype == EtherType.ARP:
                self._analyze_arp(frame, record.time, summary)
            elif frame.ethertype == EtherType.IPV4:
                self._maybe_dhcp(frame, record.time, summary)
        summary.stations = len(self.db)
        return summary

    # ------------------------------------------------------------------
    def _analyze_arp(
        self, frame: EthernetFrame, now: float, summary: CaptureSummary
    ) -> None:
        try:
            arp = ArpPacket.decode(frame.payload)
        except CodecError:
            summary.undecodable += 1
            return
        summary.arp_packets += 1
        if arp.is_request:
            summary.arp_requests += 1
        else:
            summary.arp_replies += 1
        if arp.is_gratuitous:
            summary.gratuitous += 1

        # Signature 1: Ethernet source vs ARP sender mismatch.
        if not arp.spa.is_unspecified and frame.src != arp.sha:
            self._emit(
                summary,
                Finding(
                    time=now,
                    kind="ether-arp-mismatch",
                    ip=arp.spa,
                    mac=arp.sha,
                    detail=f"frame src {frame.src}",
                ),
            )
        # Signature 2a: request sweeps (netdiscover-style reconnaissance).
        if arp.is_request and not arp.is_gratuitous:
            fanout = self._request_fanout.setdefault(frame.src, [])
            fanout.append((now, arp.tpa))
            cutoff = now - self.scan_window
            while fanout and fanout[0][0] < cutoff:
                fanout.pop(0)
            if len({target for _, target in fanout}) >= self.scan_threshold:
                self._emit(
                    summary,
                    Finding(
                        time=now,
                        kind="arp-scan",
                        mac=frame.src,
                        detail=f">= {self.scan_threshold} distinct targets "
                               f"in {self.scan_window:.0f}s",
                    ),
                )
        # Signature 2b: unicast ARP request (scanner / poisoning tool tell).
        if arp.is_request and not arp.is_gratuitous and not frame.dst.is_broadcast:
            self._emit(
                summary,
                Finding(
                    time=now,
                    kind="unicast-arp-request",
                    ip=arp.tpa,
                    mac=frame.src,
                ),
            )
        if arp.spa.is_unspecified:
            return
        # Signature 3: known-binding violation (operator-supplied table).
        expected = self.known_bindings.get(arp.spa)
        if expected is not None and expected != arp.sha:
            self._emit(
                summary,
                Finding(
                    time=now,
                    kind="known-binding-violation",
                    ip=arp.spa,
                    mac=arp.sha,
                    detail=f"expected {expected}",
                ),
            )
        # Signature 4: reply storms (re-poisoning loops repeat themselves).
        if arp.is_reply:
            self._note_reply(arp, now, summary)
        # Pairing database: rebinding / flip-flop timeline.
        event, previous = self.db.observe(arp.spa, arp.sha, now)
        if event in ("changed", "flip-flop"):
            summary.rebindings += 1
            explained = self._dhcp_explains(arp.spa, arp.sha, now)
            self._emit(
                summary,
                Finding(
                    time=now,
                    kind="dhcp-explained-rebinding" if explained else event,
                    ip=arp.spa,
                    mac=arp.sha,
                    detail=f"was {previous}",
                ),
            )

    def _note_reply(
        self, arp: ArpPacket, now: float, summary: CaptureSummary
    ) -> None:
        key = (arp.spa, arp.sha)
        times = self._reply_times.setdefault(key, [])
        times.append(now)
        cutoff = now - self.storm_window
        while times and times[0] < cutoff:
            times.pop(0)
        if len(times) >= self.storm_threshold and key not in self._storm_flagged:
            self._storm_flagged.add(key)
            self._emit(
                summary,
                Finding(
                    time=now,
                    kind="arp-reply-storm",
                    ip=arp.spa,
                    mac=arp.sha,
                    detail=f"{len(times)} replies in {self.storm_window:.0f}s",
                ),
            )

    # ------------------------------------------------------------------
    def _maybe_dhcp(
        self, frame: EthernetFrame, now: float, summary: CaptureSummary
    ) -> None:
        try:
            packet = Ipv4Packet.decode(frame.payload)
            if packet.proto != IpProto.UDP:
                return
            datagram = UdpDatagram.decode(packet.payload)
            if datagram.dst_port not in (DHCP_CLIENT_PORT, DHCP_SERVER_PORT):
                return
            message = DhcpMessage.decode(datagram.payload)
        except CodecError:
            return
        summary.dhcp_messages += 1
        if (
            message.message_type == DhcpMessageType.ACK
            and not message.yiaddr.is_unspecified
        ):
            self._dhcp_recent[message.yiaddr] = (message.chaddr, now)

    def _dhcp_explains(self, ip: Ipv4Address, mac: MacAddress, now: float) -> bool:
        record = self._dhcp_recent.get(ip)
        if record is None:
            return False
        lease_mac, when = record
        return lease_mac == mac and now - when <= self.dhcp_grace
