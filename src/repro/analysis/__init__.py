"""Rendering helpers and offline capture forensics."""

from repro.analysis.forensics import CaptureSummary, Finding, OfflineArpAnalyzer
from repro.analysis.pcap import PcapWriter, iter_pcap, read_pcap, write_pcap
from repro.analysis.stats import Summary, replicate, summarize
from repro.analysis.tables import render_series, render_table, to_csv

__all__ = [
    "render_table",
    "to_csv",
    "render_series",
    "OfflineArpAnalyzer",
    "CaptureSummary",
    "Finding",
    "PcapWriter",
    "iter_pcap",
    "read_pcap",
    "write_pcap",
    "Summary",
    "replicate",
    "summarize",
]
