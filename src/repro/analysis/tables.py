"""Plain-text table and CSV rendering for the reproduced artifacts."""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

__all__ = ["render_table", "to_csv", "render_series"]


def render_table(
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Align columns and draw a minimal ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for row in cells:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
        lines.append(" | ".join(padded))
    return "\n".join(lines)


def to_csv(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """CSV text (RFC 4180-ish quoting)."""
    out = io.StringIO()

    def emit(row: Sequence[object]) -> None:
        quoted = []
        for cell in row:
            text = str(cell)
            if any(ch in text for ch in ',"\n'):
                text = '"' + text.replace('"', '""') + '"'
            quoted.append(text)
        out.write(",".join(quoted) + "\n")

    emit(header)
    for row in rows:
        emit(row)
    return out.getvalue()


def render_series(
    title: str,
    xs: Sequence[float],
    series: dict[str, Sequence[Optional[float]]],
    x_label: str = "x",
    width: int = 60,
) -> str:
    """Render figure data as aligned columns (one line per x value).

    The repository does not plot; figures are reproduced as the exact
    numeric series the plot would draw, which is what EXPERIMENTS.md
    records and what shape assertions test.
    """
    header = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row: List[object] = [f"{x:g}"]
        for name in series:
            value = series[name][i]
            row.append("-" if value is None else f"{value:.6g}")
        rows.append(row)
    return render_table(header, rows, title=title)
