"""Multi-seed replication statistics.

Single deterministic runs are great for debugging and terrible for
claims.  :func:`replicate` re-runs an experiment across seeds and
summarizes each numeric field with mean, standard deviation, and a
normal-approximation 95 % confidence interval — what the evaluation
tables should really quote.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["Summary", "summarize", "replicate"]


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics over one metric."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def ci95_half_width(self) -> float:
        """Half-width of the normal-approximation 95 % CI of the mean."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.n)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95_half_width:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (must be non-empty)."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    return Summary(
        n=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )


def replicate(
    experiment: Callable[[int], Any],
    seeds: Sequence[int],
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Summary]:
    """Run ``experiment(seed)`` per seed and summarize its numeric fields.

    ``experiment`` returns either a dataclass (numeric/bool fields are
    summarized; booleans become success rates) or a plain dict of
    numbers.  ``metrics`` restricts which fields are collected; ``None``
    takes every numeric one.  Fields that are ``None`` in some runs (e.g.
    detection latency when undetected) are summarized over the runs where
    they exist, with the count visible via ``n``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {}
    for seed in seeds:
        result = experiment(seed)
        record = _numeric_fields(result)
        for name, value in record.items():
            if metrics is not None and name not in metrics:
                continue
            if value is None:
                continue
            samples.setdefault(name, []).append(float(value))
    return {name: summarize(values) for name, values in samples.items()}


def _numeric_fields(result: Any) -> Dict[str, Optional[float]]:
    if is_dataclass(result) and not isinstance(result, type):
        record = {}
        for f in fields(result):
            value = getattr(result, f.name)
            if isinstance(value, bool):
                record[f.name] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)):
                record[f.name] = float(value)
            elif value is None:
                record[f.name] = None
        return record
    if isinstance(result, dict):
        return {
            key: (float(value) if value is not None else None)
            for key, value in result.items()
            if value is None or isinstance(value, (int, float, bool))
        }
    raise TypeError(
        f"experiment must return a dataclass or dict, got {type(result).__name__}"
    )
