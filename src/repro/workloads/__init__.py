"""Workload generators: benign traffic, churn, and virtual-IP failover."""

from repro.workloads.benign import BenignTraffic, ChurnEvent, ChurnWorkload
from repro.workloads.failover import VirtualIpPair

__all__ = ["BenignTraffic", "ChurnWorkload", "ChurnEvent", "VirtualIpPair"]
