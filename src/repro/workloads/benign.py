"""Benign traffic and churn generators.

Two jobs: give attacks something worth intercepting (Figures 1 and 4
need live victim traffic), and generate the *legitimate* events that
fool naive detectors — DHCP reassignment, NIC replacement, gratuitous
re-announcements — for the false-positive table (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address, MacAddress
from repro.stack.dhcp_client import DhcpClient
from repro.stack.host import Host

__all__ = ["BenignTraffic", "ChurnWorkload", "ChurnEvent"]


class BenignTraffic:
    """Hosts ping random peers (and optionally the WAN) at a Poisson rate."""

    def __init__(
        self,
        lan: Lan,
        hosts: Optional[List[Host]] = None,
        rate_per_host: float = 1.0,
        wan_fraction: float = 0.3,
        wan_ip: Ipv4Address = Ipv4Address("93.184.216.34"),
    ) -> None:
        self.lan = lan
        self.hosts = hosts if hosts is not None else self._default_hosts(lan)
        self.rate = rate_per_host
        self.wan_fraction = wan_fraction
        self.wan_ip = wan_ip
        self._rng = lan.sim.rng_stream("workload/benign")
        self._cancels: List[Callable[[], None]] = []
        self.pings_sent = 0
        self.replies_received = 0
        self.running = False

    @staticmethod
    def _default_hosts(lan: Lan) -> List[Host]:
        skip = {"gateway"}
        if lan.monitor is not None:
            skip.add(lan.monitor.name)
        return [
            h
            for name, h in lan.hosts.items()
            if name not in skip and h.ip is not None
        ]

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        for host in self.hosts:
            interval = 1.0 / self.rate
            cancel = self.lan.sim.call_every(
                interval,
                lambda h=host: self._tick(h),
                name=f"benign/{host.name}",
                jitter=lambda: self._rng.expovariate(self.rate)
                - 1.0 / self.rate,
            )
            self._cancels.append(cancel)

    def stop(self) -> None:
        self.running = False
        for cancel in self._cancels:
            cancel()
        self._cancels.clear()

    def _tick(self, host: Host) -> None:
        if host.ip is None or not host.nic.up:
            return
        if self._rng.random() < self.wan_fraction:
            target = self.wan_ip
        else:
            peers = [h for h in self.hosts if h is not host and h.ip is not None]
            if not peers:
                return
            target = self._rng.choice(peers).ip
        self.pings_sent += 1
        host.ping(target, on_reply=lambda s, r: self._on_reply())

    def _on_reply(self) -> None:
        self.replies_received += 1

    @property
    def loss_fraction(self) -> float:
        if self.pings_sent == 0:
            return 0.0
        return 1.0 - self.replies_received / self.pings_sent


@dataclass
class ChurnEvent:
    """One benign-churn occurrence (for post-hoc accounting)."""

    time: float
    kind: str
    detail: str


class ChurnWorkload:
    """Legitimate binding churn: DHCP joins/leaves, NIC swaps, re-announces.

    Every event here is innocent, so *any* actionable alert a scheme
    raises while this runs is a false positive by construction.
    """

    def __init__(
        self,
        lan: Lan,
        join_rate: float = 1 / 120.0,
        nic_swap_rate: float = 1 / 600.0,
        reannounce_rate: float = 1 / 300.0,
        lease_time: float = 300.0,
        max_dhcp_hosts: int = 64,
    ) -> None:
        if lan.dhcp_server is None and join_rate > 0:
            raise ValueError("ChurnWorkload with joins needs lan.enable_dhcp() first")
        self.lan = lan
        self.join_rate = join_rate
        self.nic_swap_rate = nic_swap_rate
        self.reannounce_rate = reannounce_rate
        self.max_dhcp_hosts = max_dhcp_hosts
        self._rng = lan.sim.rng_stream("workload/churn")
        self._cancels: List[Callable[[], None]] = []
        self._dhcp_clients: List[DhcpClient] = []
        self._join_counter = 0
        self.events: List[ChurnEvent] = []
        self.running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        if self.join_rate > 0:
            self._cancels.append(
                self.lan.sim.call_every(
                    1.0 / self.join_rate, self._join, name="churn.join"
                )
            )
        if self.nic_swap_rate > 0:
            self._cancels.append(
                self.lan.sim.call_every(
                    1.0 / self.nic_swap_rate, self._nic_swap, name="churn.nic-swap"
                )
            )
        if self.reannounce_rate > 0:
            self._cancels.append(
                self.lan.sim.call_every(
                    1.0 / self.reannounce_rate,
                    self._reannounce,
                    name="churn.reannounce",
                )
            )

    def stop(self) -> None:
        self.running = False
        for cancel in self._cancels:
            cancel()
        self._cancels.clear()

    def _log(self, kind: str, detail: str) -> None:
        self.events.append(ChurnEvent(time=self.lan.sim.now, kind=kind, detail=detail))

    # ------------------------------------------------------------------
    # Event kinds
    # ------------------------------------------------------------------
    def _join(self) -> None:
        """A new device DHCPs onto the network (phone walks in the door)."""
        if len(self._dhcp_clients) >= self.max_dhcp_hosts:
            self._leave()
            return
        self._join_counter += 1
        name = f"churn-host-{self._join_counter}"
        host = self.lan.add_dhcp_host(name)
        client = DhcpClient(host)
        client.start()
        self._dhcp_clients.append(client)
        self._log("dhcp-join", name)

    def _leave(self) -> None:
        """An existing DHCP device releases and unplugs.

        Its address returns to the pool — the next joiner may receive the
        same IP with a different MAC, the classic arpwatch false alarm.
        """
        if not self._dhcp_clients:
            return
        client = self._dhcp_clients.pop(0)
        client.release()
        client.host.nic.shut()
        self._log("dhcp-leave", client.host.name)

    def _nic_swap(self) -> None:
        """A static host's NIC is replaced: same IP, brand-new MAC."""
        candidates = [
            h
            for name, h in self.lan.hosts.items()
            if h.ip is not None
            and h.nic.up
            and name not in ("gateway",)
            and not name.startswith("churn-")
            and (self.lan.monitor is None or h is not self.lan.monitor)
        ]
        if not candidates:
            return
        host = self._rng.choice(candidates)
        old = host.mac
        host.mac = MacAddress.random(self._rng)
        host.announce()
        self._log("nic-swap", f"{host.name}: {old} -> {host.mac}")

    def _reannounce(self) -> None:
        """A host gratuitously re-announces its (unchanged) binding."""
        candidates = [
            h for h in self.lan.hosts.values() if h.ip is not None and h.nic.up
        ]
        if not candidates:
            return
        host = self._rng.choice(candidates)
        host.announce()
        self._log("reannounce", host.name)

    # ------------------------------------------------------------------
    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
