"""Virtual-IP failover (VRRP/keepalived-style hot standby).

The one *legitimate* heavy user of gratuitous ARP: an active/standby
pair shares a virtual service IP, and on failover the standby claims it
with a gratuitous announcement so clients re-learn the binding at once.

This is the acid test the analysis applies to host-hardening schemes:
a failover is indistinguishable on the wire from a gratuitous-ARP
poisoning — same packet, different intent.  Schemes that freeze
bindings (static entries, Anticap) *break* failover; verification-based
schemes (Antidote, DARPI, active probe, hybrid) handle it because the
former owner genuinely stops answering for the address.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TopologyError
from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address
from repro.stack.host import Host

__all__ = ["VirtualIpPair"]


class VirtualIpPair:
    """An active/standby pair serving one virtual IP."""

    def __init__(
        self,
        lan: Lan,
        virtual_ip: Ipv4Address | str | int,
        name: str = "cluster",
    ) -> None:
        self.lan = lan
        if isinstance(virtual_ip, int):
            self.virtual_ip = lan.network.host(virtual_ip)
        else:
            self.virtual_ip = Ipv4Address(virtual_ip)
        if self.virtual_ip not in lan.network:
            raise TopologyError(f"{self.virtual_ip} is outside {lan.network}")
        self.node_a = lan.add_host(f"{name}-a", ip=self.virtual_ip)
        self.node_b = lan.add_host(f"{name}-b", ip=None)
        # The standby holds no address until promoted; it just listens.
        self._standby_parked_ip = self.node_b.ip
        self.node_b.ip = None
        self.active: Host = self.node_a
        self.standby: Host = self.node_b
        self.failovers = 0
        self.active.announce()

    # ------------------------------------------------------------------
    def failover(self, clean: bool = True) -> Host:
        """Promote the standby; returns the new active node.

        ``clean=True`` models an orderly handover (the old active
        relinquishes the address before the takeover); ``clean=False``
        models a crash — the old node simply stops responding, then the
        standby claims the address.
        """
        old_active, new_active = self.active, self.standby
        if clean:
            old_active.ip = None  # releases the VIP; stops answering for it
        else:
            old_active.nic.shut()  # crashed/unplugged
        new_active.ip = self.virtual_ip
        new_active.announce()
        self.active, self.standby = new_active, old_active
        self.failovers += 1
        return new_active

    def recover_standby(self) -> None:
        """Bring a crashed node back as (addressless) standby."""
        self.standby.nic.no_shut()
        self.standby.ip = None

    @property
    def serving_mac(self):
        """The MAC currently answering for the virtual IP."""
        return self.active.mac
