"""A learning Ethernet switch with CAM table, mirroring and ingress hooks.

The switch is deliberately faithful to the behaviours the attacks and
defenses exploit:

* source-MAC learning with aging and a bounded CAM (MAC flooding turns the
  switch into a hub once the table is full);
* unknown-unicast/broadcast flooding;
* a SPAN/mirror port, which is where monitor-based detectors (arpwatch,
  Snort, the hybrid) listen;
* ingress filter hooks, which is where switch-resident defenses (port
  security, DHCP snooping + Dynamic ARP Inspection) install themselves.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.errors import CodecError, TopologyError
from repro.hooks import HookPoint, Pipeline
from repro.l2.cam import CamTable, DEFAULT_AGING, DEFAULT_CAPACITY
from repro.l2.device import Device, Port
from repro.obs.trace import TRACER
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.perf import PERF
from repro.sim.simulator import Simulator
from repro.sim.trace import Direction, TraceRecorder

__all__ = ["Switch", "IngressFilter"]

#: An ingress filter sees ``(port, frame)`` and returns True to allow.
IngressFilter = Callable[[Port, EthernetFrame], bool]


class Switch(Device):
    """A store-and-forward learning switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_ports: int,
        cam_capacity: int = DEFAULT_CAPACITY,
        cam_aging: float = DEFAULT_AGING,
    ) -> None:
        super().__init__(sim, name)
        if num_ports < 2:
            raise TopologyError("a switch needs at least two ports")
        for _ in range(num_ports):
            self.add_port()
        self.cam = CamTable(capacity=cam_capacity, aging=cam_aging)
        self._cam_capacity = cam_capacity
        self._cam_aging = cam_aging
        #: Switch-resident defenses install here (repro.hooks pipeline:
        #: ordered, fault-isolated, removal-token based).
        self.hooks = Pipeline(node=name)
        self.ingress_filters: HookPoint = self.hooks.point(
            "switch.ingress", fallback_label="ingress-filter"
        )
        self._mirror_sources: Set[int] = set()
        self._mirror_target: Optional[int] = None
        self.recorder = TraceRecorder()
        self.flooded_frames = 0
        self.forwarded_frames = 0
        self.dropped_frames = 0
        self.undecodable_frames = 0
        self.vlan_violations = 0
        #: port index -> ("access", vid) | ("trunk", allowed-vids-or-None)
        self._vlan_config: dict[int, tuple] = {}
        self.vlan_aware = False
        self._vlan_cams: dict[int, CamTable] = {}
        #: SDN takeover (repro.sdn.SwitchAgent): when set, the agent gets
        #: first claim on every frame; None keeps the learning plane —
        #: and the hot path — untouched.
        self.sdn_agent = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_mirror(self, source_ports: List[int], target_port: int) -> None:
        """Mirror traffic entering ``source_ports`` to ``target_port``.

        Models the "port mirroring" / SPAN feature monitors rely on.
        """
        if target_port in source_ports:
            raise TopologyError("mirror target cannot be one of its sources")
        for idx in source_ports + [target_port]:
            if not 0 <= idx < len(self.ports):
                raise TopologyError(f"no such port index {idx}")
        self._mirror_sources = set(source_ports)
        self._mirror_target = target_port

    def mirror_all_to(self, target_port: int) -> None:
        """Mirror every non-target port to ``target_port``."""
        sources = [p.index for p in self.ports if p.index != target_port]
        self.set_mirror(sources, target_port)

    def set_access_port(self, index: int, vid: int) -> None:
        """Make ``index`` an untagged access port in VLAN ``vid``.

        Configuring any VLAN makes the switch VLAN-aware: every
        unconfigured port defaults to access VLAN 1.
        """
        self._check_port(index)
        if not 1 <= vid <= 4094:
            raise TopologyError(f"VLAN id out of range: {vid}")
        self._vlan_config[index] = ("access", vid)
        self.vlan_aware = True

    def set_trunk_port(self, index: int, allowed: Optional[Set[int]] = None) -> None:
        """Make ``index`` an 802.1Q trunk (``allowed=None`` carries all)."""
        self._check_port(index)
        self._vlan_config[index] = ("trunk", set(allowed) if allowed else None)
        self.vlan_aware = True

    def _check_port(self, index: int) -> None:
        if not 0 <= index < len(self.ports):
            raise TopologyError(f"no such port index {index}")

    def _port_role(self, index: int) -> tuple:
        return self._vlan_config.get(index, ("access", 1))

    def _port_carries(self, index: int, vid: int) -> bool:
        role, value = self._port_role(index)
        if role == "access":
            return value == vid
        return value is None or vid in value

    def _cam_for(self, vid: int) -> CamTable:
        cam = self._vlan_cams.get(vid)
        if cam is None:
            cam = CamTable(capacity=self._cam_capacity, aging=self._cam_aging)
            self._vlan_cams[vid] = cam
        return cam

    def add_ingress_filter(
        self,
        filt: IngressFilter,
        priority: int = 0,
        owner: Optional[str] = None,
    ) -> Callable[[], None]:
        """Install an ingress filter; returns a one-shot uninstaller."""
        return self.ingress_filters.add(filt, priority=priority, owner=owner)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def on_frame(self, port: Port, data: bytes) -> None:
        if TRACER.enabled:
            # Resolve the buffer to its frame id (free: buffers flow
            # through transmit/carry/deliver unchanged) and keep it in
            # scope so filters and alerts can attribute their decisions.
            tracer = TRACER
            fid = tracer.provenance.lookup(data)
            previous = tracer.current_frame
            tracer.current_frame = fid
            try:
                with tracer.span(
                    "switch.forward", node=self.name, port=port.name, frame=fid
                ):
                    self._data_plane(port, data)
            finally:
                tracer.current_frame = previous
        else:
            self._data_plane(port, data)

    def _data_plane(self, port: Port, data: bytes) -> None:
        self.recorder.record(self.sim.now, port.name, Direction.RX, data)
        try:
            # Lazy view: forwarding decisions need only the 14-byte header;
            # the payload is materialized only if a filter/monitor reads it.
            frame = EthernetFrame.lazy(data)
        except CodecError:
            self.undecodable_frames += 1
            return

        agent = self.sdn_agent
        if agent is not None and agent.on_switch_frame(port, frame, data):
            return

        if self.vlan_aware:
            self._vlan_on_frame(port, frame, data)
            return

        if self.ingress_filters.hooks:
            if not self._run_ingress_filters(port, frame):
                self.dropped_frames += 1
                self._mirror(port, data)  # monitors still see dropped frames
                return

        self.cam.learn(frame.src, port.index, self.sim.now)
        self._mirror(port, data)

        if frame.dst.is_multicast:  # includes broadcast
            self._flood(port, data)
            return
        out_index = self.cam.lookup(frame.dst, self.sim.now)
        if out_index is None:
            # Unknown unicast: flood.  This is the fail-open behaviour MAC
            # flooding forces permanently by filling the CAM.
            self._flood(port, data)
            return
        if out_index == port.index:
            return  # hairpin; already on the right segment
        self.forwarded_frames += 1
        self._send(out_index, data)

    def on_frame_batch(self, port: Port, datas: Sequence[bytes]) -> None:
        """Batched receive: vectorize the plain learning data plane.

        Traced, SDN-managed and VLAN-aware planes unroll to the per-frame
        path (their semantics involve per-frame spans, controller state or
        per-VID tables); the plain plane — the hot path every benchmark
        and large-scale scenario exercises — runs the batch fast path.
        """
        if (
            TRACER.enabled
            or self.sdn_agent is not None
            or self.vlan_aware
            or self.ingress_filters.hooks  # one truthiness check per batch
        ):
            # Per-frame fallback: spans, controller state, per-VID tables
            # and ingress filters all observe switch state *between*
            # frames, so their view must not change when frames arrive
            # batched.
            on_frame = self.on_frame
            for data in datas:
                on_frame(port, data)
            return
        self._data_plane_batch(port, datas)

    def _data_plane_batch(self, port: Port, datas: Sequence[bytes]) -> None:
        """One pass over a frame batch: capture, learn, resolve, egress.

        Per-frame work is reduced to raw byte slicing: destination and
        source MACs are read straight from the wire bytes and resolved
        through the CAM's bytes-keyed index, no ``FrameView`` is built,
        and CAM aging runs exactly once for the whole batch
        (watermark-bounded) instead of once per frame.  Learning and
        resolution stay interleaved in wire order — a frame whose source
        completes a later frame's destination behaves identically on the
        batched and per-frame planes.  Egress is grouped per output port
        and handed to each link as one batch, in wire order.
        """
        now = self.sim.now
        record = self.recorder.record
        port_name = port.name
        for data in datas:
            record(now, port_name, Direction.RX, data)

        cam = self.cam
        cam.expire(now)  # the batch's one aging sweep
        learn = cam.learn_wire
        # After the sweep nothing in the table is stale for `now`, so
        # destination probes are bare bytes-dict gets (the inlined form
        # of CamTable.lookup_batch, skipping its second expire call).
        lookup = cam._by_wire.get
        mirror = (
            self._mirror_target is not None
            and port.index in self._mirror_sources
        )
        out_lists: Dict[int, List[bytes]] = {}
        ingress_index = port.index
        mirror_target = self._mirror_target
        ports = self.ports
        n_ports = len(ports)
        flood_count = 0
        forwarded = 0
        undecodable = 0
        for data in datas:
            if len(data) < 14:
                undecodable += 1
                continue
            learn(data[6:12], ingress_index, now)
            if data[0] & 1:  # multicast/broadcast destination: flood
                entry = None
            else:
                entry = lookup(data[:6])
            if mirror:
                group = out_lists.get(mirror_target)
                if group is None:
                    out_lists[mirror_target] = [data]
                else:
                    group.append(data)
            if entry is None:
                # Unknown unicast or multicast: flood out every port but
                # the ingress and the mirror target (which got its copy
                # above).  This is the fail-open behaviour MAC flooding
                # forces permanently by filling the CAM.
                flood_count += 1
                for index in range(n_ports):
                    if index == ingress_index or index == mirror_target:
                        continue
                    group = out_lists.get(index)
                    if group is None:
                        out_lists[index] = [data]
                    else:
                        group.append(data)
                continue
            out_index = entry.port_index
            if out_index == ingress_index:
                continue  # hairpin; already on the right segment
            forwarded += 1
            group = out_lists.get(out_index)
            if group is None:
                out_lists[out_index] = [data]
            else:
                group.append(data)
        self.undecodable_frames += undecodable
        self.forwarded_frames += forwarded
        if flood_count:
            self.flooded_frames += flood_count
            egress = n_ports - 1 - (
                1 if mirror_target is not None and mirror_target != ingress_index
                else 0
            )
            PERF.flood_buffer_reuses += flood_count * egress
        for index, group in out_lists.items():
            ports[index].transmit_batch(group)

    def _run_ingress_filters(self, port: Port, frame: EthernetFrame) -> bool:
        """Run every ingress filter through the hook pipeline; False = drop.

        One code path for traced and untraced runs: the hook point emits
        a ``scheme.inspect`` span per filter when tracing is on, isolates
        filter crashes (fail-open/closed per its policy), and attributes
        drops to the vetoing scheme.
        """
        allowed, scheme = self.ingress_filters.allow(port, frame)
        if not allowed and TRACER.enabled:
            TRACER.instant(
                "switch.drop",
                node=self.name,
                port=port.name,
                scheme=scheme,
                frame=TRACER.current_frame,
            )
        return allowed

    def _vlan_on_frame(self, port: Port, frame: EthernetFrame, data: bytes) -> None:
        """The VLAN-aware data plane: classify, learn and forward per VID."""
        from repro.packets.vlan import tag_frame, untag_frame

        role, value = self._port_role(port.index)
        if frame.ethertype == EtherType.VLAN:
            if role == "access":
                # Hosts on access ports must not inject tags (VLAN-hopping
                # attempts land here).
                self.vlan_violations += 1
                return
            try:
                tag, inner = untag_frame(frame)
            except CodecError:
                self.undecodable_frames += 1
                return
            vid = tag.vid
            if not self._port_carries(port.index, vid):
                self.vlan_violations += 1
                return
        else:
            inner = frame
            vid = value if role == "access" else 1  # trunk native VLAN
            if role == "trunk" and not self._port_carries(port.index, vid):
                self.vlan_violations += 1  # native VLAN pruned off this trunk
                return

        if self.ingress_filters.hooks:
            if not self._run_ingress_filters(port, inner):
                self.dropped_frames += 1
                self._mirror(port, data)
                return

        cam = self._cam_for(vid)
        cam.learn(inner.src, port.index, self.sim.now)
        self._mirror(port, data)

        if inner.dst.is_multicast:
            self._vlan_flood(port, inner, vid, tag_frame)
            return
        out_index = cam.lookup(inner.dst, self.sim.now)
        if out_index is None:
            self._vlan_flood(port, inner, vid, tag_frame)
            return
        if out_index == port.index:
            return
        self.forwarded_frames += 1
        self._vlan_egress(out_index, inner, vid, tag_frame)

    def _vlan_flood(self, ingress: Port, inner: EthernetFrame, vid: int, tag_frame) -> None:
        """Flood within a VLAN, serializing each egress form exactly once.

        A flood to N trunk ports used to re-tag and re-encode the frame N
        times; both the tagged and the untagged wire forms are now built
        on first use and the same buffer is transmitted on every
        remaining port.
        """
        self.flooded_frames += 1
        tagged: Optional[bytes] = None
        untagged: Optional[bytes] = None
        for port in self.ports:
            if port.index == ingress.index or port.index == self._mirror_target:
                continue
            if not self._port_carries(port.index, vid):
                continue
            role, _ = self._port_role(port.index)
            if role == "trunk" and vid != 1:  # native VLAN leaves untagged
                if tagged is None:
                    tagged = tag_frame(inner, vid).encode()
                    self._derive_buffer(tagged)
                else:
                    PERF.flood_buffer_reuses += 1
                port.transmit(tagged)
            else:
                if untagged is None:
                    untagged = inner.encode()
                    self._derive_buffer(untagged)
                else:
                    PERF.flood_buffer_reuses += 1
                port.transmit(untagged)

    def _vlan_egress(self, port_index: int, inner: EthernetFrame, vid: int, tag_frame) -> None:
        role, _ = self._port_role(port_index)
        if role == "trunk" and vid != 1:  # native VLAN leaves untagged
            out = tag_frame(inner, vid).encode()
        else:
            out = inner.encode()
        self._derive_buffer(out)
        self.ports[port_index].transmit(out)

    def _derive_buffer(self, data: bytes) -> None:
        """Provenance: a re-encoded (re-tagged) egress buffer keeps its
        causal link to the frame currently being forwarded."""
        if TRACER.enabled and TRACER.current_frame is not None:
            if TRACER.provenance.lookup(data) == TRACER.current_frame:
                return  # memoized encode handed back the ingress buffer
            TRACER.provenance.derive(
                data, TRACER.current_frame, f"switch:{self.name}", self.sim.now
            )

    def _flood(self, ingress: Port, data: bytes) -> None:
        self.flooded_frames += 1
        egress = 0
        for port in self.ports:
            if port.index == ingress.index:
                continue
            if port.index == self._mirror_target:
                continue  # mirror port gets its copy via _mirror()
            egress += 1
            port.transmit(data)
        PERF.flood_buffer_reuses += egress  # ingress buffer, never re-encoded

    def _send(self, port_index: int, data: bytes) -> None:
        self.ports[port_index].transmit(data)

    def _mirror(self, ingress: Port, data: bytes) -> None:
        if self._mirror_target is None:
            return
        if ingress.index in self._mirror_sources:
            self.ports[self._mirror_target].transmit(data)

    def link_down(self, port_index: int) -> int:
        """React to a link-down on ``port_index`` (cable pull, flap).

        Real switches forget dynamically learned stations the moment the
        link drops; without this, a flapped host would stay reachable in
        the CAM and mask the outage.  Returns the number of CAM entries
        (across the plain table and every VLAN table) that were flushed.
        """
        flushed = self.cam.flush_port(port_index)
        for cam in self._vlan_cams.values():
            flushed += cam.flush_port(port_index)
        if self.sdn_agent is not None:
            # Losing the control port is how the agent learns its
            # controller is gone and falls back to learning mode.
            self.sdn_agent.on_link_down(port_index)
        return flushed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stations_on_port(self, port_index: int) -> int:
        return len(self.cam.entries_on_port(port_index))

    def is_fail_open(self) -> bool:
        """True once the CAM is full (new stations get flooded)."""
        self.cam.expire(self.sim.now)
        return self.cam.is_full
