"""Layer-2 devices: ports, links, hub, learning switch, topology builder."""

from repro.l2.cam import CamEntry, CamTable
from repro.l2.device import Device, Link, Port
from repro.l2.hub import Hub
from repro.l2.switch import IngressFilter, Switch

__all__ = [
    "CamEntry",
    "CamTable",
    "Device",
    "Link",
    "Port",
    "Hub",
    "Switch",
    "IngressFilter",
]
