"""Devices, ports and links — the physical layer of the simulated LAN.

A :class:`Device` owns :class:`Port` objects; a :class:`Link` joins exactly
two ports and carries raw frame bytes between them with a configurable
propagation latency and serialization rate.  Every link can host a
:class:`~repro.sim.trace.TraceRecorder`, which is how sniffers and the
evaluation's overhead accounting observe traffic.

The wire is also where the batched data plane engages: when the owning
simulator has ``batching`` on (and tracing is off — traced runs keep
exact per-frame dispatch so span/provenance semantics never fork),
:meth:`Link.carry` coalesces same-instant deliveries to one receiver
into a single ``deliver_batch`` flush instead of one event per frame,
and :meth:`Port.transmit_batch` lets a flooding switch hand a whole
frame batch to each egress link in one call.  Fault-injection hooks on
:attr:`Link.faults` still transform every frame individually (same hook
order, same RNG draw order), so ``repro.faults`` semantics are identical
on both paths.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Sequence

from repro.errors import PortError, TopologyError
from repro.hooks import HookPoint
from repro.obs.trace import TRACER
from repro.sim.simulator import Simulator
from repro.sim.trace import Direction, TraceRecorder

__all__ = ["Device", "Port", "Link"]

#: Default one-way propagation latency for a LAN segment, seconds.
DEFAULT_LATENCY = 50e-6
#: Default link rate, bits per second (100 Mb/s FastEthernet).
DEFAULT_RATE_BPS = 100e6


class Port:
    """One attachment point on a device."""

    def __init__(self, device: "Device", index: int, name: str = "") -> None:
        self.device = device
        self.index = index
        self.name = name or f"{device.name}.eth{index}"
        self.link: Optional["Link"] = None
        self.peer: Optional["Port"] = None  # opposite end, set by Link
        self.up = True
        self.tx_frames = 0
        self.rx_frames = 0
        self.tx_bytes = 0
        self.rx_bytes = 0

    @property
    def attached(self) -> bool:
        return self.link is not None

    def transmit(self, data: bytes) -> None:
        """Send raw frame bytes out this port (no-op when down/unattached)."""
        link = self.link
        if link is None or not self.up:
            return
        self.tx_frames += 1
        self.tx_bytes += len(data)
        link.carry(self, data)

    def transmit_batch(self, datas: Sequence[bytes]) -> None:
        """Send many frames out this port in one call (flood egress)."""
        link = self.link
        if link is None or not self.up or not datas:
            return
        self.tx_frames += len(datas)
        self.tx_bytes += sum(map(len, datas))
        link.carry_batch(self, datas)

    def deliver(self, data: bytes) -> None:
        """Called by the link when a frame arrives at this port."""
        if not self.up:
            return
        self.rx_frames += 1
        self.rx_bytes += len(data)
        self.device.on_frame(self, data)

    def deliver_batch(self, datas: Sequence[bytes]) -> None:
        """Coalesced-delivery sink: a batch of frames arriving together.

        The whole batch shares one administrative state: a port that went
        down before the flush drops every frame in it, exactly as it
        would have dropped each frame arriving individually.
        """
        if not self.up:
            return
        self.rx_frames += len(datas)
        self.rx_bytes += sum(map(len, datas))
        self.device.on_frame_batch(self, datas)

    def shut(self) -> None:
        """Administratively disable the port (what port security does)."""
        self.up = False

    def no_shut(self) -> None:
        self.up = True

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"Port({self.name}, {state})"


class Link:
    """A full-duplex point-to-point segment between two ports."""

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        latency: float = DEFAULT_LATENCY,
        rate_bps: float = DEFAULT_RATE_BPS,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        if a is b:
            raise TopologyError("cannot link a port to itself")
        for port in (a, b):
            if port.attached:
                raise PortError(f"{port.name} is already attached")
        if latency < 0:
            raise TopologyError(f"negative latency: {latency}")
        if rate_bps <= 0:
            raise TopologyError(f"non-positive rate: {rate_bps}")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.rate_bps = rate_bps
        self.recorder = recorder
        self._seconds_per_byte = 8.0 / rate_bps
        a.link = self
        b.link = self
        a.peer = b
        b.peer = a
        self.frames_carried = 0
        self.bytes_carried = 0
        #: Fault-injection surface (``repro.faults``): transform hooks
        #: rewrite the delivery plan ``((extra_delay, payload), ...)``.
        self.faults: HookPoint = HookPoint(
            "link.faults", node=f"{a.name}|{b.name}", fallback_label="faults"
        )

    def other_end(self, port: Port) -> Port:
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise PortError(f"{port.name} is not an endpoint of this link")

    def carry(self, sender: Port, data: bytes) -> None:
        """Propagate ``data`` from ``sender`` to the opposite port."""
        receiver = sender.peer
        if receiver is None:
            receiver = self.other_end(sender)  # defensive; peers are set on link-up
        self.frames_carried += 1
        self.bytes_carried += len(data)
        sim = self.sim
        if self.recorder is not None:
            self.recorder.record(sim.now, sender.name, Direction.TX, data)
        batching = sim.batching and not TRACER.enabled
        if self.faults.hooks:
            # Impairment hooks rewrite the delivery plan: each entry is
            # (extra_delay, payload); an empty plan means the frame is lost.
            plan = self.faults.transform(((0.0, data),), self, sender)
            for extra, payload in plan:
                delay = (
                    self.latency + len(payload) * self._seconds_per_byte + extra
                )
                if batching:
                    sim.coalesce(delay, receiver, payload)
                else:
                    sim.schedule(
                        delay, partial(receiver.deliver, payload), name="link.carry"
                    )
            return
        delay = self.latency + len(data) * self._seconds_per_byte
        if batching:
            # Same-instant deliveries to this receiver share one flush
            # event; the delay expression is byte-for-byte the one the
            # per-event path uses, so timestamps never diverge.
            sim.coalesce(delay, receiver, data)
            return
        # partial() instead of a lambda: the callback fires in C without an
        # intermediate Python frame, and this is one event per frame hop.
        sim.schedule(delay, partial(receiver.deliver, data), name="link.carry")

    def carry_batch(self, sender: Port, datas: Sequence[bytes]) -> None:
        """Propagate a whole frame batch from ``sender`` in one call.

        Used by the switch's batched flood/forward egress: counters and
        capture are updated per frame (a sniffer on the link sees exactly
        the per-frame trace), faults transform each frame in batch order
        with unchanged RNG draw order, and delivery coalesces frames by
        computed arrival time — frames of equal length land in one batch.
        """
        receiver = sender.peer
        if receiver is None:
            receiver = self.other_end(sender)
        sim = self.sim
        self.frames_carried += len(datas)
        self.bytes_carried += sum(map(len, datas))
        if self.recorder is not None:
            record = self.recorder.record
            now = sim.now
            name = sender.name
            for data in datas:
                record(now, name, Direction.TX, data)
        latency = self.latency
        spb = self._seconds_per_byte
        batching = sim.batching and not TRACER.enabled
        if self.faults.hooks:
            # Per-frame transform inside the batch: each frame gets its own
            # delivery plan, drawn in batch (== wire) order.
            plans = self.faults.transform_batch(
                [((0.0, data),) for data in datas], self, sender
            )
            for plan in plans:
                for extra, payload in plan:
                    delay = latency + len(payload) * spb + extra
                    if batching:
                        sim.coalesce(delay, receiver, payload)
                    else:
                        sim.schedule(
                            delay,
                            partial(receiver.deliver, payload),
                            name="link.carry",
                        )
            return
        if not batching:
            schedule = sim.schedule
            for data in datas:
                schedule(
                    latency + len(data) * spb,
                    partial(receiver.deliver, data),
                    name="link.carry",
                )
            return
        # Group by frame length (== by arrival time): the common flood
        # batch is uniform, so this is one accumulator probe for the lot.
        by_len: dict = {}
        for data in datas:
            group = by_len.get(len(data))
            if group is None:
                by_len[len(data)] = [data]
            else:
                group.append(data)
        coalesce_many = sim.coalesce_many
        for length, group in by_len.items():
            coalesce_many(latency + length * spb, receiver, group)

    def disconnect(self) -> None:
        """Tear the link down (cable pull)."""
        self.a.link = None
        self.b.link = None
        self.a.peer = None
        self.b.peer = None

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name})"


class Device:
    """Base class for anything with ports (hosts, switches, hubs)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []

    def add_port(self, name: str = "") -> Port:
        port = Port(self, index=len(self.ports), name=name)
        self.ports.append(port)
        return port

    def on_frame(self, port: Port, data: bytes) -> None:
        """Handle a frame arriving on ``port``.  Subclasses override."""
        raise NotImplementedError

    def on_frame_batch(self, port: Port, datas: Sequence[bytes]) -> None:
        """Handle a coalesced batch of frames arriving on ``port``.

        The default simply unrolls to :meth:`on_frame` in batch (== wire)
        order, so devices without a vectorized receive path behave exactly
        as if each frame had arrived on its own event.  The switch and
        host override this with batch-aware fast paths.
        """
        on_frame = self.on_frame
        for data in datas:
            on_frame(port, data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, ports={len(self.ports)})"
