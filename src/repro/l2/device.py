"""Devices, ports and links — the physical layer of the simulated LAN.

A :class:`Device` owns :class:`Port` objects; a :class:`Link` joins exactly
two ports and carries raw frame bytes between them with a configurable
propagation latency and serialization rate.  Every link can host a
:class:`~repro.sim.trace.TraceRecorder`, which is how sniffers and the
evaluation's overhead accounting observe traffic.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional

from repro.errors import PortError, TopologyError
from repro.hooks import HookPoint
from repro.sim.simulator import Simulator
from repro.sim.trace import Direction, TraceRecorder

__all__ = ["Device", "Port", "Link"]

#: Default one-way propagation latency for a LAN segment, seconds.
DEFAULT_LATENCY = 50e-6
#: Default link rate, bits per second (100 Mb/s FastEthernet).
DEFAULT_RATE_BPS = 100e6


class Port:
    """One attachment point on a device."""

    def __init__(self, device: "Device", index: int, name: str = "") -> None:
        self.device = device
        self.index = index
        self.name = name or f"{device.name}.eth{index}"
        self.link: Optional["Link"] = None
        self.peer: Optional["Port"] = None  # opposite end, set by Link
        self.up = True
        self.tx_frames = 0
        self.rx_frames = 0
        self.tx_bytes = 0
        self.rx_bytes = 0

    @property
    def attached(self) -> bool:
        return self.link is not None

    def transmit(self, data: bytes) -> None:
        """Send raw frame bytes out this port (no-op when down/unattached)."""
        link = self.link
        if link is None or not self.up:
            return
        self.tx_frames += 1
        self.tx_bytes += len(data)
        link.carry(self, data)

    def deliver(self, data: bytes) -> None:
        """Called by the link when a frame arrives at this port."""
        if not self.up:
            return
        self.rx_frames += 1
        self.rx_bytes += len(data)
        self.device.on_frame(self, data)

    def shut(self) -> None:
        """Administratively disable the port (what port security does)."""
        self.up = False

    def no_shut(self) -> None:
        self.up = True

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"Port({self.name}, {state})"


class Link:
    """A full-duplex point-to-point segment between two ports."""

    def __init__(
        self,
        sim: Simulator,
        a: Port,
        b: Port,
        latency: float = DEFAULT_LATENCY,
        rate_bps: float = DEFAULT_RATE_BPS,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        if a is b:
            raise TopologyError("cannot link a port to itself")
        for port in (a, b):
            if port.attached:
                raise PortError(f"{port.name} is already attached")
        if latency < 0:
            raise TopologyError(f"negative latency: {latency}")
        if rate_bps <= 0:
            raise TopologyError(f"non-positive rate: {rate_bps}")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.rate_bps = rate_bps
        self.recorder = recorder
        self._seconds_per_byte = 8.0 / rate_bps
        a.link = self
        b.link = self
        a.peer = b
        b.peer = a
        self.frames_carried = 0
        self.bytes_carried = 0
        #: Fault-injection surface (``repro.faults``): transform hooks
        #: rewrite the delivery plan ``((extra_delay, payload), ...)``.
        self.faults: HookPoint = HookPoint(
            "link.faults", node=f"{a.name}|{b.name}", fallback_label="faults"
        )

    def other_end(self, port: Port) -> Port:
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise PortError(f"{port.name} is not an endpoint of this link")

    def carry(self, sender: Port, data: bytes) -> None:
        """Propagate ``data`` from ``sender`` to the opposite port."""
        receiver = sender.peer
        if receiver is None:
            receiver = self.other_end(sender)  # defensive; peers are set on link-up
        self.frames_carried += 1
        self.bytes_carried += len(data)
        if self.recorder is not None:
            self.recorder.record(
                self.sim.now, sender.name, Direction.TX, data
            )
        if self.faults.hooks:
            # Impairment hooks rewrite the delivery plan: each entry is
            # (extra_delay, payload); an empty plan means the frame is lost.
            plan = self.faults.transform(((0.0, data),), self, sender)
            for extra, payload in plan:
                self.sim.schedule(
                    self.latency + len(payload) * self._seconds_per_byte + extra,
                    partial(receiver.deliver, payload),
                    name="link.carry",
                )
            return
        delay = self.latency + len(data) * self._seconds_per_byte
        # partial() instead of a lambda: the callback fires in C without an
        # intermediate Python frame, and this is one event per frame hop.
        self.sim.schedule(delay, partial(receiver.deliver, data), name="link.carry")

    def disconnect(self) -> None:
        """Tear the link down (cable pull)."""
        self.a.link = None
        self.b.link = None
        self.a.peer = None
        self.b.peer = None

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name})"


class Device:
    """Base class for anything with ports (hosts, switches, hubs)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []

    def add_port(self, name: str = "") -> Port:
        port = Port(self, index=len(self.ports), name=name)
        self.ports.append(port)
        return port

    def on_frame(self, port: Port, data: bytes) -> None:
        """Handle a frame arriving on ``port``.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, ports={len(self.ports)})"
