"""The switch's CAM (content-addressable memory) table.

Capacity and aging are first-class because MAC flooding exploits exactly
these: once the table is full a real switch can no longer learn new
stations and floods their traffic ("fail-open"), which is what turns a
switch back into a hub for an eavesdropper.

Aging is amortized: a *next-expiry watermark* (the earliest instant any
entry can age out) lets :meth:`CamTable.expire` return without walking
the table at all while ``now`` is below it.  The batched data plane
leans on this — one watermark check per frame batch instead of one full
sweep per frame — and the sweep/skip counts surface in
:data:`repro.perf.PERF` (``cam_sweeps`` / ``cam_sweep_skips``) so the
one-sweep-per-batch claim is measurable, not aspirational.

Entries are indexed twice: by :class:`~repro.net.addresses.MacAddress`
(the classic API) and by the packed 6-byte wire form, so the switch's
batch path can resolve destination MACs straight from frame buffers
(:meth:`lookup_wire`, :meth:`lookup_batch`) without constructing an
address object per frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.net.addresses import MacAddress
from repro.perf import PERF

__all__ = ["CamEntry", "CamTable"]

#: Default CAM aging time, seconds (Cisco default is 300 s; MikroTik ~300 s).
DEFAULT_AGING = 300.0
#: Default capacity; the MikroTik hAP lite referenced in the field holds 1024.
DEFAULT_CAPACITY = 1024

_INF = float("inf")


@dataclass
class CamEntry:
    """One learned station."""

    mac: MacAddress
    port_index: int
    learned_at: float
    expires_at: float
    static: bool = False


class CamTable:
    """MAC -> port map with aging and a hard capacity.

    All time handling is explicit (callers pass ``now``) so the table stays
    a pure data structure, trivially testable.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        aging: float = DEFAULT_AGING,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if aging <= 0:
            raise ValueError(f"aging must be positive, got {aging}")
        self.capacity = capacity
        self.aging = aging
        self._entries: Dict[MacAddress, CamEntry] = {}
        #: Mirror index keyed by the packed wire bytes — kept in lockstep
        #: with ``_entries`` so batch lookups skip MacAddress construction.
        self._by_wire: Dict[bytes, CamEntry] = {}
        #: Earliest instant any dynamic entry can expire.  Conservative:
        #: refreshes raise an entry's expiry without raising the watermark,
        #: so a sweep may find nothing — but no entry ever outlives the
        #: watermark unswept, which is what lets lookups skip age checks
        #: right after a bounded :meth:`expire`.
        self._next_expiry: float = _INF
        self.learn_failures = 0
        self.moves = 0
        self.sweeps = 0
        self.sweeps_skipped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, mac: MacAddress) -> bool:
        return mac in self._entries

    def __iter__(self) -> Iterator[CamEntry]:
        return iter(self._entries.values())

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def expire(self, now: float) -> int:
        """Drop aged-out entries; returns how many were removed.

        Amortized via the next-expiry watermark: while ``now`` is below
        the earliest possible expiry the call is O(1) — no sweep, nothing
        to drop.  Only when the watermark is crossed does the full walk
        run (and recompute the watermark from the survivors).
        """
        if now < self._next_expiry:
            self.sweeps_skipped += 1
            PERF.cam_sweep_skips += 1
            return 0
        self.sweeps += 1
        PERF.cam_sweeps += 1
        entries = self._entries
        dead = [
            mac
            for mac, entry in entries.items()
            if not entry.static and entry.expires_at <= now
        ]
        by_wire = self._by_wire
        for mac in dead:
            del by_wire[entries.pop(mac).mac.packed]
        self._next_expiry = min(
            (e.expires_at for e in entries.values() if not e.static),
            default=_INF,
        )
        return len(dead)

    def learn(self, mac: MacAddress, port_index: int, now: float) -> bool:
        """Learn (or refresh) ``mac`` on ``port_index``.

        Returns ``False`` when the table is full and the MAC is new — the
        fail-open condition MAC flooding aims for.  Multicast/broadcast
        source addresses are never learned (they are invalid sources).
        """
        if mac.is_multicast:
            return False
        self.expire(now)
        entry = self._entries.get(mac)
        if entry is not None:
            if entry.static:
                return True
            if entry.port_index != port_index:
                self.moves += 1
                entry.port_index = port_index
            entry.expires_at = now + self.aging
            return True
        if self.is_full:
            self.learn_failures += 1
            return False
        entry = CamEntry(
            mac=mac,
            port_index=port_index,
            learned_at=now,
            expires_at=now + self.aging,
        )
        self._entries[mac] = entry
        self._by_wire[mac.packed] = entry
        if entry.expires_at < self._next_expiry:
            self._next_expiry = entry.expires_at
        return True

    def learn_wire(self, packed: bytes, port_index: int, now: float) -> bool:
        """:meth:`learn` from packed wire bytes, for a *pre-expired* table.

        The batch data plane calls :meth:`expire` once per batch, then
        learns every frame's source through this O(1) path: one bytes-dict
        probe, no per-frame sweep, and a MacAddress is constructed only
        when the station is genuinely new.
        """
        entry = self._by_wire.get(packed)
        if entry is not None:
            if entry.static:
                return True
            if entry.port_index != port_index:
                self.moves += 1
                entry.port_index = port_index
            entry.expires_at = now + self.aging
            return True
        if packed[0] & 1:  # multicast/broadcast source: invalid, never learned
            return False
        if self.is_full:
            self.learn_failures += 1
            return False
        mac = MacAddress.from_wire(packed)
        entry = CamEntry(
            mac=mac,
            port_index=port_index,
            learned_at=now,
            expires_at=now + self.aging,
        )
        self._entries[mac] = entry
        self._by_wire[mac.packed] = entry
        if entry.expires_at < self._next_expiry:
            self._next_expiry = entry.expires_at
        return True

    def add_static(self, mac: MacAddress, port_index: int, now: float) -> None:
        """Pin a station to a port (never ages, never moves)."""
        entry = CamEntry(
            mac=mac,
            port_index=port_index,
            learned_at=now,
            expires_at=_INF,
            static=True,
        )
        self._entries[mac] = entry
        self._by_wire[mac.packed] = entry

    def lookup(self, mac: MacAddress, now: float) -> Optional[int]:
        """Port index for ``mac``, or ``None`` (flood)."""
        entry = self._entries.get(mac)
        if entry is None:
            return None
        if not entry.static and entry.expires_at <= now:
            del self._entries[mac]
            del self._by_wire[entry.mac.packed]
            return None
        return entry.port_index

    def lookup_wire(self, packed: bytes, now: float) -> Optional[int]:
        """:meth:`lookup` keyed by packed wire bytes."""
        entry = self._by_wire.get(packed)
        if entry is None:
            return None
        if not entry.static and entry.expires_at <= now:
            del self._entries[entry.mac]
            del self._by_wire[packed]
            return None
        return entry.port_index

    def lookup_batch(
        self, packed_macs: Sequence[bytes], now: float
    ) -> List[Optional[int]]:
        """Resolve a batch of packed destination MACs in one pass.

        Runs exactly one (watermark-bounded) :meth:`expire` sweep up
        front, after which every probe is a bare bytes-dict ``get`` —
        no per-frame age check is needed because nothing in the table
        can be stale once the sweep has run for ``now``.
        """
        self.expire(now)
        get = self._by_wire.get
        out: List[Optional[int]] = []
        append = out.append
        for packed in packed_macs:
            entry = get(packed)
            append(entry.port_index if entry is not None else None)
        return out

    def entries_on_port(self, port_index: int) -> list[CamEntry]:
        return [e for e in self._entries.values() if e.port_index == port_index]

    def flush(self) -> None:
        self._entries.clear()
        self._by_wire.clear()
        self._next_expiry = _INF

    def flush_port(self, port_index: int) -> int:
        """Forget every dynamic station on ``port_index`` (link-down).

        Static entries survive — port security re-validates them itself.
        Returns how many entries were dropped.
        """
        dead = [
            mac
            for mac, entry in self._entries.items()
            if entry.port_index == port_index and not entry.static
        ]
        for mac in dead:
            del self._by_wire[self._entries.pop(mac).mac.packed]
        return len(dead)

    def utilization(self) -> float:
        """Fill fraction in [0, 1] — MAC-flood detectors watch this."""
        return len(self._entries) / self.capacity
