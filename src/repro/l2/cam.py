"""The switch's CAM (content-addressable memory) table.

Capacity and aging are first-class because MAC flooding exploits exactly
these: once the table is full a real switch can no longer learn new
stations and floods their traffic ("fail-open"), which is what turns a
switch back into a hub for an eavesdropper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.net.addresses import MacAddress

__all__ = ["CamEntry", "CamTable"]

#: Default CAM aging time, seconds (Cisco default is 300 s; MikroTik ~300 s).
DEFAULT_AGING = 300.0
#: Default capacity; the MikroTik hAP lite referenced in the field holds 1024.
DEFAULT_CAPACITY = 1024


@dataclass
class CamEntry:
    """One learned station."""

    mac: MacAddress
    port_index: int
    learned_at: float
    expires_at: float
    static: bool = False


class CamTable:
    """MAC -> port map with aging and a hard capacity.

    All time handling is explicit (callers pass ``now``) so the table stays
    a pure data structure, trivially testable.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        aging: float = DEFAULT_AGING,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if aging <= 0:
            raise ValueError(f"aging must be positive, got {aging}")
        self.capacity = capacity
        self.aging = aging
        self._entries: Dict[MacAddress, CamEntry] = {}
        self.learn_failures = 0
        self.moves = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, mac: MacAddress) -> bool:
        return mac in self._entries

    def __iter__(self) -> Iterator[CamEntry]:
        return iter(self._entries.values())

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def expire(self, now: float) -> int:
        """Drop aged-out entries; returns how many were removed."""
        dead = [
            mac
            for mac, entry in self._entries.items()
            if not entry.static and entry.expires_at <= now
        ]
        for mac in dead:
            del self._entries[mac]
        return len(dead)

    def learn(self, mac: MacAddress, port_index: int, now: float) -> bool:
        """Learn (or refresh) ``mac`` on ``port_index``.

        Returns ``False`` when the table is full and the MAC is new — the
        fail-open condition MAC flooding aims for.  Multicast/broadcast
        source addresses are never learned (they are invalid sources).
        """
        if mac.is_multicast:
            return False
        self.expire(now)
        entry = self._entries.get(mac)
        if entry is not None:
            if entry.static:
                return True
            if entry.port_index != port_index:
                self.moves += 1
                entry.port_index = port_index
            entry.expires_at = now + self.aging
            return True
        if self.is_full:
            self.learn_failures += 1
            return False
        self._entries[mac] = CamEntry(
            mac=mac,
            port_index=port_index,
            learned_at=now,
            expires_at=now + self.aging,
        )
        return True

    def add_static(self, mac: MacAddress, port_index: int, now: float) -> None:
        """Pin a station to a port (never ages, never moves)."""
        self._entries[mac] = CamEntry(
            mac=mac,
            port_index=port_index,
            learned_at=now,
            expires_at=float("inf"),
            static=True,
        )

    def lookup(self, mac: MacAddress, now: float) -> Optional[int]:
        """Port index for ``mac``, or ``None`` (flood)."""
        entry = self._entries.get(mac)
        if entry is None:
            return None
        if not entry.static and entry.expires_at <= now:
            del self._entries[mac]
            return None
        return entry.port_index

    def entries_on_port(self, port_index: int) -> list[CamEntry]:
        return [e for e in self._entries.values() if e.port_index == port_index]

    def flush(self) -> None:
        self._entries.clear()

    def flush_port(self, port_index: int) -> int:
        """Forget every dynamic station on ``port_index`` (link-down).

        Static entries survive — port security re-validates them itself.
        Returns how many entries were dropped.
        """
        dead = [
            mac
            for mac, entry in self._entries.items()
            if entry.port_index == port_index and not entry.static
        ]
        for mac in dead:
            del self._entries[mac]
        return len(dead)

    def utilization(self) -> float:
        """Fill fraction in [0, 1] — MAC-flood detectors watch this."""
        return len(self._entries) / self.capacity
