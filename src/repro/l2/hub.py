"""A dumb repeater hub: every frame out every other port.

Hubs exist in the evaluation for two reasons: they are the "monitor sees
everything" baseline placement for detectors, and they are what a switch
effectively degrades into under MAC flooding.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.l2.device import Device, Port
from repro.sim.simulator import Simulator
from repro.sim.trace import Direction, TraceRecorder

__all__ = ["Hub"]


class Hub(Device):
    """A multiport repeater; no addressing, no learning."""

    def __init__(self, sim: Simulator, name: str, num_ports: int) -> None:
        super().__init__(sim, name)
        if num_ports < 2:
            raise TopologyError("a hub needs at least two ports")
        for _ in range(num_ports):
            self.add_port()
        self.recorder = TraceRecorder()
        self.repeated_frames = 0

    def on_frame(self, port: Port, data: bytes) -> None:
        self.recorder.record(self.sim.now, port.name, Direction.RX, data)
        self.repeated_frames += 1
        for other in self.ports:
            if other.index != port.index:
                other.transmit(data)
