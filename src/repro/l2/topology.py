"""LAN topology builder.

Assembles the experimental workplace every evaluation scenario uses: a
switch (with optional mirror port), a gateway router that can run DHCP,
some number of user hosts, optionally an attacker and a monitor station —
the same shape as the classic "home/office LAN plus IDS on a mirror port"
testbed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import TopologyError
from repro.l2.device import DEFAULT_LATENCY, DEFAULT_RATE_BPS, Link
from repro.l2.switch import Switch
from repro.net.addresses import Ipv4Address, Ipv4Network, MacAddress
from repro.net.oui import KNOWN_OUIS
from repro.sim.simulator import Simulator
from repro.stack.dhcp_server import DhcpServer
from repro.stack.host import Host
from repro.stack.os_profiles import LINUX, OsProfile
from repro.stack.router import Router

__all__ = ["Lan"]

_REALISTIC_OUIS = sorted(KNOWN_OUIS)


class Lan:
    """A single-switch LAN with a gateway, hosts and an optional monitor.

    Addressing convention: the gateway takes ``.1``; statically addressed
    hosts are handed ``.10`` upward; the DHCP pool (when enabled) sits in
    the upper half of the subnet.
    """

    def __init__(
        self,
        sim: Simulator,
        network: str | Ipv4Network = "192.168.88.0/24",
        switch_ports: int = 64,
        cam_capacity: int = 1024,
        cam_aging: float = 300.0,
        link_latency: float = DEFAULT_LATENCY,
        link_rate_bps: float = DEFAULT_RATE_BPS,
    ) -> None:
        self.sim = sim
        self.network = Ipv4Network(network)
        self.link_latency = link_latency
        self.link_rate_bps = link_rate_bps
        self.switch = Switch(
            sim,
            "switch1",
            num_ports=switch_ports,
            cam_capacity=cam_capacity,
            cam_aging=cam_aging,
        )
        #: All switches by name; ``switch1`` is the primary (uplink) one.
        self.switches: Dict[str, Switch] = {"switch1": self.switch}
        self._next_port: Dict[str, int] = {"switch1": 0}
        #: Primary-switch port indices that are inter-switch trunks —
        #: switch-resident schemes must treat these as trusted/multi-MAC.
        self.trunk_ports: set[int] = set()
        #: host name -> (switch name, port index on that switch).
        self.attachment_of: Dict[str, tuple[str, int]] = {}
        self._next_host_index = 10
        self._macs_used: set[MacAddress] = set()
        self._mac_rng = sim.rng_stream("lan/mac-alloc")
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self.gateway = self._make_gateway()
        self.dhcp_server: Optional[DhcpServer] = None
        self.monitor: Optional[Host] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _alloc_mac(self, realistic: bool = True) -> MacAddress:
        while True:
            oui = self._mac_rng.choice(_REALISTIC_OUIS) if realistic else None
            mac = MacAddress.random(self._mac_rng, oui=oui)
            if mac not in self._macs_used:
                self._macs_used.add(mac)
                return mac

    def _take_switch_port(self, switch_name: str = "switch1") -> int:
        switch = self.switches[switch_name]
        index = self._next_port[switch_name]
        if index >= len(switch.ports):
            raise TopologyError(f"{switch_name} is out of ports")
        self._next_port[switch_name] = index + 1
        return index

    def _wire(self, host: Host, switch_name: str = "switch1") -> int:
        port_index = self._take_switch_port(switch_name)
        link = Link(
            self.sim,
            host.nic,
            self.switches[switch_name].ports[port_index],
            latency=self.link_latency,
            rate_bps=self.link_rate_bps,
        )
        self.links.append(link)
        self.attachment_of[host.name] = (switch_name, port_index)
        return port_index

    def add_switch(
        self,
        name: str,
        num_ports: int = 16,
        cam_capacity: int = 1024,
        cam_aging: float = 300.0,
        uplink_to: str = "switch1",
    ) -> Switch:
        """Add a secondary switch trunked to ``uplink_to``.

        Models mixed environments (e.g. a cheap unmanaged switch hanging
        off the managed core) — the topology where switch-resident
        defenses famously go blind for intra-segment traffic.
        """
        if name in self.switches:
            raise TopologyError(f"duplicate switch name {name!r}")
        switch = Switch(
            self.sim,
            name,
            num_ports=num_ports,
            cam_capacity=cam_capacity,
            cam_aging=cam_aging,
        )
        self.switches[name] = switch
        self._next_port[name] = 0
        uplink = self.switches[uplink_to]
        up_index = self._take_switch_port(uplink_to)
        down_index = self._take_switch_port(name)
        link = Link(
            self.sim,
            uplink.ports[up_index],
            switch.ports[down_index],
            latency=self.link_latency,
            rate_bps=self.link_rate_bps,
        )
        self.links.append(link)
        if uplink_to == "switch1":
            self.trunk_ports.add(up_index)
        return switch

    def _make_gateway(self) -> Router:
        router = Router(
            self.sim,
            "gateway",
            mac=self._alloc_mac(),
            ip=self.network.host(1),
            network=self.network,
        )
        self.hosts[router.name] = router
        self.switch_port_of: Dict[str, int] = {}
        self.switch_port_of[router.name] = self._wire(router)
        return router

    def add_host(
        self,
        name: str,
        ip: Optional[Ipv4Address | str | int] = None,
        profile: OsProfile = LINUX,
        use_gateway: bool = True,
        realistic_mac: bool = True,
        switch: str = "switch1",
    ) -> Host:
        """Add a statically addressed host.

        ``ip`` may be an address, a host index within the subnet, or
        ``None`` to auto-assign the next free static address.  Pass
        ``use_gateway=False`` for stations (monitors, attackers doing pure
        L2 work) that should never route off-link.
        """
        if name in self.hosts:
            raise TopologyError(f"duplicate host name {name!r}")
        if ip is None:
            address = self.network.host(self._next_host_index)
            self._next_host_index += 1
        elif isinstance(ip, int):
            address = self.network.host(ip)
        else:
            address = Ipv4Address(ip)
            if address not in self.network:
                raise TopologyError(f"{address} is not in {self.network}")
        host = Host(
            self.sim,
            name,
            mac=self._alloc_mac(realistic=realistic_mac),
            ip=address,
            network=self.network,
            gateway=self.gateway.ip if use_gateway else None,
            profile=profile,
        )
        self.hosts[name] = host
        port_index = self._wire(host, switch)
        if switch == "switch1":
            self.switch_port_of[name] = port_index
        return host

    def add_dhcp_host(
        self, name: str, profile: OsProfile = LINUX, switch: str = "switch1"
    ) -> Host:
        """Add a host with no address (to be configured by a DhcpClient)."""
        if name in self.hosts:
            raise TopologyError(f"duplicate host name {name!r}")
        host = Host(
            self.sim,
            name,
            mac=self._alloc_mac(),
            ip=None,
            network=self.network,
            gateway=None,
            profile=profile,
        )
        self.hosts[name] = host
        port_index = self._wire(host, switch)
        if switch == "switch1":
            self.switch_port_of[name] = port_index
        return host

    def add_monitor(self, name: str = "monitor", with_ip: bool = True) -> Host:
        """Attach a promiscuous monitor station on a mirror port.

        The switch mirrors every other port to the monitor's port — the
        standard IDS deployment the detection schemes assume.
        """
        if self.monitor is not None:
            raise TopologyError("monitor already attached")
        address = self.network.host(2) if with_ip else None
        monitor = Host(
            self.sim,
            name,
            mac=self._alloc_mac(),
            ip=address,
            network=self.network,
            gateway=None,
        )
        monitor.promiscuous = True
        self.hosts[name] = monitor
        port_index = self._wire(monitor)
        self.switch_port_of[name] = port_index
        self.switch.mirror_all_to(port_index)
        self.monitor = monitor
        return monitor

    def enable_dhcp(
        self,
        pool_start: Optional[int] = None,
        pool_end: Optional[int] = None,
        lease_time: float = 600.0,
    ) -> DhcpServer:
        """Run a DHCP server on the gateway (home-router style)."""
        if self.dhcp_server is not None:
            raise TopologyError("DHCP already enabled")
        half = self.network.num_hosts // 2
        start = pool_start if pool_start is not None else half + 1
        end = pool_end if pool_end is not None else self.network.num_hosts
        self.dhcp_server = DhcpServer(
            host=self.gateway,
            network=self.network,
            pool_start=start,
            pool_end=end,
            router=self.gateway.ip,
            lease_time=lease_time,
        )
        return self.dhcp_server

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise TopologyError(f"no such host {name!r}") from None

    def port_of(self, name: str) -> int:
        """Primary-switch port index a host is wired to.

        Raises for hosts on secondary switches — use :attr:`attachment_of`
        for the general (switch, port) location.
        """
        try:
            return self.switch_port_of[name]
        except KeyError:
            raise TopologyError(
                f"{name!r} is not attached to the primary switch"
            ) from None

    def true_bindings(self) -> Dict[Ipv4Address, MacAddress]:
        """Ground truth (IP -> MAC) for every addressed host.

        This is what metrics compare poisoned caches against; schemes do
        NOT get to see it.
        """
        return {
            host.ip: host.mac for host in self.hosts.values() if host.ip is not None
        }

    def __repr__(self) -> str:
        return (
            f"Lan({self.network}, hosts={len(self.hosts)}, "
            f"monitor={'yes' if self.monitor else 'no'})"
        )
