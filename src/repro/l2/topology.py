"""LAN topology builder.

Assembles the experimental workplace every evaluation scenario uses: a
switch (with optional mirror port), a gateway router that can run DHCP,
some number of user hosts, optionally an attacker and a monitor station —
the same shape as the classic "home/office LAN plus IDS on a mirror port"
testbed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.errors import TopologyError
from repro.l2.device import DEFAULT_LATENCY, DEFAULT_RATE_BPS, Link
from repro.l2.switch import Switch
from repro.net.addresses import Ipv4Address, Ipv4Network, MacAddress
from repro.net.oui import KNOWN_OUIS
from repro.sim.simulator import Simulator
from repro.stack.dhcp_server import DhcpServer
from repro.stack.host import Host
from repro.stack.os_profiles import LINUX, OsProfile
from repro.stack.router import Router

__all__ = ["Campus", "Lan", "PortAllocator"]

_REALISTIC_OUIS = sorted(KNOWN_OUIS)

#: Locally-administered, unicast base for deterministic campus MACs
#: (02:xx:xx:xx:xx:xx) — derived from the global host index instead of a
#: shared RNG stream so the address a host gets does not depend on how
#: many other partitions drew from the stream first.
_CAMPUS_MAC_BASE = 0x02_00_00_00_00_00


class PortAllocator:
    """O(1) switch-port bookkeeping.

    Hands out port indices sequentially (0, 1, 2, ... — byte-identical to
    the counter it replaced) and recycles released indices through a FIFO
    free-list, so building a 10k-host topology costs O(1) per attachment
    and unplugged ports can be reused without scanning the port list.
    """

    __slots__ = ("switch_name", "num_ports", "_next", "_released")

    def __init__(self, switch_name: str, num_ports: int) -> None:
        self.switch_name = switch_name
        self.num_ports = num_ports
        self._next = 0
        self._released: deque[int] = deque()

    def take(self) -> int:
        if self._released:
            return self._released.popleft()
        index = self._next
        if index >= self.num_ports:
            raise TopologyError(f"{self.switch_name} is out of ports")
        self._next = index + 1
        return index

    def release(self, index: int) -> None:
        if not 0 <= index < self._next:
            raise TopologyError(
                f"{self.switch_name} port {index} was never allocated"
            )
        self._released.append(index)

    def available(self) -> int:
        return self.num_ports - self._next + len(self._released)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PortAllocator({self.switch_name!r}, "
            f"{self.num_ports - self.available()}/{self.num_ports} in use)"
        )


class Lan:
    """A single-switch LAN with a gateway, hosts and an optional monitor.

    Addressing convention: the gateway takes ``.1``; statically addressed
    hosts are handed ``.10`` upward; the DHCP pool (when enabled) sits in
    the upper half of the subnet.
    """

    def __init__(
        self,
        sim: Simulator,
        network: str | Ipv4Network = "192.168.88.0/24",
        switch_ports: int = 64,
        cam_capacity: int = 1024,
        cam_aging: float = 300.0,
        link_latency: float = DEFAULT_LATENCY,
        link_rate_bps: float = DEFAULT_RATE_BPS,
    ) -> None:
        self.sim = sim
        self.network = Ipv4Network(network)
        self.link_latency = link_latency
        self.link_rate_bps = link_rate_bps
        self.switch = Switch(
            sim,
            "switch1",
            num_ports=switch_ports,
            cam_capacity=cam_capacity,
            cam_aging=cam_aging,
        )
        #: All switches by name; ``switch1`` is the primary (uplink) one.
        self.switches: Dict[str, Switch] = {"switch1": self.switch}
        self._ports: Dict[str, PortAllocator] = {
            "switch1": PortAllocator("switch1", switch_ports)
        }
        #: Primary-switch port indices that are inter-switch trunks —
        #: switch-resident schemes must treat these as trusted/multi-MAC.
        self.trunk_ports: set[int] = set()
        #: host name -> (switch name, port index on that switch).
        self.attachment_of: Dict[str, tuple[str, int]] = {}
        self._next_host_index = 10
        self._macs_used: set[MacAddress] = set()
        self._mac_rng = sim.rng_stream("lan/mac-alloc")
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self.gateway = self._make_gateway()
        self.dhcp_server: Optional[DhcpServer] = None
        self.monitor: Optional[Host] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _alloc_mac(self, realistic: bool = True) -> MacAddress:
        while True:
            oui = self._mac_rng.choice(_REALISTIC_OUIS) if realistic else None
            mac = MacAddress.random(self._mac_rng, oui=oui)
            if mac not in self._macs_used:
                self._macs_used.add(mac)
                return mac

    def _take_switch_port(self, switch_name: str = "switch1") -> int:
        try:
            allocator = self._ports[switch_name]
        except KeyError:
            raise TopologyError(f"no such switch {switch_name!r}") from None
        return allocator.take()

    def _wire(self, host: Host, switch_name: str = "switch1") -> int:
        port_index = self._take_switch_port(switch_name)
        link = Link(
            self.sim,
            host.nic,
            self.switches[switch_name].ports[port_index],
            latency=self.link_latency,
            rate_bps=self.link_rate_bps,
        )
        self.links.append(link)
        self.attachment_of[host.name] = (switch_name, port_index)
        return port_index

    def add_switch(
        self,
        name: str,
        num_ports: int = 16,
        cam_capacity: int = 1024,
        cam_aging: float = 300.0,
        uplink_to: str = "switch1",
    ) -> Switch:
        """Add a secondary switch trunked to ``uplink_to``.

        Models mixed environments (e.g. a cheap unmanaged switch hanging
        off the managed core) — the topology where switch-resident
        defenses famously go blind for intra-segment traffic.
        """
        if name in self.switches:
            raise TopologyError(f"duplicate switch name {name!r}")
        switch = Switch(
            self.sim,
            name,
            num_ports=num_ports,
            cam_capacity=cam_capacity,
            cam_aging=cam_aging,
        )
        self.switches[name] = switch
        self._ports[name] = PortAllocator(name, num_ports)
        uplink = self.switches[uplink_to]
        up_index = self._take_switch_port(uplink_to)
        down_index = self._take_switch_port(name)
        link = Link(
            self.sim,
            uplink.ports[up_index],
            switch.ports[down_index],
            latency=self.link_latency,
            rate_bps=self.link_rate_bps,
        )
        self.links.append(link)
        if uplink_to == "switch1":
            self.trunk_ports.add(up_index)
        return switch

    def _make_gateway(self) -> Router:
        router = Router(
            self.sim,
            "gateway",
            mac=self._alloc_mac(),
            ip=self.network.host(1),
            network=self.network,
        )
        self.hosts[router.name] = router
        self.switch_port_of: Dict[str, int] = {}
        self.switch_port_of[router.name] = self._wire(router)
        return router

    def add_host(
        self,
        name: str,
        ip: Optional[Ipv4Address | str | int] = None,
        profile: OsProfile = LINUX,
        use_gateway: bool = True,
        realistic_mac: bool = True,
        switch: str = "switch1",
    ) -> Host:
        """Add a statically addressed host.

        ``ip`` may be an address, a host index within the subnet, or
        ``None`` to auto-assign the next free static address.  Pass
        ``use_gateway=False`` for stations (monitors, attackers doing pure
        L2 work) that should never route off-link.
        """
        if name in self.hosts:
            raise TopologyError(f"duplicate host name {name!r}")
        if ip is None:
            address = self.network.host(self._next_host_index)
            self._next_host_index += 1
        elif isinstance(ip, int):
            address = self.network.host(ip)
        else:
            address = Ipv4Address(ip)
            if address not in self.network:
                raise TopologyError(f"{address} is not in {self.network}")
        host = Host(
            self.sim,
            name,
            mac=self._alloc_mac(realistic=realistic_mac),
            ip=address,
            network=self.network,
            gateway=self.gateway.ip if use_gateway else None,
            profile=profile,
        )
        self.hosts[name] = host
        port_index = self._wire(host, switch)
        if switch == "switch1":
            self.switch_port_of[name] = port_index
        return host

    def add_dhcp_host(
        self, name: str, profile: OsProfile = LINUX, switch: str = "switch1"
    ) -> Host:
        """Add a host with no address (to be configured by a DhcpClient)."""
        if name in self.hosts:
            raise TopologyError(f"duplicate host name {name!r}")
        host = Host(
            self.sim,
            name,
            mac=self._alloc_mac(),
            ip=None,
            network=self.network,
            gateway=None,
            profile=profile,
        )
        self.hosts[name] = host
        port_index = self._wire(host, switch)
        if switch == "switch1":
            self.switch_port_of[name] = port_index
        return host

    def add_monitor(self, name: str = "monitor", with_ip: bool = True) -> Host:
        """Attach a promiscuous monitor station on a mirror port.

        The switch mirrors every other port to the monitor's port — the
        standard IDS deployment the detection schemes assume.
        """
        if self.monitor is not None:
            raise TopologyError("monitor already attached")
        address = self.network.host(2) if with_ip else None
        monitor = Host(
            self.sim,
            name,
            mac=self._alloc_mac(),
            ip=address,
            network=self.network,
            gateway=None,
        )
        monitor.promiscuous = True
        self.hosts[name] = monitor
        port_index = self._wire(monitor)
        self.switch_port_of[name] = port_index
        self.switch.mirror_all_to(port_index)
        self.monitor = monitor
        return monitor

    def enable_dhcp(
        self,
        pool_start: Optional[int] = None,
        pool_end: Optional[int] = None,
        lease_time: float = 600.0,
    ) -> DhcpServer:
        """Run a DHCP server on the gateway (home-router style)."""
        if self.dhcp_server is not None:
            raise TopologyError("DHCP already enabled")
        half = self.network.num_hosts // 2
        start = pool_start if pool_start is not None else half + 1
        end = pool_end if pool_end is not None else self.network.num_hosts
        self.dhcp_server = DhcpServer(
            host=self.gateway,
            network=self.network,
            pool_start=start,
            pool_end=end,
            router=self.gateway.ip,
            lease_time=lease_time,
        )
        return self.dhcp_server

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise TopologyError(f"no such host {name!r}") from None

    def port_of(self, name: str) -> int:
        """Primary-switch port index a host is wired to.

        Raises for hosts on secondary switches — use :attr:`attachment_of`
        for the general (switch, port) location.
        """
        try:
            return self.switch_port_of[name]
        except KeyError:
            raise TopologyError(
                f"{name!r} is not attached to the primary switch"
            ) from None

    def true_bindings(self) -> Dict[Ipv4Address, MacAddress]:
        """Ground truth (IP -> MAC) for every addressed host.

        This is what metrics compare poisoned caches against; schemes do
        NOT get to see it.
        """
        return {
            host.ip: host.mac for host in self.hosts.values() if host.ip is not None
        }

    def __repr__(self) -> str:
        return (
            f"Lan({self.network}, hosts={len(self.hosts)}, "
            f"monitor={'yes' if self.monitor else 'no'})"
        )


class Campus:
    """A spine-leaf campus: buildings -> leaf switches -> one spine.

    The scale topology (ROADMAP item 1): ``buildings x leaves_per_building``
    leaf switches each serving ``hosts_per_leaf`` stations, every leaf
    trunked to a single spine switch.  10k hosts is
    ``buildings=10, leaves_per_building=10, hosts_per_leaf=100``.

    ``fabric`` is either a plain :class:`~repro.sim.Simulator` (everything
    in one event loop, plain links throughout) or a
    :class:`~repro.sim.ShardedSimulator` — detected by the presence of
    ``add_partition`` — in which case each building becomes a partition,
    the spine switch gets its own ``spine`` partition, and the leaf->spine
    uplinks become boundary links (their latency is the lookahead floor).
    The built topology is identical either way.

    Determinism across sharding: MAC and IP addresses derive from the
    global host index (not a shared RNG stream — partitions would race on
    it), names encode position (``b{building}l{leaf}h{host}``), and all
    construction is event-free, so a fixed-seed run produces the same
    traffic whether or not the fabric is partitioned.

    Duck-types the :class:`Lan` surface monitor-placement schemes need
    (``hosts``, ``monitor``, ``true_bindings``), so ``ArpWatch`` and
    friends install unchanged via :meth:`add_monitor`.
    """

    def __init__(
        self,
        fabric,
        network: str | Ipv4Network = "10.0.0.0/16",
        buildings: int = 4,
        leaves_per_building: int = 2,
        hosts_per_leaf: int = 24,
        leaf_latency: float = DEFAULT_LATENCY,
        spine_latency: float = 10 * DEFAULT_LATENCY,
        link_rate_bps: float = DEFAULT_RATE_BPS,
        profile: OsProfile = LINUX,
    ) -> None:
        if buildings < 1 or leaves_per_building < 1 or hosts_per_leaf < 1:
            raise TopologyError("campus dimensions must all be >= 1")
        self.fabric = fabric
        self.network = Ipv4Network(network)
        self.buildings = buildings
        self.leaves_per_building = leaves_per_building
        self.hosts_per_leaf = hosts_per_leaf
        self.spine_latency = spine_latency
        self.leaf_latency = leaf_latency
        self.link_rate_bps = link_rate_bps
        total_hosts = buildings * leaves_per_building * hosts_per_leaf
        if total_hosts + 16 > self.network.num_hosts:
            raise TopologyError(
                f"{self.network} cannot address {total_hosts} hosts; "
                f"use a wider prefix"
            )
        self.sharded = hasattr(fabric, "add_partition")
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: List[Link] = []
        self.monitor: Optional[Host] = None
        self._ports: Dict[str, PortAllocator] = {}
        #: device name -> (switch name, port index) for every station.
        self.attachment_of: Dict[str, tuple[str, int]] = {}

        n_leaves = buildings * leaves_per_building
        if self.sharded:
            spine_sim = fabric.add_partition("spine")
            self._building_sims = [
                fabric.add_partition(f"b{b}") for b in range(buildings)
            ]
        else:
            spine_sim = fabric
            self._building_sims = [fabric] * buildings

        # One CAM big enough for the whole campus on the spine; leaves
        # only ever learn their local stations plus the trunk.
        self.spine = Switch(
            spine_sim,
            "spine",
            num_ports=n_leaves,
            cam_capacity=max(1024, 2 * total_hosts),
        )
        self.switches["spine"] = self.spine
        self._ports["spine"] = PortAllocator("spine", n_leaves)
        if self.sharded:
            spine_sim.register(self.spine)

        host_index = 0
        for b in range(buildings):
            bsim = self._building_sims[b]
            for l in range(leaves_per_building):
                leaf_name = f"b{b}l{l}"
                # hosts + uplink + one spare for a mirror/monitor port.
                leaf = Switch(
                    bsim,
                    leaf_name,
                    num_ports=hosts_per_leaf + 2,
                    cam_capacity=max(256, 4 * hosts_per_leaf),
                )
                self.switches[leaf_name] = leaf
                self._ports[leaf_name] = PortAllocator(leaf_name, hosts_per_leaf + 2)
                if self.sharded:
                    bsim.register(leaf)
                up_index = self._ports[leaf_name].take()
                spine_index = self._ports["spine"].take()
                if self.sharded:
                    fabric.connect(
                        leaf.ports[up_index],
                        self.spine.ports[spine_index],
                        latency=spine_latency,
                        rate_bps=link_rate_bps,
                    )
                else:
                    self.links.append(
                        Link(
                            fabric,
                            leaf.ports[up_index],
                            self.spine.ports[spine_index],
                            latency=spine_latency,
                            rate_bps=link_rate_bps,
                        )
                    )
                for k in range(hosts_per_leaf):
                    host_index += 1
                    self._add_station(
                        bsim,
                        leaf_name,
                        name=f"{leaf_name}h{k}",
                        mac=MacAddress(_CAMPUS_MAC_BASE + host_index),
                        ip=self.network.host(16 + host_index),
                        profile=profile,
                    )

    def _add_station(
        self,
        sim,
        leaf_name: str,
        name: str,
        mac: MacAddress,
        ip: Optional[Ipv4Address],
        profile: OsProfile = LINUX,
        promiscuous: bool = False,
    ) -> Host:
        host = Host(
            sim,
            name,
            mac=mac,
            ip=ip,
            network=self.network,
            gateway=None,
            profile=profile,
        )
        host.promiscuous = promiscuous
        self.hosts[name] = host
        if self.sharded:
            sim.register(host)
        port_index = self._ports[leaf_name].take()
        self.links.append(
            Link(
                sim,
                host.nic,
                self.switches[leaf_name].ports[port_index],
                latency=self.leaf_latency,
                rate_bps=self.link_rate_bps,
            )
        )
        self.attachment_of[name] = (leaf_name, port_index)
        return host

    def add_monitor(
        self, building: int = 0, leaf: int = 0, name: str = "monitor"
    ) -> Host:
        """Attach a promiscuous monitor on a mirror port of one leaf.

        Campus monitors are per-leaf (a real IDS cannot mirror a whole
        spine); schemes installed on it see that leaf's traffic, which is
        exactly the partial-visibility story the paper's monitor schemes
        must survive at scale.
        """
        if self.monitor is not None:
            raise TopologyError("monitor already attached")
        leaf_name = f"b{building}l{leaf}"
        if leaf_name not in self.switches:
            raise TopologyError(f"no such leaf {leaf_name!r}")
        monitor = self._add_station(
            self._building_sims[building],
            leaf_name,
            name=name,
            mac=MacAddress(_CAMPUS_MAC_BASE + 0x00_FF_00_00_00_01),
            ip=self.network.host(2),
            promiscuous=True,
        )
        self.switches[leaf_name].mirror_all_to(self.attachment_of[name][1])
        self.monitor = monitor
        return monitor

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def total_hosts(self) -> int:
        return self.buildings * self.leaves_per_building * self.hosts_per_leaf

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise TopologyError(f"no such host {name!r}") from None

    def leaf_switch(self, building: int, leaf: int) -> Switch:
        try:
            return self.switches[f"b{building}l{leaf}"]
        except KeyError:
            raise TopologyError(
                f"no such leaf b{building}l{leaf}"
            ) from None

    def hosts_in(self, building: int) -> List[Host]:
        prefix = f"b{building}l"
        return [h for name, h in self.hosts.items() if name.startswith(prefix)]

    def true_bindings(self) -> Dict[Ipv4Address, MacAddress]:
        """Ground truth (IP -> MAC), same contract as :meth:`Lan.true_bindings`."""
        return {
            host.ip: host.mac for host in self.hosts.values() if host.ip is not None
        }

    def __repr__(self) -> str:
        return (
            f"Campus({self.network}, {self.buildings}x"
            f"{self.leaves_per_building}x{self.hosts_per_leaf} = "
            f"{self.total_hosts} hosts, "
            f"{'sharded' if self.sharded else 'single-sim'})"
        )
