"""Campus-scale experiments: ARP churn on spine-leaf topologies.

The paper's monitor schemes were evaluated on one small LAN; the scale
question — does arpwatch-style monitoring survive *campus* aggregate ARP
churn? — needs the :class:`~repro.l2.topology.Campus` topology and (for
10k+ hosts) the partitioned engine in :mod:`repro.sim.partition`.  This
module is the experiment front-end: ``api.run("campus-churn", ...)`` and
the matching campaign kind both land here.

Sharding modes (the ``shards`` parameter):

* ``0`` — single :class:`~repro.sim.Simulator`, one global event loop
  (the reference semantics; everything else must match it bit-for-bit);
* ``1`` — :class:`~repro.sim.ShardedSimulator`, in-process
  conservative-lookahead windows (one partition per building + spine);
* ``>= 2`` — partitions sharded across that many fork workers via
  :meth:`~repro.sim.ShardedSimulator.run_sharded`, metrics merged back
  through the ``repro.obs`` registry delta machinery.

Workload determinism: talker hosts are picked by a fixed stride over the
(position-named) host list, every talker draws peers and send times from
its *own* ``campus/talk/{host}`` RNG stream, and all sends are scheduled
before the clock starts — so the traffic is a pure function of (seed,
topology), identical under every sharding mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import Mapping, Optional

from repro.core.experiment import (
    RESULT_TYPES,
    ScenarioConfig,
    SerializableResult,
)
from repro.errors import ExperimentError
from repro.l2.topology import Campus
from repro.obs.registry import REGISTRY
from repro.perf import PERF
from repro.schemes import make_defense
from repro.sim import ShardedSimulator, Simulator

__all__ = ["CampusScaleResult", "_run_campus_churn"]


def _alerts_in(delta: Mapping[str, object]) -> int:
    """Total ``scheme_alerts_total`` in a registry delta (all labels).

    Works identically whether alerts were raised in this process or
    merged home from shard workers — which is why the result counts
    alerts this way instead of reading ``scheme.alerts`` (stale in the
    parent after a fork).
    """
    family = delta.get("metrics", {}).get("scheme_alerts_total")
    if not family:
        return 0
    return int(sum(s["value"] for s in family.get("samples", ())))


@dataclass(frozen=True)
class CampusScaleResult(SerializableResult):
    """One campus churn cell: topology shape, throughput, detection load."""

    scheme: Optional[str]
    hosts: int
    partitions: int
    shards: int
    talkers: int
    sim_seconds: float
    #: Events executed across every partition (merged for fork shards).
    events: int
    #: Frames handed to sinks by the batched data plane (merged).
    deliveries: int
    wall_seconds: float
    build_seconds: float
    alerts: int

    @property
    def deliveries_per_sec(self) -> float:
        """Aggregate batched-plane delivery throughput (the gate metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.deliveries / self.wall_seconds

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    @property
    def hosts_per_build_sec(self) -> float:
        """Topology construction rate — the O(n) build regression metric."""
        if self.build_seconds <= 0:
            return 0.0
        return self.hosts / self.build_seconds


#: Send times stay inside [WARMUP, duration - TAIL] so every ARP exchange
#: a talker starts can complete before the horizon.
_WARMUP = 0.05
_TAIL = 0.2


def _run_campus_churn(
    scheme_key: Optional[str],
    config: Optional[ScenarioConfig] = None,
    buildings: int = 4,
    leaves_per_building: int = 2,
    hosts_per_leaf: int = 24,
    talkers: Optional[int] = None,
    duration: float = 2.0,
    shards: int = 0,
    **scheme_kwargs,
) -> CampusScaleResult:
    """Benign ARP churn across a spine-leaf campus, optionally sharded."""
    if duration <= _WARMUP + _TAIL:
        raise ExperimentError(
            f"duration must exceed {_WARMUP + _TAIL}s (warmup + drain tail)"
        )
    if shards < 0:
        raise ExperimentError(f"shards must be >= 0, got {shards}")
    seed = (config or ScenarioConfig()).seed

    scheme = None
    if scheme_key is not None:
        scheme = make_defense(scheme_key, **scheme_kwargs)
        if scheme.profile.placement != "monitor":
            raise ExperimentError(
                f"campus-churn only supports monitor-placement schemes "
                f"(a campus has no per-host agents yet); "
                f"{scheme_key!r} is {scheme.profile.placement!r}-placed"
            )

    obs_before = REGISTRY.snapshot()
    perf_before = PERF.snapshot()

    build_start = time.perf_counter()
    if shards > 0:
        fabric = ShardedSimulator(seed=seed)
    else:
        fabric = Simulator(seed=seed)
    campus = Campus(
        fabric,
        buildings=buildings,
        leaves_per_building=leaves_per_building,
        hosts_per_leaf=hosts_per_leaf,
    )
    if scheme is not None:
        campus.add_monitor()
        scheme.install(campus)
    build_seconds = time.perf_counter() - build_start

    # ------------------------------------------------------------------
    # Deterministic churn workload, fully scheduled before the run
    # ------------------------------------------------------------------
    stations = [
        h for h in campus.hosts.values() if h is not campus.monitor
    ]
    n_stations = len(stations)
    if talkers is None:
        talkers = max(2, n_stations // 8)
    talkers = min(talkers, n_stations)
    stride = max(1, n_stations // talkers)
    window = duration - _WARMUP - _TAIL
    pings_each = 6
    for host in stations[:: stride][:talkers]:
        rng = host.sim.rng_stream(f"campus/talk/{host.name}")
        for _ in range(pings_each):
            peer = stations[rng.randrange(n_stations)]
            if peer is host:
                continue
            when = _WARMUP + rng.random() * window
            host.sim.schedule_at(
                when, partial(host.ping, peer.ip), name="campus.talk"
            )

    run_start = time.perf_counter()
    if shards >= 2:
        summary = fabric.run_sharded(until=duration, jobs=shards)
        shards_used = int(summary["shards"])
    else:
        fabric.run(until=duration)
        shards_used = 1 if shards else 0
    wall_seconds = time.perf_counter() - run_start

    perf_delta = PERF.delta_since(perf_before)
    return CampusScaleResult(
        scheme=scheme_key,
        hosts=len(campus.hosts),
        partitions=len(fabric.partitions) if shards > 0 else 1,
        shards=shards_used,
        talkers=talkers,
        sim_seconds=duration,
        events=fabric.events_processed,
        deliveries=int(perf_delta.get("batched_items", 0)),
        wall_seconds=wall_seconds,
        build_seconds=build_seconds,
        alerts=_alerts_in(REGISTRY.delta(obs_before)),
    )


# Polymorphic deserialization (campaign transport + result cache) — the
# registry lives in experiment.py but registering here avoids a cycle.
RESULT_TYPES[CampusScaleResult.__name__] = CampusScaleResult
