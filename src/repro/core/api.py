"""The unified experiment front door: ``run(kind, config, ...)``.

The seven historical ``run_effectiveness``/``run_overhead``/... entry
points shared most of their shape (build a scenario, install a scheme,
measure, return a frozen result) but each grew its own signature, which
made sweeping a new axis — like the ``repro.faults`` impairment specs —
an eight-file change.  :func:`run` collapses them behind one call:

    from repro.core import api
    result = api.run("effectiveness", scheme="dai", technique="reply",
                     faults="loss=0.05,jitter=2ms")

``kind`` names an entry of the :data:`KINDS` registry (hyphenated, the
same names the campaign layer uses; underscores are normalised).  Per-
kind parameters are validated against the registry before anything is
built, so a typo'd parameter fails fast with the allowed set in the
message.  ``faults`` (a compact spec string or a
:class:`~repro.faults.FaultSpec`) is folded into the scenario config's
``fault_spec`` field, serialized verbatim.

The legacy ``run_*`` functions survive as deprecation shims that warn
once per process and delegate here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from repro.core import experiment as _exp
from repro.core import scale as _scale
from repro.replay import engine as _replay
from repro.core.experiment import ScenarioConfig, SerializableResult
from repro.errors import ExperimentError, FaultError
from repro.faults import FaultSpec, parse_fault_spec
from repro.obs import live as _live
from repro.obs.live import TelemetryRecorder

__all__ = ["Kind", "KINDS", "run", "normalize_kind"]


@dataclass(frozen=True)
class Kind:
    """One runnable experiment kind: its implementation and parameter set."""

    name: str
    runner: Callable[..., SerializableResult]
    result_type: type
    #: Keyword parameters the kind accepts (beyond config/scheme/faults).
    params: Tuple[str, ...]
    #: Parameters that must be supplied (no sensible default exists).
    required: Tuple[str, ...] = ()
    #: Does the kind need a scheme (baseline ``None`` not meaningful)?
    requires_scheme: bool = False


#: Every runnable experiment, by its hyphenated campaign-layer name.
KINDS: Dict[str, Kind] = {
    kind.name: kind
    for kind in (
        Kind(
            name="effectiveness",
            runner=_exp._run_effectiveness,
            result_type=_exp.EffectivenessResult,
            params=("technique",),
        ),
        Kind(
            name="false-positives",
            runner=_exp._run_false_positives,
            result_type=_exp.FalsePositiveResult,
            params=(
                "duration",
                "join_rate",
                "nic_swap_rate",
                "reannounce_rate",
                "max_dhcp_hosts",
            ),
        ),
        Kind(
            name="detection-latency",
            runner=_exp._run_detection_latency,
            result_type=_exp.LatencyResult,
            params=("poison_rate",),
            required=("poison_rate",),
            requires_scheme=True,
        ),
        Kind(
            name="overhead",
            runner=_exp._run_overhead,
            result_type=_exp.OverheadResult,
            params=("n_hosts", "resolutions_per_host", "seed"),
        ),
        Kind(
            name="resolution-latency",
            runner=_exp._run_resolution_latency,
            result_type=_exp.ResolutionLatencyResult,
            params=("n_resolutions", "seed"),
        ),
        Kind(
            name="interception-timeline",
            runner=_exp._run_interception_timeline,
            result_type=_exp.InterceptionTimeline,
            params=("duration", "attack_at", "ping_rate", "bin_seconds"),
        ),
        Kind(
            name="footprint",
            runner=_exp._run_footprint,
            result_type=_exp.FootprintResult,
            params=("n_hosts", "settle", "seed"),
        ),
        Kind(
            name="controller-failover",
            runner=_exp._run_controller_failover,
            result_type=_exp.FailoverResult,
            params=("fail_mode", "poison_interval"),
            requires_scheme=True,
        ),
        Kind(
            name="dhcp-starvation",
            runner=_exp._run_dhcp_starvation,
            result_type=_exp.StarvationResult,
            params=("duration", "rate_per_second", "greedy"),
        ),
        Kind(
            name="campus-churn",
            runner=_scale._run_campus_churn,
            result_type=_scale.CampusScaleResult,
            params=(
                "buildings",
                "leaves_per_building",
                "hosts_per_leaf",
                "talkers",
                "duration",
                "shards",
            ),
        ),
        Kind(
            name="replay",
            runner=_replay._run_replay,
            result_type=_replay.ReplayResult,
            params=("source", "window", "drain"),
            required=("source",),
        ),
    )
}


def normalize_kind(kind: str) -> str:
    """Accept underscore spellings (``resolution_latency``) too."""
    return str(kind).strip().replace("_", "-")


def _fold_faults(
    config: Optional[ScenarioConfig],
    faults: Union[str, FaultSpec, None],
) -> Optional[ScenarioConfig]:
    """Fold a ``faults`` argument into the config's ``fault_spec`` field."""
    if faults is None:
        return config
    try:
        spec = parse_fault_spec(faults)
    except FaultError as exc:
        raise ExperimentError(f"invalid faults argument: {exc}") from None
    if isinstance(faults, FaultSpec):
        text = faults.spec_string or None
    else:
        text = str(faults).strip() or None
        if text is not None and text.lower() == "none":
            text = None
    if spec is None and text is None and config is None:
        return None
    base = config if config is not None else ScenarioConfig()
    if base.fault_spec is not None and text is not None:
        raise ExperimentError(
            "faults given both in config.fault_spec "
            f"({base.fault_spec!r}) and as faults= ({text!r})"
        )
    return replace(base, fault_spec=text) if text is not None else base


def run(
    kind: str,
    config: Optional[ScenarioConfig] = None,
    *,
    scheme: Optional[str] = None,
    faults: Union[str, FaultSpec, None] = None,
    scheme_kwargs: Optional[Mapping[str, object]] = None,
    telemetry: Optional["TelemetryRecorder"] = None,
    **params,
) -> SerializableResult:
    """Run one experiment ``kind`` and return its frozen result.

    Parameters
    ----------
    kind:
        A :data:`KINDS` name (``"effectiveness"``, ``"overhead"``, ...).
    config:
        Scenario overrides; each kind falls back to its historical
        default when omitted.
    scheme:
        Scheme registry key or ``+``-joined stack spec; ``None`` runs
        the undefended baseline (rejected for kinds that need a scheme).
    faults:
        Compact impairment spec string or :class:`~repro.faults.FaultSpec`,
        folded into ``config.fault_spec`` (serialized verbatim).
    scheme_kwargs:
        Keyword arguments forwarded to the scheme factory.
    telemetry:
        Optional :class:`~repro.obs.live.TelemetryRecorder` installed as
        the process default for the duration of this call, so the
        simulators the kind builds internally attach it and stream a
        live time series of the run.
    **params:
        Kind-specific parameters, validated against ``KINDS[kind].params``.
    """
    key = normalize_kind(kind)
    spec = KINDS.get(key)
    if spec is None:
        raise ExperimentError(
            f"unknown experiment kind {kind!r}; known: {sorted(KINDS)}"
        )
    unknown = set(params) - set(spec.params)
    if unknown:
        raise ExperimentError(
            f"{spec.name}: unknown parameter(s) {sorted(unknown)}; "
            f"allowed: {sorted(spec.params)}"
        )
    missing = [name for name in spec.required if name not in params]
    if missing:
        raise ExperimentError(
            f"{spec.name}: missing required parameter(s) {missing}"
        )
    if spec.requires_scheme and scheme is None:
        raise ExperimentError(
            f"{spec.name}: needs a scheme; the undefended baseline "
            "(scheme=None) is not meaningful here"
        )
    extra = dict(scheme_kwargs or {})
    overlap = set(extra) & (set(params) | {"config", "scheme_key"})
    if overlap:
        raise ExperimentError(
            f"{spec.name}: scheme_kwargs collide with parameters: {sorted(overlap)}"
        )
    config = _fold_faults(config, faults)
    if telemetry is None:
        return spec.runner(scheme, config=config, **params, **extra)
    with _live.session(telemetry):
        return spec.runner(scheme, config=config, **params, **extra)
