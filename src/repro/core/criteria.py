"""Qualitative comparison criteria (Table 1).

The analysis paper's centerpiece is a matrix of schemes against
deployment criteria.  Here the matrix is *generated* from each scheme's
:class:`~repro.schemes.base.SchemeProfile`, so the comparison table is a
function of code, not prose, and tests can assert on its contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.schemes.base import ATTACK_VARIANTS, Coverage, SchemeProfile

__all__ = ["Criterion", "CRITERIA", "comparison_matrix", "coverage_matrix"]


@dataclass(frozen=True)
class Criterion:
    """One column of the qualitative comparison."""

    key: str
    label: str
    extract: Callable[[SchemeProfile], str]


def _yesno(value: bool) -> str:
    return "yes" if value else "no"


CRITERIA: List[Criterion] = [
    Criterion("kind", "Type", lambda p: p.kind),
    Criterion("placement", "Where deployed", lambda p: p.placement),
    Criterion(
        "infra", "Infra change", lambda p: _yesno(p.requires_infra_change)
    ),
    Criterion(
        "hosts", "Host change", lambda p: _yesno(p.requires_host_change)
    ),
    Criterion("crypto", "Crypto", lambda p: _yesno(p.requires_crypto)),
    Criterion(
        "dhcp", "DHCP-friendly", lambda p: _yesno(p.supports_dhcp_networks)
    ),
    Criterion("cost", "Cost", lambda p: p.cost),
]


def comparison_matrix(
    profiles: Sequence[SchemeProfile],
) -> tuple[List[str], List[List[str]]]:
    """Rows of (scheme, criterion values...); returns (header, rows)."""
    header = ["Scheme"] + [c.label for c in CRITERIA]
    rows = [
        [profile.display_name] + [c.extract(profile) for c in CRITERIA]
        for profile in profiles
    ]
    return header, rows


_COVERAGE_SYMBOL = {
    Coverage.PREVENTS: "P",
    Coverage.DETECTS: "D",
    Coverage.PARTIAL: "p",
    Coverage.NONE: "-",
}


def coverage_matrix(
    profiles: Sequence[SchemeProfile],
) -> tuple[List[str], List[List[str]]]:
    """Claimed coverage per attack variant (P/D/p/-)."""
    header = ["Scheme"] + [v for v in ATTACK_VARIANTS]
    rows = []
    for profile in profiles:
        rows.append(
            [profile.display_name]
            + [_COVERAGE_SYMBOL[profile.coverage_for(v)] for v in ATTACK_VARIANTS]
        )
    return header, rows
