"""The cross-product analyzer: every scheme against every attack variant.

This is the driver behind Table 2 (and the summary verdicts in the
README): it runs the standard MITM scenario for each (scheme, technique)
pair and collates the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.attacks.arp_poison import POISON_TECHNIQUES
from repro.core import api
from repro.core.experiment import EffectivenessResult, ScenarioConfig
from repro.schemes.registry import SCHEME_FACTORIES

__all__ = ["SchemeAnalysis", "Analyzer"]


@dataclass
class SchemeAnalysis:
    """All effectiveness results for one scheme."""

    scheme: str
    results: List[EffectivenessResult] = field(default_factory=list)

    def result_for(self, technique: str) -> Optional[EffectivenessResult]:
        for result in self.results:
            if result.technique == technique:
                return result
        return None

    @property
    def prevents_all(self) -> bool:
        return bool(self.results) and all(r.prevented for r in self.results)

    @property
    def detects_all(self) -> bool:
        return bool(self.results) and all(
            r.detected or r.prevented for r in self.results
        )

    @property
    def verdict(self) -> str:
        if self.prevents_all:
            return "prevents all variants"
        if self.detects_all:
            return "detects (or stops) all variants"
        missed = [r.technique for r in self.results if r.outcome == "missed"]
        if len(missed) == len(self.results):
            return "ineffective"
        return f"partial (missed: {', '.join(missed)})" if missed else "partial"


class Analyzer:
    """Run the scheme × technique matrix."""

    def __init__(
        self,
        schemes: Optional[Sequence[str]] = None,
        techniques: Optional[Sequence[str]] = None,
        config: Optional[ScenarioConfig] = None,
    ) -> None:
        self.schemes = list(schemes) if schemes is not None else list(SCHEME_FACTORIES)
        self.techniques = (
            list(techniques) if techniques is not None else list(POISON_TECHNIQUES)
        )
        self.config = config or ScenarioConfig()

    def run(self, include_baseline: bool = True) -> Dict[str, SchemeAnalysis]:
        """Returns scheme-key -> analysis; key ``"none"`` is the baseline."""
        keys: List[Optional[str]] = list(self.schemes)
        if include_baseline:
            keys = [None] + keys
        out: Dict[str, SchemeAnalysis] = {}
        for key in keys:
            label = key or "none"
            analysis = SchemeAnalysis(scheme=label)
            for technique in self.techniques:
                analysis.results.append(
                    api.run(
                        "effectiveness",
                        self.config,
                        scheme=key,
                        technique=technique,
                    )
                )
            out[label] = analysis
        return out
