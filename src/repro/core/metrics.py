"""Quantitative metrics: what the evaluation actually measures.

Ground truth lives here — the experiment knows the attacker's MAC, the
true bindings, and exactly when each attack ran, so alerts can be scored
into true/false positives, poisoning can be integrated over time, and
overheads can be compared against a no-scheme baseline.  Schemes never
see any of this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.addresses import Ipv4Address, MacAddress
from repro.schemes.base import Alert, Severity
from repro.stack.host import Host

__all__ = [
    "GroundTruth",
    "AlertScore",
    "score_alerts",
    "poisoned_seconds",
    "was_ever_poisoned",
    "detection_latency",
    "mean",
    "percentile",
]

#: Severities that count as "the operator got paged".
ACTIONABLE = (Severity.WARNING, Severity.CRITICAL)


@dataclass(frozen=True)
class GroundTruth:
    """What really happened, for scoring purposes."""

    true_bindings: Dict[Ipv4Address, MacAddress]
    attacker_macs: Set[MacAddress]
    attack_intervals: Sequence[Tuple[float, float]] = ()
    #: IPs whose bindings the attack actually tried to corrupt.
    targeted_ips: Set[Ipv4Address] = field(default_factory=set)
    #: Grace period after an attack stops during which alerts still count
    #: as true positives (verification delays land slightly late).
    slack: float = 2.0

    def during_attack(self, time: float) -> bool:
        return any(b <= time <= e + self.slack for b, e in self.attack_intervals)


@dataclass
class AlertScore:
    """Alert classification for one scheme run."""

    true_positives: List[Alert] = field(default_factory=list)
    false_positives: List[Alert] = field(default_factory=list)
    informational: List[Alert] = field(default_factory=list)

    @property
    def tp_count(self) -> int:
        return len(self.true_positives)

    @property
    def fp_count(self) -> int:
        return len(self.false_positives)

    @property
    def precision(self) -> float:
        total = self.tp_count + self.fp_count
        return self.tp_count / total if total else 1.0

    def fp_rate_per_hour(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return self.fp_count / (duration / 3600.0)


def score_alerts(alerts: Sequence[Alert], truth: GroundTruth) -> AlertScore:
    """Split a scheme's alerts into TP / FP / informational.

    An actionable alert is a true positive when it fired during (or just
    after) an attack interval **and** implicates the attack — either by
    naming an attacker MAC, or by naming an IP the attack targeted.
    Actionable alerts outside attacks, or pointing at innocents, are
    false positives.  Info-severity alerts are counted separately (they
    are logs, not pages).
    """
    score = AlertScore()
    for alert in alerts:
        if alert.severity not in ACTIONABLE:
            score.informational.append(alert)
            continue
        implicates = (alert.mac is not None and alert.mac in truth.attacker_macs) or (
            alert.ip is not None and alert.ip in truth.targeted_ips
        )
        if truth.during_attack(alert.time) and implicates:
            score.true_positives.append(alert)
        else:
            score.false_positives.append(alert)
    return score


def detection_latency(
    alerts: Sequence[Alert], truth: GroundTruth
) -> Optional[float]:
    """Seconds from the first attack start to the first true positive."""
    if not truth.attack_intervals:
        return None
    start = min(b for b, _ in truth.attack_intervals)
    score = score_alerts(alerts, truth)
    if not score.true_positives:
        return None
    first = min(a.time for a in score.true_positives)
    return max(0.0, first - start)


def poisoned_seconds(
    host: Host,
    ip: Ipv4Address,
    true_mac: MacAddress,
    start: float,
    end: float,
) -> float:
    """Time within [start, end) that ``host`` held a wrong MAC for ``ip``.

    Reconstructed from the cache's change history; absence of an entry
    counts as not-poisoned (fail-stop, not fail-subverted).
    """
    if end <= start:
        return 0.0
    changes = [c for c in host.arp_cache.history if c.ip == ip and c.time < end]
    current: Optional[MacAddress] = None
    timeline: List[Tuple[float, MacAddress]] = []
    for change in changes:
        if change.time <= start:
            current = change.new_mac
        else:
            timeline.append((change.time, change.new_mac))
    poisoned = 0.0
    cursor = start
    for when, mac in timeline:
        if current is not None and current != true_mac:
            poisoned += when - cursor
        current = mac
        cursor = when
    if current is not None and current != true_mac:
        poisoned += end - cursor
    return poisoned


def was_ever_poisoned(
    host: Host, ip: Ipv4Address, true_mac: MacAddress, since: float = 0.0
) -> bool:
    """Did ``host`` ever bind ``ip`` to a wrong MAC after ``since``?"""
    for change in host.arp_cache.history:
        if change.ip == ip and change.time >= since and change.new_mac != true_mac:
            return True
    return False


# ----------------------------------------------------------------------
# Small stats helpers (kept dependency-free)
# ----------------------------------------------------------------------
def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0 on empty input (missing data, not an error)."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; 0 on empty input."""
    if not values:
        return 0.0
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    rank = max(1, round(pct / 100 * len(ordered)))
    return ordered[rank - 1]
