"""Regeneration of the paper's tables and figures.

Each ``table_N`` / ``figure_N`` function runs the corresponding
experiment(s) and returns a :class:`Artifact`: the header+rows (or
series) plus a rendered plain-text form.  ``EXPERIMENTS.md`` records one
full run; the benchmark suite regenerates each artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import render_series, render_table, to_csv
from repro.core.analyzer import Analyzer
from repro.core.criteria import comparison_matrix, coverage_matrix
from repro.core import api
from repro.core.experiment import ScenarioConfig
from repro.schemes.registry import SCHEME_FACTORIES, all_profiles

__all__ = [
    "Artifact",
    "table_1_criteria",
    "table_2_effectiveness",
    "table_3_false_positives",
    "table_4_footprint",
    "figure_1_detection_latency",
    "figure_2_overhead",
    "figure_3_resolution_latency",
    "figure_4_interception",
]

#: Detection-capable schemes (monitor/host detectors) used by Figure 1.
DETECTOR_KEYS = ("arpwatch", "snort-arpspoof", "active-probe", "middleware", "hybrid")
#: Schemes with a resolution-latency story (Figure 3).
LATENCY_KEYS = (None, "s-arp", "tarp")


@dataclass(frozen=True)
class Artifact:
    """One reproduced table or figure."""

    artifact_id: str
    title: str
    header: Sequence[str]
    rows: Sequence[Sequence[object]]
    rendered: str

    @property
    def csv(self) -> str:
        return to_csv(self.header, self.rows)


# ======================================================================
# Tables
# ======================================================================
def table_1_criteria() -> Artifact:
    """Qualitative comparison matrix (pure metadata; instant)."""
    profiles = all_profiles()
    header, rows = comparison_matrix(profiles)
    cov_header, cov_rows = coverage_matrix(profiles)
    merged_header = list(header) + [f"claimed:{h}" for h in cov_header[1:]]
    merged_rows = [list(r) + cr[1:] for r, cr in zip(rows, cov_rows)]
    rendered = render_table(
        merged_header, merged_rows, title="Table 1 — scheme comparison matrix"
    )
    return Artifact(
        artifact_id="T1",
        title="Scheme comparison matrix",
        header=merged_header,
        rows=merged_rows,
        rendered=rendered,
    )


def table_2_effectiveness(
    schemes: Optional[Sequence[str]] = None,
    config: Optional[ScenarioConfig] = None,
) -> Artifact:
    """Measured effectiveness: scheme × technique outcomes."""
    analyzer = Analyzer(schemes=schemes, config=config)
    analyses = analyzer.run(include_baseline=True)
    header = ["Scheme"] + list(analyzer.techniques) + ["verdict"]
    rows: List[List[object]] = []
    for label, analysis in analyses.items():
        row: List[object] = [label]
        for technique in analyzer.techniques:
            result = analysis.result_for(technique)
            row.append(result.outcome if result is not None else "?")
        row.append(analysis.verdict)
        rows.append(row)
    rendered = render_table(
        header, rows, title="Table 2 — measured effectiveness per attack variant"
    )
    return Artifact(
        artifact_id="T2",
        title="Measured effectiveness",
        header=header,
        rows=rows,
        rendered=rendered,
    )


def table_3_false_positives(
    schemes: Optional[Sequence[str]] = None,
    duration: float = 900.0,
) -> Artifact:
    """False alarms per scheme under benign churn (no attack at all)."""
    keys = list(schemes) if schemes is not None else list(SCHEME_FACTORIES)
    header = ["Scheme", "FP alerts", "FP/hour", "info alerts", "churn events"]
    rows: List[List[object]] = []
    for key in keys:
        result = api.run("false-positives", scheme=key, duration=duration)
        churn_total = sum(result.churn_events.values())
        rows.append(
            [
                key,
                result.fp_alerts,
                f"{result.fp_per_hour:.1f}",
                result.info_alerts,
                churn_total,
            ]
        )
    rendered = render_table(
        header, rows, title=f"Table 3 — false positives over {duration:.0f}s of churn"
    )
    return Artifact(
        artifact_id="T3",
        title="False positives under benign churn",
        header=header,
        rows=rows,
        rendered=rendered,
    )


def table_4_footprint(
    schemes: Optional[Sequence[str]] = None,
    host_counts: Sequence[int] = (8, 16, 32),
) -> Artifact:
    """State entries / scheme chatter as the LAN grows."""
    keys = list(schemes) if schemes is not None else list(SCHEME_FACTORIES)
    header = ["Scheme"] + [f"state@{n}" for n in host_counts] + [
        f"msgs@{n}" for n in host_counts
    ]
    rows: List[List[object]] = []
    for key in keys:
        states, msgs = [], []
        for n in host_counts:
            result = api.run("footprint", scheme=key, n_hosts=n)
            states.append(result.state_entries)
            msgs.append(result.scheme_messages)
        rows.append([key] + states + msgs)
    rendered = render_table(header, rows, title="Table 4 — resource footprint")
    return Artifact(
        artifact_id="T4",
        title="Resource footprint",
        header=header,
        rows=rows,
        rendered=rendered,
    )


# ======================================================================
# Figures
# ======================================================================
def figure_1_detection_latency(
    rates: Sequence[float] = (0.2, 0.5, 1.0, 2.0, 5.0, 10.0),
    schemes: Sequence[str] = DETECTOR_KEYS,
) -> Artifact:
    """Detection latency (s) vs poison rate (pps), per detector."""
    series: Dict[str, List[Optional[float]]] = {key: [] for key in schemes}
    for rate in rates:
        for key in schemes:
            result = api.run("detection-latency", scheme=key, poison_rate=rate)
            series[key].append(result.detection_latency)
    rendered = render_series(
        "Figure 1 — detection latency (s) vs poison rate (pps)",
        list(rates),
        series,
        x_label="rate_pps",
    )
    header = ["rate_pps"] + list(schemes)
    rows = [
        [rate] + [series[key][i] for key in schemes] for i, rate in enumerate(rates)
    ]
    return Artifact(
        artifact_id="F1",
        title="Detection latency vs attack rate",
        header=header,
        rows=rows,
        rendered=rendered,
    )


def figure_2_overhead(
    host_counts: Sequence[int] = (8, 16, 32, 64),
    schemes: Sequence[Optional[str]] = (None, "s-arp", "tarp", "active-probe"),
) -> Artifact:
    """ARP-layer frames per resolution vs LAN size."""
    labels = [key or "plain-arp" for key in schemes]
    series: Dict[str, List[Optional[float]]] = {label: [] for label in labels}
    for n in host_counts:
        for key, label in zip(schemes, labels):
            result = api.run("overhead", scheme=key, n_hosts=n)
            series[label].append(result.frames_per_resolution)
    rendered = render_series(
        "Figure 2 — resolution message overhead vs LAN size",
        [float(n) for n in host_counts],
        series,
        x_label="hosts",
    )
    header = ["hosts"] + labels
    rows = [
        [n] + [series[label][i] for label in labels]
        for i, n in enumerate(host_counts)
    ]
    return Artifact(
        artifact_id="F2",
        title="Protocol overhead vs LAN size",
        header=header,
        rows=rows,
        rendered=rendered,
    )


def figure_3_resolution_latency(
    n_resolutions: int = 30,
    schemes: Sequence[Optional[str]] = LATENCY_KEYS,
) -> Artifact:
    """Mean/max ARP resolution latency: plain vs S-ARP vs TARP."""
    header = ["Scheme", "mean_ms", "max_ms", "slowdown_vs_plain"]
    rows: List[List[object]] = []
    plain_mean: Optional[float] = None
    for key in schemes:
        result = api.run(
            "resolution-latency", scheme=key, n_resolutions=n_resolutions
        )
        mean_ms = result.mean_latency * 1e3
        if key is None:
            plain_mean = mean_ms
        slowdown = (mean_ms / plain_mean) if plain_mean else 0.0
        rows.append(
            [
                key or "plain-arp",
                f"{mean_ms:.3f}",
                f"{result.max_latency * 1e3:.3f}",
                f"{slowdown:.2f}x",
            ]
        )
    rendered = render_table(
        header, rows, title="Figure 3 — ARP resolution latency"
    )
    return Artifact(
        artifact_id="F3",
        title="Resolution latency comparison",
        header=header,
        rows=rows,
        rendered=rendered,
    )


def figure_4_interception(
    schemes: Sequence[Optional[str]] = (None, "anticap", "dai", "s-arp", "hybrid"),
    duration: float = 120.0,
    attack_at: float = 30.0,
) -> Artifact:
    """Interception ratio over time, with and without defenses."""
    labels = [key or "none" for key in schemes]
    timelines = {}
    xs: List[float] = []
    for key, label in zip(schemes, labels):
        timeline = api.run(
            "interception-timeline",
            scheme=key,
            duration=duration,
            attack_at=attack_at,
        )
        timelines[label] = [ratio for _, ratio in timeline.bins]
        xs = [t for t, _ in timeline.bins]
    rendered = render_series(
        "Figure 4 — MITM interception ratio over time (attack starts at "
        f"t={attack_at:.0f}s)",
        xs,
        timelines,
        x_label="t_s",
    )
    header = ["t_s"] + labels
    rows = [[x] + [timelines[label][i] for label in labels] for i, x in enumerate(xs)]
    return Artifact(
        artifact_id="F4",
        title="Interception ratio over time",
        header=header,
        rows=rows,
        rendered=rendered,
    )
