"""Deployment-constraint-driven scheme recommendation.

The practical payoff of the paper's analysis is answering "so what do
*I* deploy?".  This module encodes that decision procedure: describe
the environment (:class:`Deployment`) and get the schemes whose
profiles fit, ranked by how much they cover, with the reasons each
rejected scheme was rejected — i.e., Table 1 turned into an engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.schemes.base import ATTACK_VARIANTS, Coverage, SchemeProfile
from repro.schemes.registry import all_profiles

__all__ = ["Deployment", "Recommendation", "recommend"]

_COST_RANK = {"free": 0, "low": 1, "medium": 2, "high": 3}
_COVERAGE_SCORE = {
    Coverage.PREVENTS: 2.0,
    Coverage.DETECTS: 1.0,
    Coverage.PARTIAL: 0.5,
    Coverage.NONE: 0.0,
}


@dataclass(frozen=True)
class Deployment:
    """Constraints of the environment the operator administers.

    Attributes
    ----------
    uses_dhcp:
        Clients get addresses dynamically (rules out DHCP-hostile schemes).
    can_modify_hosts:
        Kernel patches / agents / new stacks are deployable on every host
        (false for BYOD and guest networks).
    has_managed_switches:
        Switch-resident features (port security, DAI) are available.
    can_run_infrastructure:
        New servers (AKD/LTA, monitor stations) can be stood up.
    max_cost:
        Budget ceiling: one of ``free``/``low``/``medium``/``high``.
    want_prevention:
        Require prevention; otherwise detection-only schemes qualify too.
    """

    uses_dhcp: bool = True
    can_modify_hosts: bool = True
    has_managed_switches: bool = False
    can_run_infrastructure: bool = False
    max_cost: str = "high"
    want_prevention: bool = False

    def __post_init__(self) -> None:
        if self.max_cost not in _COST_RANK:
            raise ValueError(
                f"max_cost must be one of {sorted(_COST_RANK)}, got {self.max_cost!r}"
            )


@dataclass(frozen=True)
class Recommendation:
    """The engine's output."""

    suitable: Tuple[SchemeProfile, ...]
    rejected: Dict[str, Tuple[str, ...]]  # scheme key -> reasons

    @property
    def best(self) -> Optional[SchemeProfile]:
        return self.suitable[0] if self.suitable else None

    def render(self) -> str:
        lines: List[str] = []
        if self.suitable:
            lines.append("Suitable (best first):")
            for profile in self.suitable:
                lines.append(f"  + {profile.key:15s} {profile.display_name}")
        else:
            lines.append("No scheme fits these constraints.")
        if self.rejected:
            lines.append("Rejected:")
            for key, reasons in self.rejected.items():
                lines.append(f"  - {key:15s} {'; '.join(reasons)}")
        return "\n".join(lines)


def _violations(profile: SchemeProfile, env: Deployment) -> List[str]:
    reasons: List[str] = []
    if env.uses_dhcp and not profile.supports_dhcp_networks:
        reasons.append("incompatible with DHCP addressing")
    if profile.requires_host_change and not env.can_modify_hosts:
        reasons.append("needs changes on every host")
    if profile.placement == "switch" and not env.has_managed_switches:
        reasons.append("needs managed switches")
    if profile.requires_infra_change and not (
        env.can_run_infrastructure or env.has_managed_switches
    ):
        reasons.append("needs new infrastructure")
    if profile.placement in ("monitor",) and not env.can_run_infrastructure:
        reasons.append("needs a monitor station on a mirror port")
    if _COST_RANK[profile.cost] > _COST_RANK[env.max_cost]:
        reasons.append(f"cost {profile.cost} exceeds budget {env.max_cost}")
    if env.want_prevention and profile.kind != "prevention":
        reasons.append("detection-only; prevention required")
    return reasons


def _score(profile: SchemeProfile) -> Tuple[float, int]:
    """Rank key: coverage first, then cheaper wins ties."""
    coverage = sum(
        _COVERAGE_SCORE[profile.coverage_for(v)] for v in ATTACK_VARIANTS
    )
    return (coverage, -_COST_RANK[profile.cost])


def recommend(
    env: Deployment,
    profiles: Optional[Sequence[SchemeProfile]] = None,
) -> Recommendation:
    """Rank the schemes that fit ``env``; explain the ones that do not."""
    candidates = list(profiles) if profiles is not None else all_profiles()
    suitable: List[SchemeProfile] = []
    rejected: Dict[str, Tuple[str, ...]] = {}
    for profile in candidates:
        reasons = _violations(profile, env)
        if reasons:
            rejected[profile.key] = tuple(reasons)
        else:
            suitable.append(profile)
    suitable.sort(key=_score, reverse=True)
    return Recommendation(suitable=tuple(suitable), rejected=rejected)
