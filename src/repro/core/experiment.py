"""Experiment harness: scenario construction and the measured runs.

One :class:`Scenario` is the standard testbed shape — a switched LAN
with a gateway, a monitor on a mirror port, ``n_hosts`` user stations
and one attacker — and each ``run_*`` function below performs one of the
paper's measurements on it.  Everything is seeded and deterministic.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.attacks.arp_poison import POISON_TECHNIQUES
from repro.attacks.dhcp_starvation import DhcpStarvation
from repro.attacks.mitm import MitmAttack
from repro.core.metrics import (
    GroundTruth,
    detection_latency,
    mean,
    poisoned_seconds,
    score_alerts,
    was_ever_poisoned,
)
from repro.errors import ExperimentError, FaultError
from repro.faults import apply_faults, parse_fault_spec
from repro.l2.topology import Lan
from repro.net.addresses import Ipv4Address
from repro.schemes.base import Scheme
from repro.schemes.registry import make_defense
from repro.schemes.sdn_guard import SdnArpGuard
from repro.schemes.stack import SchemeStack
from repro.sim.simulator import Simulator
from repro.stack.host import Host
from repro.stack.os_profiles import LINUX, PROFILES, OsProfile, WINDOWS_XP
from repro.workloads.benign import BenignTraffic, ChurnWorkload

__all__ = [
    "ScenarioConfig",
    "Scenario",
    "SerializableResult",
    "EffectivenessResult",
    "FalsePositiveResult",
    "LatencyResult",
    "OverheadResult",
    "ResolutionLatencyResult",
    "InterceptionTimeline",
    "FootprintResult",
    "FailoverResult",
    "StarvationResult",
    "RESULT_TYPES",
    "result_from_dict",
    "run_effectiveness",
    "run_false_positives",
    "run_detection_latency",
    "run_overhead",
    "run_resolution_latency",
    "run_interception_timeline",
    "run_footprint",
]


def _tuplify(value):
    """Recursively turn lists back into tuples (JSON loses tuple-ness)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplify(v) for v in value)
    return value


def _listify(value):
    """Recursively turn tuples into lists (what JSON would produce anyway,
    so ``to_dict()`` output compares equal to a reloaded payload)."""
    if isinstance(value, (list, tuple)):
        return [_listify(v) for v in value]
    return value


class SerializableResult:
    """JSON-safe ``to_dict``/``from_dict`` round-trip for result dataclasses.

    Campaign workers return results across process boundaries and the
    on-disk result cache stores them as JSON, so every result type must
    survive ``from_dict(json.loads(json.dumps(to_dict())))`` unchanged.
    Tuple-typed fields are restored from the lists JSON produces.
    """

    def to_dict(self) -> Dict[str, object]:
        data = {name: _listify(value) for name, value in asdict(self).items()}
        data["kind"] = type(self).__name__
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SerializableResult":
        payload = dict(data)
        kind = payload.pop("kind", cls.__name__)
        if kind != cls.__name__:
            raise ExperimentError(
                f"cannot deserialize a {kind!r} payload as {cls.__name__}"
            )
        kwargs = {}
        for f in fields(cls):
            if f.name not in payload:
                raise ExperimentError(
                    f"{cls.__name__}.from_dict: missing field {f.name!r}"
                )
            kwargs[f.name] = _tuplify(payload.pop(f.name))
        # Underscore-prefixed keys are side-channel payload (e.g. the
        # campaign transport's _obs metrics), never result fields.
        unknown = [k for k in payload if not k.startswith("_")]
        if unknown:
            raise ExperimentError(
                f"{cls.__name__}.from_dict: unknown fields {sorted(unknown)}"
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the standard testbed."""

    seed: int = 7
    n_hosts: int = 8
    network: str = "192.168.88.0/24"
    victim_profile: OsProfile = WINDOWS_XP
    other_profile: OsProfile = LINUX
    with_monitor: bool = True
    with_dhcp: bool = False
    warmup: float = 5.0
    attack_duration: float = 30.0
    cooldown: float = 5.0
    #: Compact ``repro.faults`` impairment spec (``"loss=0.05,jitter=2ms"``),
    #: carried verbatim — like ``scheme=`` stack specs — so cached campaign
    #: cells stay byte-reproducible.  ``None``/``""`` means a clean LAN.
    fault_spec: Optional[str] = None

    def __post_init__(self) -> None:
        # A typo'd spec should fail at config construction, not mid-run
        # inside a campaign worker.
        try:
            parse_fault_spec(self.fault_spec)
        except FaultError as exc:
            raise ExperimentError(f"invalid fault_spec: {exc}") from None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; OS profiles are stored by name."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["victim_profile"] = self.victim_profile.name
        data["other_profile"] = self.other_profile.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioConfig":
        """Build a config from a (possibly partial) dict of overrides."""
        payload = dict(data)
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise ExperimentError(
                f"ScenarioConfig.from_dict: unknown fields {sorted(unknown)}"
            )
        for key in ("victim_profile", "other_profile"):
            name = payload.get(key)
            if isinstance(name, str):
                try:
                    payload[key] = PROFILES[name]
                except KeyError:
                    raise ExperimentError(
                        f"unknown OS profile {name!r}; known: {sorted(PROFILES)}"
                    ) from None
        return cls(**payload)


class Scenario:
    """The standard testbed, constructed from a :class:`ScenarioConfig`."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.lan = Lan(self.sim, network=config.network)
        if config.with_monitor:
            self.lan.add_monitor()
        if config.with_dhcp:
            self.lan.enable_dhcp()
        self.users: List[Host] = []
        for i in range(config.n_hosts):
            profile = config.victim_profile if i == 0 else config.other_profile
            self.users.append(self.lan.add_host(f"user-{i}", profile=profile))
        self.victim = self.users[0]
        self.attacker = self.lan.add_host("mallory")
        #: Live fault machinery, or ``None`` on a clean LAN.
        self.fault_injector = apply_faults(
            parse_fault_spec(config.fault_spec), self.lan
        )

    @property
    def gateway(self) -> Host:
        return self.lan.gateway

    def protected_hosts(self) -> List[Host]:
        """Everything the defender administers (not the attacker's box)."""
        return [
            h
            for h in self.lan.hosts.values()
            if h.ip is not None and h is not self.attacker
        ]

    def install(self, scheme: Optional[Scheme]) -> None:
        if scheme is not None:
            scheme.install(self.lan, protected=self.protected_hosts())

    def warm_caches(self) -> None:
        """Victim <-> gateway exchange before the attack (realistic state)."""
        self.victim.ping(self.gateway.ip)
        self.sim.run(until=self.sim.now + self.config.warmup)

    def ground_truth(
        self, attack, targeted: Tuple[Ipv4Address, ...]
    ) -> GroundTruth:
        return GroundTruth(
            true_bindings=self.lan.true_bindings(),
            attacker_macs={self.attacker.mac},
            attack_intervals=attack.active_intervals,
            targeted_ips=set(targeted),
        )


def _make(scheme_key: Optional[str], **kwargs) -> Optional[Scheme]:
    """Build the defense under test from a scheme key or stack spec.

    ``scheme_key`` may be a single registry key (``"dai"``) or an
    ordered stack spec (``"dai+arpwatch"``); ``None`` runs the baseline
    with no defense.  Result dataclasses record the spec string
    verbatim, so stacks round-trip through ``result_from_dict`` exactly
    like single schemes.
    """
    return make_defense(scheme_key, **kwargs) if scheme_key is not None else None


# ======================================================================
# Table 2 — effectiveness per (scheme, technique)
# ======================================================================
@dataclass(frozen=True)
class EffectivenessResult(SerializableResult):
    scheme: str
    technique: str
    prevented: bool
    detected: bool
    detection_latency: Optional[float]
    tp_alerts: int
    fp_alerts: int
    victim_poisoned_seconds: float
    packets_intercepted: int

    @property
    def outcome(self) -> str:
        """The cell of Table 2: 'prevented' / 'detected' / 'missed'."""
        if self.prevented:
            return "prevented+detected" if self.detected else "prevented"
        return "detected" if self.detected else "missed"


def _run_effectiveness(
    scheme_key: Optional[str],
    technique: str = "reply",
    config: Optional[ScenarioConfig] = None,
    **scheme_kwargs,
) -> EffectivenessResult:
    """Run one MITM attack with ``technique`` against one scheme."""
    if technique not in POISON_TECHNIQUES:
        raise ExperimentError(f"unknown technique {technique!r}")
    config = config or ScenarioConfig()
    scenario = Scenario(config)
    scheme = _make(scheme_key, **scheme_kwargs)
    scenario.install(scheme)
    scenario.warm_caches()

    if technique == "reactive":
        # The reactive race only exists when the victim must re-resolve:
        # model the natural expiry of its gateway entry.
        scenario.victim.arp_cache.age_out(scenario.gateway.ip)
        scenario.gateway.arp_cache.age_out(scenario.victim.ip)

    attack_start = scenario.sim.now
    mitm = MitmAttack(
        scenario.attacker, scenario.victim, scenario.gateway, technique=technique
    )
    mitm.start()
    cancel = scenario.sim.call_every(
        0.5, lambda: scenario.victim.ping(scenario.gateway.ip), name="victim-traffic"
    )
    scenario.sim.run(until=attack_start + config.attack_duration)
    mitm.stop()
    cancel()
    scenario.sim.run(until=scenario.sim.now + config.cooldown)

    targeted = (scenario.victim.ip, scenario.gateway.ip)
    truth = scenario.ground_truth(mitm, targeted)
    victim_bad = was_ever_poisoned(
        scenario.victim, scenario.gateway.ip, scenario.gateway.mac, since=attack_start
    )
    gateway_bad = was_ever_poisoned(
        scenario.gateway, scenario.victim.ip, scenario.victim.mac, since=attack_start
    )
    prevented = not (victim_bad or gateway_bad)
    alerts = scheme.alerts if scheme is not None else []
    score = score_alerts(alerts, truth)
    latency = detection_latency(alerts, truth)
    poisoned = poisoned_seconds(
        scenario.victim,
        scenario.gateway.ip,
        scenario.gateway.mac,
        start=attack_start,
        end=scenario.sim.now,
    )
    return EffectivenessResult(
        scheme=scheme_key or "none",
        technique=technique,
        prevented=prevented,
        detected=score.tp_count > 0,
        detection_latency=latency,
        tp_alerts=score.tp_count,
        fp_alerts=score.fp_count,
        victim_poisoned_seconds=poisoned,
        packets_intercepted=mitm.frames_relayed,
    )


# ======================================================================
# Table 3 — false positives under benign churn
# ======================================================================
@dataclass(frozen=True)
class FalsePositiveResult(SerializableResult):
    scheme: str
    duration: float
    fp_alerts: int
    info_alerts: int
    churn_events: Dict[str, int]

    @property
    def fp_per_hour(self) -> float:
        return self.fp_alerts / (self.duration / 3600.0) if self.duration else 0.0


def _run_false_positives(
    scheme_key: Optional[str],
    duration: float = 1800.0,
    config: Optional[ScenarioConfig] = None,
    join_rate: float = 1 / 60.0,
    nic_swap_rate: float = 1 / 300.0,
    reannounce_rate: float = 1 / 120.0,
    max_dhcp_hosts: int = 6,
    **scheme_kwargs,
) -> FalsePositiveResult:
    """No attack at all: every actionable alert is a false positive.

    ``max_dhcp_hosts`` is deliberately small so joins cycle through
    leaves, producing the IP-reassignment (same address, new MAC) events
    that historically plague passive detectors.
    """
    config = config or ScenarioConfig(with_dhcp=True)
    if not config.with_dhcp:
        config = ScenarioConfig(**{**config.__dict__, "with_dhcp": True})
    scenario = Scenario(config)
    scheme = _make(scheme_key, **scheme_kwargs)
    scenario.install(scheme)
    traffic = BenignTraffic(scenario.lan, rate_per_host=0.2)
    churn = ChurnWorkload(
        scenario.lan,
        join_rate=join_rate,
        nic_swap_rate=nic_swap_rate,
        reannounce_rate=reannounce_rate,
        max_dhcp_hosts=max_dhcp_hosts,
    )
    start = scenario.sim.now
    traffic.start()
    churn.start()
    scenario.sim.run(until=start + duration)
    traffic.stop()
    churn.stop()
    truth = GroundTruth(
        true_bindings=scenario.lan.true_bindings(),
        attacker_macs=set(),
        attack_intervals=(),
        targeted_ips=set(),
    )
    alerts = scheme.alerts if scheme is not None else []
    score = score_alerts(alerts, truth)
    return FalsePositiveResult(
        scheme=scheme_key or "none",
        duration=duration,
        fp_alerts=score.fp_count,
        info_alerts=len(score.informational),
        churn_events=churn.event_counts(),
    )


# ======================================================================
# Figure 1 — detection latency vs attack rate
# ======================================================================
@dataclass(frozen=True)
class LatencyResult(SerializableResult):
    scheme: str
    poison_rate: float
    detection_latency: Optional[float]
    detected: bool


def _run_detection_latency(
    scheme_key: str,
    poison_rate: float = 1.0,
    config: Optional[ScenarioConfig] = None,
    **scheme_kwargs,
) -> LatencyResult:
    """How fast does a detector fire as the re-poisoning rate varies?"""
    if poison_rate <= 0:
        raise ExperimentError("poison_rate must be positive")
    config = config or ScenarioConfig()
    scenario = Scenario(config)
    scheme = _make(scheme_key, **scheme_kwargs)
    scenario.install(scheme)
    scenario.warm_caches()
    attack_start = scenario.sim.now
    mitm = MitmAttack(
        scenario.attacker,
        scenario.victim,
        scenario.gateway,
        technique="reply",
        interval=1.0 / poison_rate,
    )
    mitm.start()
    scenario.sim.run(until=attack_start + config.attack_duration)
    mitm.stop()
    truth = scenario.ground_truth(mitm, (scenario.victim.ip, scenario.gateway.ip))
    alerts = scheme.alerts if scheme is not None else []
    latency = detection_latency(alerts, truth)
    return LatencyResult(
        scheme=scheme_key,
        poison_rate=poison_rate,
        detection_latency=latency,
        detected=latency is not None,
    )


# ======================================================================
# Figure 2 — protocol overhead vs LAN size
# ======================================================================
@dataclass(frozen=True)
class OverheadResult(SerializableResult):
    scheme: str
    n_hosts: int
    resolutions: int
    arp_frames: int
    scheme_messages: int
    total_wire_bytes: int

    @property
    def frames_per_resolution(self) -> float:
        return (
            (self.arp_frames + self.scheme_messages) / self.resolutions
            if self.resolutions
            else 0.0
        )

    @property
    def bytes_per_resolution(self) -> float:
        return self.total_wire_bytes / self.resolutions if self.resolutions else 0.0


def _quiet_config(
    config: Optional[ScenarioConfig],
    seed: Optional[int],
    n_hosts: Optional[int],
    default_hosts: int,
) -> ScenarioConfig:
    """Config for the no-attack measurements (overhead/latency/footprint).

    These historically built their own ``ScenarioConfig`` (Linux victim,
    explicit ``seed``/``n_hosts``); a caller-supplied ``config`` now wins,
    with explicitly passed ``seed``/``n_hosts`` still overriding it.
    """
    if config is None:
        return ScenarioConfig(
            seed=7 if seed is None else seed,
            n_hosts=default_hosts if n_hosts is None else n_hosts,
            victim_profile=LINUX,
        )
    overrides: Dict[str, object] = {}
    if seed is not None:
        overrides["seed"] = seed
    if n_hosts is not None:
        overrides["n_hosts"] = n_hosts
    return replace(config, **overrides) if overrides else config


def _run_overhead(
    scheme_key: Optional[str],
    n_hosts: Optional[int] = None,
    resolutions_per_host: int = 4,
    seed: Optional[int] = None,
    config: Optional[ScenarioConfig] = None,
    **scheme_kwargs,
) -> OverheadResult:
    """Measure wire cost of address resolution under a scheme (no attack)."""
    config = _quiet_config(config, seed, n_hosts, default_hosts=16)
    n_hosts = config.n_hosts
    scenario = Scenario(config)
    scheme = _make(scheme_key, **scheme_kwargs)
    scenario.install(scheme)
    scenario.sim.run(until=1.0)  # quiesce installation traffic
    recorder = scenario.lan.switch.recorder
    base_records = len(recorder.records)
    base_bytes = recorder.total_bytes()

    rng = scenario.sim.rng_stream("overhead/pairs")
    resolutions = 0
    when = scenario.sim.now
    for host in scenario.users:
        peers = rng.sample(
            [h for h in scenario.users if h is not host],
            k=min(resolutions_per_host, len(scenario.users) - 1),
        )
        for peer in peers:
            when += 0.05
            scenario.sim.schedule_at(
                when, lambda h=host, p=peer: h.ping(p.ip), name="overhead-ping"
            )
            resolutions += 1
    scenario.sim.run(until=when + 5.0)

    from repro.packets.ethernet import EtherType, EthernetFrame

    arp_frames = 0
    for record in recorder.since(base_records):
        # Lazy view: only the ethertype is inspected here.
        frame = EthernetFrame.lazy(record.frame)
        if frame.ethertype == EtherType.ARP:
            arp_frames += 1
    return OverheadResult(
        scheme=scheme_key or "none",
        n_hosts=n_hosts,
        resolutions=resolutions,
        arp_frames=arp_frames,
        scheme_messages=scheme.messages_sent if scheme is not None else 0,
        total_wire_bytes=recorder.total_bytes() - base_bytes,
    )


# ======================================================================
# Figure 3 — resolution latency distribution
# ======================================================================
@dataclass(frozen=True)
class ResolutionLatencyResult(SerializableResult):
    scheme: str
    samples: Tuple[float, ...]

    @property
    def mean_latency(self) -> float:
        return mean(list(self.samples))

    @property
    def max_latency(self) -> float:
        return max(self.samples) if self.samples else 0.0


def _run_resolution_latency(
    scheme_key: Optional[str],
    n_resolutions: int = 50,
    seed: Optional[int] = None,
    config: Optional[ScenarioConfig] = None,
    **scheme_kwargs,
) -> ResolutionLatencyResult:
    """Measure ARP resolution latency under a scheme (cold cache each time)."""
    config = _quiet_config(config, seed, n_hosts=None, default_hosts=4)
    scenario = Scenario(config)
    scheme = _make(scheme_key, **scheme_kwargs)
    scenario.install(scheme)
    scenario.sim.run(until=1.0)
    host = scenario.users[0]
    target = scenario.users[1]
    when = scenario.sim.now
    for _ in range(n_resolutions):
        when += 2.0

        def resolve_once(h=host, t=target) -> None:
            h.arp_cache.age_out(t.ip)  # force a fresh resolution
            h.resolve(t.ip, on_resolved=lambda mac: None)

        scenario.sim.schedule_at(when, resolve_once, name="latency-resolve")
    scenario.sim.run(until=when + 5.0)
    return ResolutionLatencyResult(
        scheme=scheme_key or "none",
        samples=tuple(host.resolution_latencies[-n_resolutions:]),
    )


# ======================================================================
# Figure 4 — interception ratio over time
# ======================================================================
@dataclass(frozen=True)
class InterceptionTimeline(SerializableResult):
    scheme: str
    bin_seconds: float
    bins: Tuple[Tuple[float, float], ...]  # (bin start, interception ratio)

    @property
    def peak_ratio(self) -> float:
        return max((r for _, r in self.bins), default=0.0)

    @property
    def mean_ratio(self) -> float:
        return mean([r for _, r in self.bins])


def _run_interception_timeline(
    scheme_key: Optional[str],
    config: Optional[ScenarioConfig] = None,
    duration: float = 120.0,
    attack_at: float = 30.0,
    ping_rate: float = 2.0,
    bin_seconds: float = 10.0,
    **scheme_kwargs,
) -> InterceptionTimeline:
    """Fraction of victim->gateway traffic the MITM relays, over time."""
    config = config or ScenarioConfig()
    scenario = Scenario(config)
    scheme = _make(scheme_key, **scheme_kwargs)
    scenario.install(scheme)
    scenario.warm_caches()
    start = scenario.sim.now
    sent_times: List[float] = []

    def victim_ping() -> None:
        sent_times.append(scenario.sim.now)
        scenario.victim.ping(scenario.gateway.ip)

    cancel = scenario.sim.call_every(1.0 / ping_rate, victim_ping, name="f4-traffic")
    mitm = MitmAttack(scenario.attacker, scenario.victim, scenario.gateway)
    scenario.sim.schedule_at(start + attack_at, mitm.start, name="f4-attack")
    scenario.sim.run(until=start + duration)
    if mitm.active:
        mitm.stop()
    cancel()

    bins: List[Tuple[float, float]] = []
    edge = start
    while edge < start + duration:
        sent = sum(1 for t in sent_times if edge <= t < edge + bin_seconds)
        captured = len(
            [
                p
                for p in mitm.intercepted_between(edge, edge + bin_seconds)
                if p.src == scenario.victim.ip
            ]
        )
        ratio = captured / sent if sent else 0.0
        bins.append((edge - start, min(1.0, ratio)))
        edge += bin_seconds
    return InterceptionTimeline(
        scheme=scheme_key or "none", bin_seconds=bin_seconds, bins=tuple(bins)
    )


# ======================================================================
# Table 4 — resource footprint
# ======================================================================
@dataclass(frozen=True)
class FootprintResult(SerializableResult):
    scheme: str
    n_hosts: int
    state_entries: int
    scheme_messages: int
    switch_cam_entries: int


def _run_footprint(
    scheme_key: Optional[str],
    n_hosts: Optional[int] = None,
    settle: float = 30.0,
    seed: Optional[int] = None,
    config: Optional[ScenarioConfig] = None,
    **scheme_kwargs,
) -> FootprintResult:
    """How much state/chatter a scheme needs once the LAN is warm."""
    config = _quiet_config(config, seed, n_hosts, default_hosts=16)
    n_hosts = config.n_hosts
    scenario = Scenario(config)
    scheme = _make(scheme_key, **scheme_kwargs)
    scenario.install(scheme)
    traffic = BenignTraffic(scenario.lan, rate_per_host=0.5)
    traffic.start()
    scenario.sim.run(until=settle)
    traffic.stop()
    return FootprintResult(
        scheme=scheme_key or "none",
        n_hosts=n_hosts,
        state_entries=scheme.state_size() if scheme is not None else 0,
        scheme_messages=scheme.messages_sent if scheme is not None else 0,
        switch_cam_entries=len(scenario.lan.switch.cam),
    )


# ======================================================================
# SDN extension — controller failover under sustained poisoning
# ======================================================================
@dataclass(frozen=True)
class FailoverResult(SerializableResult):
    scheme: str
    fail_mode: str
    flap_windows: Tuple[Tuple[float, float], ...]
    guard_drops: int
    fallback_entered: bool
    recovered: bool
    poisoned_during_flap: float
    poisoned_outside_flap: float
    packet_ins: int
    flow_mods: int
    evictions: int

    @property
    def exposed(self) -> bool:
        """Did the control outage actually cost protection?"""
        return self.poisoned_during_flap > 0.0


#: Default controller outage when the config carries no fault spec.
DEFAULT_FAILOVER_FAULTS = "flap=ctrl@t10-20"


def _find_sdn_guard(scheme: Optional[Scheme]) -> Optional[SdnArpGuard]:
    """The ``SdnArpGuard`` inside ``scheme`` (bare or stacked), if any."""
    if isinstance(scheme, SdnArpGuard):
        return scheme
    if isinstance(scheme, SchemeStack):
        for member in scheme.schemes:
            if isinstance(member, SdnArpGuard):
                return member
    return None


def _run_controller_failover(
    scheme_key: str,
    fail_mode: str = "open",
    config: Optional[ScenarioConfig] = None,
    poison_interval: float = 0.5,
    **scheme_kwargs,
) -> FailoverResult:
    """Poison straight through a controller outage and measure the window.

    The MITM re-poisons every ``poison_interval`` seconds from shortly
    after boot until past the last flap window, so the result separates
    poisoning *during* the outage (the fail-open exposure) from
    poisoning while the controller was reachable.
    """
    if fail_mode not in ("open", "closed"):
        raise ExperimentError(
            f"fail_mode must be 'open' or 'closed', got {fail_mode!r}"
        )
    config = config or ScenarioConfig()
    if not config.fault_spec:
        config = replace(config, fault_spec=DEFAULT_FAILOVER_FAULTS)
    scheme = _make(scheme_key, **scheme_kwargs)
    guard = _find_sdn_guard(scheme)
    if guard is None:
        raise ExperimentError(
            "controller-failover requires 'sdn-arp-guard' in the scheme "
            f"spec, got {scheme_key!r}"
        )
    # Stack specs reject constructor kwargs, so the mode is applied to the
    # located guard directly — before install, where it reaches the agents.
    guard.fail_mode = fail_mode
    scenario = Scenario(config)
    scenario.install(scheme)
    # Warm briefly rather than warm_caches(): acceptance specs like
    # ``flap=ctrl@t3-5`` start early and a 5 s warmup would swallow them.
    scenario.victim.ping(scenario.gateway.ip)
    scenario.sim.run(until=1.0)

    flaps = parse_fault_spec(config.fault_spec).flaps
    last_end = max((f.end for f in flaps), default=0.0)
    attack_start = scenario.sim.now
    mitm = MitmAttack(
        scenario.attacker,
        scenario.victim,
        scenario.gateway,
        technique="reply",
        interval=poison_interval,
    )
    mitm.start()
    cancel = scenario.sim.call_every(
        0.5, lambda: scenario.victim.ping(scenario.gateway.ip), name="victim-traffic"
    )
    run_until = max(last_end + config.cooldown, attack_start + config.attack_duration)
    scenario.sim.run(until=run_until)
    mitm.stop()
    cancel()
    scenario.sim.run(until=scenario.sim.now + config.cooldown)

    gateway = scenario.gateway
    end = scenario.sim.now

    def poisoned_in(lo: float, hi: float) -> float:
        lo, hi = max(lo, attack_start), min(hi, end)
        if hi <= lo:
            return 0.0
        return poisoned_seconds(
            scenario.victim, gateway.ip, gateway.mac, start=lo, end=hi
        )

    during = sum(poisoned_in(f.start, f.end) for f in flaps)
    total = poisoned_in(attack_start, end)
    controller = guard.controller
    return FailoverResult(
        scheme=scheme_key,
        fail_mode=fail_mode,
        flap_windows=tuple((f.start, f.end) for f in flaps),
        guard_drops=guard.arp_drops,
        fallback_entered=any(a.fallbacks > 0 for a in guard._agents),
        recovered=any(a.recoveries > 0 for a in guard._agents),
        poisoned_during_flap=during,
        poisoned_outside_flap=max(0.0, total - during),
        packet_ins=controller.packet_ins_received if controller else 0,
        flow_mods=controller.flow_mods_sent if controller else 0,
        evictions=sum(a.table.evictions for a in guard._agents),
    )


# ======================================================================
# Supporting attack — DHCP pool starvation under a defense
# ======================================================================
@dataclass(frozen=True)
class StarvationResult(SerializableResult):
    scheme: str
    duration: float
    leases_captured: int
    pool_free: int
    pool_size: int
    exhausted: bool

    @property
    def pool_survival_ratio(self) -> float:
        return self.pool_free / self.pool_size if self.pool_size else 0.0


def _run_dhcp_starvation(
    scheme_key: Optional[str],
    duration: float = 30.0,
    rate_per_second: float = 30.0,
    greedy: bool = True,
    config: Optional[ScenarioConfig] = None,
    **scheme_kwargs,
) -> StarvationResult:
    """Yersinia-style DORA flood against the standard testbed's pool."""
    config = config or ScenarioConfig(with_dhcp=True)
    if not config.with_dhcp:
        config = ScenarioConfig(**{**config.__dict__, "with_dhcp": True})
    scenario = Scenario(config)
    scheme = _make(scheme_key, **scheme_kwargs)
    scenario.install(scheme)
    server = scenario.lan.dhcp_server
    attack = DhcpStarvation(
        scenario.attacker, rate_per_second=rate_per_second, greedy=greedy
    )
    start = scenario.sim.now
    attack.start()
    scenario.sim.run(until=start + duration)
    attack.stop()
    return StarvationResult(
        scheme=scheme_key or "none",
        duration=duration,
        leases_captured=attack.leases_captured,
        pool_free=server.free_addresses,
        pool_size=len(server.pool),
        exhausted=server.is_exhausted,
    )


# ======================================================================
# Serialization registry (cross-process transfer + result cache)
# ======================================================================
#: Result classes by their ``kind`` tag, for polymorphic deserialization.
RESULT_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        EffectivenessResult,
        FalsePositiveResult,
        LatencyResult,
        OverheadResult,
        ResolutionLatencyResult,
        InterceptionTimeline,
        FootprintResult,
        FailoverResult,
        StarvationResult,
    )
}


def result_from_dict(data: Mapping[str, object]) -> SerializableResult:
    """Rebuild whichever result type ``data`` was serialized from."""
    kind = data.get("kind")
    try:
        cls = RESULT_TYPES[kind]
    except KeyError:
        raise ExperimentError(
            f"unknown result kind {kind!r}; known: {sorted(RESULT_TYPES)}"
        ) from None
    return cls.from_dict(data)


# ======================================================================
# Legacy entry points — thin deprecation shims over repro.core.api.run
# ======================================================================
#: Legacy function names that already warned this process (warn once each).
_LEGACY_WARNED: set = set()


def _warn_legacy(name: str, kind: str) -> None:
    if name in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(name)
    warnings.warn(
        f"repro.core.experiment.{name}() is deprecated; use "
        f"repro.core.api.run({kind!r}, ...) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_effectiveness(
    scheme_key: Optional[str],
    technique: str,
    config: Optional[ScenarioConfig] = None,
    **scheme_kwargs,
) -> EffectivenessResult:
    """Deprecated: use ``repro.core.api.run("effectiveness", ...)``."""
    _warn_legacy("run_effectiveness", "effectiveness")
    from repro.core.api import run

    return run(
        "effectiveness",
        config,
        scheme=scheme_key,
        scheme_kwargs=scheme_kwargs,
        technique=technique,
    )


def run_false_positives(
    scheme_key: Optional[str],
    duration: float = 1800.0,
    config: Optional[ScenarioConfig] = None,
    join_rate: float = 1 / 60.0,
    nic_swap_rate: float = 1 / 300.0,
    reannounce_rate: float = 1 / 120.0,
    max_dhcp_hosts: int = 6,
    **scheme_kwargs,
) -> FalsePositiveResult:
    """Deprecated: use ``repro.core.api.run("false-positives", ...)``."""
    _warn_legacy("run_false_positives", "false-positives")
    from repro.core.api import run

    return run(
        "false-positives",
        config,
        scheme=scheme_key,
        scheme_kwargs=scheme_kwargs,
        duration=duration,
        join_rate=join_rate,
        nic_swap_rate=nic_swap_rate,
        reannounce_rate=reannounce_rate,
        max_dhcp_hosts=max_dhcp_hosts,
    )


def run_detection_latency(
    scheme_key: str,
    poison_rate: float,
    config: Optional[ScenarioConfig] = None,
    **scheme_kwargs,
) -> LatencyResult:
    """Deprecated: use ``repro.core.api.run("detection-latency", ...)``."""
    _warn_legacy("run_detection_latency", "detection-latency")
    from repro.core.api import run

    return run(
        "detection-latency",
        config,
        scheme=scheme_key,
        scheme_kwargs=scheme_kwargs,
        poison_rate=poison_rate,
    )


def run_overhead(
    scheme_key: Optional[str],
    n_hosts: int = 16,
    resolutions_per_host: int = 4,
    seed: int = 7,
    **scheme_kwargs,
) -> OverheadResult:
    """Deprecated: use ``repro.core.api.run("overhead", ...)``."""
    _warn_legacy("run_overhead", "overhead")
    from repro.core.api import run

    return run(
        "overhead",
        scheme=scheme_key,
        scheme_kwargs=scheme_kwargs,
        n_hosts=n_hosts,
        resolutions_per_host=resolutions_per_host,
        seed=seed,
    )


def run_resolution_latency(
    scheme_key: Optional[str],
    n_resolutions: int = 50,
    seed: int = 7,
    **scheme_kwargs,
) -> ResolutionLatencyResult:
    """Deprecated: use ``repro.core.api.run("resolution-latency", ...)``."""
    _warn_legacy("run_resolution_latency", "resolution-latency")
    from repro.core.api import run

    return run(
        "resolution-latency",
        scheme=scheme_key,
        scheme_kwargs=scheme_kwargs,
        n_resolutions=n_resolutions,
        seed=seed,
    )


def run_interception_timeline(
    scheme_key: Optional[str],
    config: Optional[ScenarioConfig] = None,
    duration: float = 120.0,
    attack_at: float = 30.0,
    ping_rate: float = 2.0,
    bin_seconds: float = 10.0,
    **scheme_kwargs,
) -> InterceptionTimeline:
    """Deprecated: use ``repro.core.api.run("interception-timeline", ...)``."""
    _warn_legacy("run_interception_timeline", "interception-timeline")
    from repro.core.api import run

    return run(
        "interception-timeline",
        config,
        scheme=scheme_key,
        scheme_kwargs=scheme_kwargs,
        duration=duration,
        attack_at=attack_at,
        ping_rate=ping_rate,
        bin_seconds=bin_seconds,
    )


def run_footprint(
    scheme_key: Optional[str],
    n_hosts: int = 16,
    settle: float = 30.0,
    seed: int = 7,
    **scheme_kwargs,
) -> FootprintResult:
    """Deprecated: use ``repro.core.api.run("footprint", ...)``."""
    _warn_legacy("run_footprint", "footprint")
    from repro.core.api import run

    return run(
        "footprint",
        scheme=scheme_key,
        scheme_kwargs=scheme_kwargs,
        n_hosts=n_hosts,
        settle=settle,
        seed=seed,
    )
