"""Wire fast-path performance counters.

The hot path of the simulation is the L2 wire: every frame hop encodes,
carries, and decodes bytes.  The fast path introduced with this module
avoids most of that work — immutable packets memoize their serialization,
received frames are parsed lazily (header first, payload only on demand),
floods reuse a single encoded buffer, and hot addresses are interned.

:data:`PERF` is the process-global counter block those optimizations
report into.  It answers "did the fast path actually engage?" without a
profiler: encodes avoided, payload decodes skipped, flood buffers reused
and the address-intern hit rate.  Counters are plain attribute increments
so the instrumentation itself stays off the profile.

Counters are cumulative for the process; :meth:`PerfCounters.reset`
re-baselines everything (including the intern-cache statistics, which
live in :mod:`repro.net.addresses`).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["PerfCounters", "PERF"]


class PerfCounters:
    """Process-wide counters for the wire fast path."""

    #: Additive counters — plain ints a foreign snapshot can be folded
    #: into (see :meth:`absorb`); intern stats are derived, not additive.
    ADDITIVE = (
        "packet_encodes",
        "encodes_avoided",
        "lazy_frames",
        "payload_decodes",
        "eager_decodes",
        "flood_buffer_reuses",
        "trace_drops",
        "hook_errors",
        "dedup_evictions",
        "batch_flushes",
        "batched_items",
        "nic_batch_filtered",
        "cam_sweeps",
        "cam_sweep_skips",
    )

    __slots__ = ADDITIVE + (
        "_intern_hits_base",
        "_intern_misses_base",
    )

    def __init__(self) -> None:
        self.packet_encodes = 0
        self.encodes_avoided = 0
        self.lazy_frames = 0
        self.payload_decodes = 0
        self.eager_decodes = 0
        self.flood_buffer_reuses = 0
        self.trace_drops = 0
        #: Hook exceptions isolated by the pipeline (repro.hooks).
        self.hook_errors = 0
        #: Alert-dedup LRU evictions (bounded Scheme._dedup_seen).
        self.dedup_evictions = 0
        #: Coalesced-batch flush events dispatched by the simulator.
        self.batch_flushes = 0
        #: Frames delivered through coalesced batches (vs one event each).
        self.batched_items = 0
        #: Foreign unicast frames dropped by the vectorized NIC filter
        #: without an event, a frame view, or a per-frame Python call.
        self.nic_batch_filtered = 0
        #: CAM aging sweeps actually performed (full dict walks).
        self.cam_sweeps = 0
        #: CAM sweeps skipped by the next-expiry watermark.
        self.cam_sweep_skips = 0
        self._intern_hits_base = 0
        self._intern_misses_base = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter and re-baseline the intern statistics."""
        hits, misses = self._intern_totals()
        for name in self.ADDITIVE:
            setattr(self, name, 0)
        self._intern_hits_base = hits
        self._intern_misses_base = misses

    @staticmethod
    def _intern_totals() -> tuple[int, int]:
        from repro.net.addresses import intern_stats

        return intern_stats()

    # ------------------------------------------------------------------
    @property
    def lazy_decodes_skipped(self) -> int:
        """Lazy frame views whose payload was never materialized."""
        return max(0, self.lazy_frames - self.payload_decodes)

    @property
    def intern_hits(self) -> int:
        return self._intern_totals()[0] - self._intern_hits_base

    @property
    def intern_misses(self) -> int:
        return self._intern_totals()[1] - self._intern_misses_base

    @property
    def intern_hit_rate(self) -> float:
        hits, misses = self.intern_hits, self.intern_misses
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def encode_memo_rate(self) -> float:
        total = self.packet_encodes + self.encodes_avoided
        return self.encodes_avoided / total if total else 0.0

    @property
    def batch_coalesce_rate(self) -> float:
        """Fraction of batched frames that shared a flush event."""
        items = self.batched_items
        if not items:
            return 0.0
        return (items - self.batch_flushes) / items

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe point-in-time view of every counter."""
        return {
            "packet_encodes": self.packet_encodes,
            "encodes_avoided": self.encodes_avoided,
            "encode_memo_rate": round(self.encode_memo_rate, 4),
            "lazy_frames": self.lazy_frames,
            "payload_decodes": self.payload_decodes,
            "lazy_decodes_skipped": self.lazy_decodes_skipped,
            "eager_decodes": self.eager_decodes,
            "flood_buffer_reuses": self.flood_buffer_reuses,
            "trace_drops": self.trace_drops,
            "hook_errors": self.hook_errors,
            "dedup_evictions": self.dedup_evictions,
            "batch_flushes": self.batch_flushes,
            "batched_items": self.batched_items,
            "batch_coalesce_rate": round(self.batch_coalesce_rate, 4),
            "nic_batch_filtered": self.nic_batch_filtered,
            "cam_sweeps": self.cam_sweeps,
            "cam_sweep_skips": self.cam_sweep_skips,
            "intern_hits": self.intern_hits,
            "intern_misses": self.intern_misses,
            "intern_hit_rate": round(self.intern_hit_rate, 4),
        }

    def delta_since(self, before: Dict[str, object]) -> Dict[str, int]:
        """Additive-counter deltas vs an earlier :meth:`snapshot`.

        Campaign fork-workers inherit the parent's counter values, so
        shipping absolute snapshots home would double-count everything
        accumulated before the fork; workers ship deltas instead.
        """
        return {
            name: getattr(self, name) - int(before.get(name, 0))
            for name in self.ADDITIVE
        }

    def absorb(self, delta: Dict[str, object]) -> None:
        """Fold a foreign additive snapshot/delta into this block.

        Registered with the metrics registry as the ``perf`` collector's
        merge hook; unknown and derived keys are ignored.
        """
        for name in self.ADDITIVE:
            value = delta.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                setattr(self, name, getattr(self, name) + int(value))

    def summary(self) -> str:
        """One-line human summary (used by campaign reports)."""
        drops = f", trace-drops={self.trace_drops}" if self.trace_drops else ""
        if self.hook_errors:
            drops += f", hook-errors={self.hook_errors}"
        batched = ""
        if self.batched_items:
            batched = (
                f", batched-frames={self.batched_items} "
                f"({self.batch_coalesce_rate:.0%} coalesced)"
            )
        return (
            f"encodes={self.packet_encodes} "
            f"avoided={self.encodes_avoided} ({self.encode_memo_rate:.0%} memoized), "
            f"lazy-views={self.lazy_frames} "
            f"payload-decodes-skipped={self.lazy_decodes_skipped}, "
            f"flood-buffer-reuses={self.flood_buffer_reuses}, "
            f"intern-hit-rate={self.intern_hit_rate:.0%}" + batched + drops
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCounters({self.snapshot()})"


#: The process-global counter block every fast-path site reports into.
PERF = PerfCounters()
