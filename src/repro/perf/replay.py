"""Replay-path benchmarks and the ``BENCH_replay.json`` gate.

Companion to :mod:`repro.perf.bench` and :mod:`repro.perf.scale`: this
suite measures the streaming-ingest path of :mod:`repro.replay` — raw
synthetic-source generation, the batched engine with no scheme
installed, and the headline cell, a full arpwatch replay — and gates
them against a committed ``BENCH_replay.json`` with the same
:func:`~repro.perf.bench.check` machinery, folded into ``repro bench
--check`` exactly like the scale suite.

The headline key ``replay_arpwatch_fps`` is the ISSUE target: a
synthetic trace replayed under arpwatch must sustain >500k frames/sec
through the batched monitor tap.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.replay.engine import _run_replay
from repro.replay.sources import SyntheticSource

__all__ = [
    "DEFAULT_REPLAY_BASELINE",
    "REPLAY_BENCHMARKS",
    "REPLAY_FULL_ONLY",
    "run_replay_suite",
]

#: Committed baseline filename (repo root, next to BENCH_wire.json).
DEFAULT_REPLAY_BASELINE = "BENCH_replay.json"

#: Every key the replay suite can produce.
REPLAY_BENCHMARKS = frozenset(
    {
        "replay_source_fps",
        "replay_engine_fps",
        "replay_arpwatch_fps",
    }
)

#: Keys only a full (non ``--quick``) run produces (none today; the
#: suite just shrinks the trace under ``--quick``).
REPLAY_FULL_ONLY = frozenset()


def _trace(frames: int) -> SyntheticSource:
    """The canonical benchmark trace: default mix, fixed seed."""
    return SyntheticSource(frames=frames, seed=7)


def _bench_source(quick: bool) -> float:
    """Raw synthetic generation rate: frames/sec out of the generator."""
    frames = 100_000 if quick else 200_000
    best = 0.0
    for _ in range(2 if quick else 3):
        source = _trace(frames)
        start = time.perf_counter()
        n = sum(1 for _ in source)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, n / elapsed)
    return best


def _bench_engine(quick: bool, scheme: str | None) -> float:
    """Batched engine ingest rate (frames/sec), optionally under a scheme."""
    frames = 100_000 if quick else 300_000
    best = 0.0
    for _ in range(2 if quick else 3):
        result = _run_replay(scheme, source=_trace(frames))
        best = max(best, result.frames_per_sec)
    return best


def run_replay_suite(quick: bool = False) -> Dict[str, float]:
    """Run the replay benchmarks; returns ``{name: frames_per_sec}``."""
    results: Dict[str, float] = {}
    results["replay_source_fps"] = _bench_source(quick)
    results["replay_engine_fps"] = _bench_engine(quick, scheme=None)
    results["replay_arpwatch_fps"] = _bench_engine(quick, scheme="arpwatch")
    return results


if __name__ == "__main__":  # regenerate the committed baseline
    import sys
    from pathlib import Path

    from repro.perf.bench import format_results, write_baseline

    results = run_replay_suite(quick="--quick" in sys.argv)
    print(format_results(results, None))
    if "--update" in sys.argv:
        path = Path(__file__).resolve().parents[3] / DEFAULT_REPLAY_BASELINE
        write_baseline(path, results)
        print(f"# baseline written to {path}")
