"""Campus-scale benchmarks and the ``BENCH_scale.json`` gate.

Companion to :mod:`repro.perf.bench` (which gates the single-LAN wire
fast path): this suite measures the partitioned engine on spine-leaf
topologies — topology build rate and aggregate batched-plane delivery
throughput, unsharded vs sharded — and gates them against a committed
``BENCH_scale.json`` with the same :func:`~repro.perf.bench.check`
machinery, via ``repro scale --check`` (and folded into ``repro bench
--check``).

Key sets mirror ``BATCH_ONLY_BENCHMARKS``: baseline keys the current run
legitimately lacks go in the caller's ``allow_missing`` —
:data:`SCALE_FULL_ONLY` for ``--quick`` runs (the 10k-host cell only
runs full), :data:`SCALE_BENCHMARKS` entirely when the scale suite is
skipped (``--no-scale`` / ``--no-batch``: the churn cells measure the
batched plane, so a per-frame run has nothing to gate here).
"""

from __future__ import annotations

import time
from typing import Dict

from repro.core.scale import _run_campus_churn
from repro.l2.topology import Campus
from repro.sim import Simulator

__all__ = [
    "DEFAULT_SCALE_BASELINE",
    "SCALE_BENCHMARKS",
    "SCALE_FULL_ONLY",
    "run_scale_suite",
]

#: Committed baseline filename (repo root, next to BENCH_wire.json).
DEFAULT_SCALE_BASELINE = "BENCH_scale.json"

#: Every key the scale suite can produce.
SCALE_BENCHMARKS = frozenset(
    {
        "campus_build_hosts_per_sec",
        "campus_churn_deliveries",
        "campus_churn_sharded_deliveries",
        "campus_churn_10k_deliveries",
    }
)

#: Keys only a full (non ``--quick``) run produces.
SCALE_FULL_ONLY = frozenset({"campus_churn_10k_deliveries"})

#: The 1k-host cell both modes run: 4 buildings x 5 leaves x 50 hosts.
_CELL_1K = dict(buildings=4, leaves_per_building=5, hosts_per_leaf=50)
#: The 10k-host cell (full mode): 10 x 10 x 100.
_CELL_10K = dict(buildings=10, leaves_per_building=10, hosts_per_leaf=100)


def _bench_build(quick: bool) -> float:
    """Hosts wired per second of topology construction (O(n) build gate)."""
    cell = _CELL_1K
    best = 0.0
    for _ in range(2 if quick else 3):
        sim = Simulator(seed=7)
        start = time.perf_counter()
        campus = Campus(sim, **cell)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, campus.total_hosts / elapsed)
    return best


def _bench_churn(quick: bool, shards: int, cell: Dict[str, int]) -> float:
    """Aggregate batched-plane deliveries/sec for one churn cell."""
    result = _run_campus_churn(
        None,
        talkers=24 if quick else 64,
        duration=0.8 if quick else 1.5,
        shards=shards,
        **cell,
    )
    return result.deliveries_per_sec


def run_scale_suite(quick: bool = False) -> Dict[str, float]:
    """Run the scale benchmarks; returns ``{name: ops_per_sec}``.

    Assumes the batched data plane is the process default — callers skip
    the whole suite under ``--no-batch`` (and allow
    :data:`SCALE_BENCHMARKS` missing).
    """
    results: Dict[str, float] = {}
    results["campus_build_hosts_per_sec"] = _bench_build(quick)
    results["campus_churn_deliveries"] = _bench_churn(quick, shards=0, cell=_CELL_1K)
    results["campus_churn_sharded_deliveries"] = _bench_churn(
        quick, shards=1, cell=_CELL_1K
    )
    if not quick:
        results["campus_churn_10k_deliveries"] = _bench_churn(
            quick, shards=1, cell=_CELL_10K
        )
    return results
