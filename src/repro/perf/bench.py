"""Wire fast-path microbenchmarks and the bench-regression gate.

Each benchmark measures one layer of the zero-copy wire path in
operations per second; :func:`run_suite` returns ``{name: ops_per_sec}``.
A committed baseline (``BENCH_wire.json`` at the repo root) plus
:func:`check` turn the suite into a regression gate: ``repro bench
--check`` fails when any benchmark drops below ``baseline * tolerance``.

The default tolerance is deliberately loose (0.5) because the suite runs
on shared CI machines; the gate exists to catch order-of-magnitude
regressions (an accidentally disabled memo cache, a quadratic decode),
not single-digit noise.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = [
    "BATCH_ONLY_BENCHMARKS",
    "BENCHMARKS",
    "DEFAULT_BASELINE",
    "DEFAULT_TOLERANCE",
    "check",
    "expected_benchmark_names",
    "load_baseline",
    "run_suite",
    "write_baseline",
]

DEFAULT_BASELINE = "BENCH_wire.json"
DEFAULT_TOLERANCE = 0.5

#: Benchmarks that only exist when event batching is enabled; ``repro
#: bench --check --no-batch`` passes these as ``allow_missing`` so the
#: per-frame plane can be gated on the same committed baseline.
BATCH_ONLY_BENCHMARKS = frozenset({"broadcast_flood_deliveries"})

#: Inner-loop iteration counts: full and --quick.
_ITERS = {"full": 20_000, "quick": 2_000}
_REPEATS = {"full": 5, "quick": 2}


# ----------------------------------------------------------------------
# Workload builders — each returns (callable, ops_per_call)
# ----------------------------------------------------------------------
def _sample_frame_bytes() -> bytes:
    from repro.net.addresses import MacAddress
    from repro.packets.ethernet import EtherType, EthernetFrame

    frame = EthernetFrame(
        dst=MacAddress("02:00:00:00:00:02"),
        src=MacAddress("02:00:00:00:00:01"),
        ethertype=EtherType.IPV4,
        payload=bytes(range(64)),
    )
    return frame.encode()


def _bench_encode_fresh() -> tuple:
    from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
    from repro.packets.arp import ArpOp, ArpPacket

    sha = MacAddress("02:00:00:00:00:01")
    spa = Ipv4Address("10.0.0.1")
    tpa = Ipv4Address("10.0.0.2")

    def work() -> None:
        ArpPacket(
            op=ArpOp.REQUEST, sha=sha, spa=spa, tha=BROADCAST_MAC, tpa=tpa
        ).encode()

    return work, 1


def _bench_encode_memoized() -> tuple:
    from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
    from repro.packets.arp import ArpOp, ArpPacket

    packet = ArpPacket(
        op=ArpOp.REQUEST,
        sha=MacAddress("02:00:00:00:00:01"),
        spa=Ipv4Address("10.0.0.1"),
        tha=BROADCAST_MAC,
        tpa=Ipv4Address("10.0.0.2"),
    )
    packet.encode()  # prime the memo

    def work() -> None:
        packet.encode()

    return work, 1


def _bench_decode_eager() -> tuple:
    from repro.packets.ethernet import EthernetFrame

    wire = _sample_frame_bytes()

    def work() -> None:
        EthernetFrame.decode(wire)

    return work, 1


def _bench_decode_lazy_header() -> tuple:
    from repro.packets.ethernet import EthernetFrame

    wire = _sample_frame_bytes()

    def work() -> None:
        EthernetFrame.lazy(wire)

    return work, 1


def _bench_checksum_odd() -> tuple:
    from repro.packets.base import internet_checksum

    data = bytes(range(256)) * 5 + b"\x7f"  # 1281 bytes, odd

    def work() -> None:
        internet_checksum(data)

    return work, 1


def _bench_intern_addresses() -> tuple:
    from repro.net.addresses import MacAddress

    packed = [bytes([2, 0, 0, 0, 0, i]) for i in range(16)]

    def work() -> None:
        for p in packed:
            MacAddress.from_wire(p)

    return work, len(packed)


def _bench_cam_lookup_batch() -> tuple:
    from repro.l2.cam import CamTable

    cam = CamTable(capacity=4096)
    packed = [bytes([2, 0, 0, 0, i >> 8, i & 0xFF]) for i in range(256)]
    for i, mac in enumerate(packed):
        cam.learn_wire(mac, i % 8, now=0.0)

    def work() -> None:
        cam.lookup_batch(packed, now=1.0)

    return work, len(packed)


def _bench_nic_batch_filter() -> tuple:
    from repro.net.addresses import MacAddress
    from repro.sim.simulator import Simulator
    from repro.stack.host import Host

    sim = Simulator(seed=3)
    host = Host(sim, "bench-host", mac=MacAddress("02:bb:00:00:00:01"))
    wire = _sample_frame_bytes()  # dst 02:00:00:00:00:02 — foreign unicast
    batch = [wire] * 64

    def work() -> None:
        host.on_frame_batch(host.nic, batch)

    return work, len(batch)


def _bench_broadcast_flood(quick: bool, batching: bool = True) -> float:
    """Headline number: end-to-end flood deliveries per second.

    One sender transmits unknown-unicast frames into a switched LAN; the
    switch floods each to every other port.  This exercises the whole
    stack — lazy decode at the switch, single-serialization flooding,
    the tuple-keyed event heap, coalesced batch dispatch (``batching``),
    and NIC-level filtering at the hosts.
    """
    from repro.l2.topology import Lan
    from repro.net.addresses import MacAddress
    from repro.packets.ethernet import EtherType, EthernetFrame
    from repro.packets.ipv4 import IpProto, Ipv4Packet
    from repro.sim.simulator import Simulator

    # Quick mode still needs wide-enough batches and a long-enough timed
    # region to sit within tolerance of the full-mode baseline; 8 hosts
    # puts the batched number at ~25% of it, 16 hosts at ~80%.
    n_hosts = 16 if quick else 24
    frames = 300 if quick else 400
    repeats = _REPEATS["quick" if quick else "full"]

    best = 0.0
    for _ in range(repeats):
        sim = Simulator(seed=11, batching=batching)
        lan = Lan(sim)
        hosts = [lan.add_host(f"h{i}") for i in range(n_hosts)]
        sender = hosts[0]
        sender.ping(hosts[1].ip)  # warm the CAM for the sender
        sim.run(until=1.0)
        phantom = MacAddress("02:de:ad:be:ef:01")  # unknown unicast -> flood
        packet = Ipv4Packet(
            src=sender.ip, dst=hosts[1].ip, proto=IpProto.UDP, payload=b"z" * 64
        )
        frame = EthernetFrame(
            dst=phantom, src=sender.mac, ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        start = time.perf_counter()
        for _ in range(frames):
            sender.transmit_frame(frame)
        sim.run(until=sim.now + 5.0)
        elapsed = time.perf_counter() - start
        best = max(best, frames * (n_hosts - 1) / elapsed)
    return best


#: name -> builder returning (work, ops_per_call); the flood benchmark is
#: special-cased because it manages its own timing loop.
BENCHMARKS: Dict[str, Callable[[], tuple]] = {
    "encode_arp_fresh": _bench_encode_fresh,
    "encode_arp_memoized": _bench_encode_memoized,
    "decode_frame_eager": _bench_decode_eager,
    "decode_frame_lazy_header": _bench_decode_lazy_header,
    "checksum_odd_1281B": _bench_checksum_odd,
    "intern_mac_from_wire": _bench_intern_addresses,
    "cam_lookup_batch_wire": _bench_cam_lookup_batch,
    "nic_batch_filter": _bench_nic_batch_filter,
}

#: The flood keys run_suite adds beyond BENCHMARKS (the batched headline
#: is emitted only while batching is the process default).
_FLOOD_BENCHMARKS = ("broadcast_flood_deliveries", "broadcast_flood_unbatched")


def expected_benchmark_names() -> frozenset:
    """Every key a full (batching-on) run of the suite produces.

    The committed baseline is validated against this set: a baseline key
    outside it means a benchmark was renamed or dropped without
    regenerating ``BENCH_wire.json`` — which :func:`check` then reports
    as "missing from current run" instead of silently ungating it.
    """
    return frozenset(BENCHMARKS) | frozenset(_FLOOD_BENCHMARKS)


def _time_ops(work: Callable[[], None], ops_per_call: int, quick: bool) -> float:
    mode = "quick" if quick else "full"
    iters = _ITERS[mode]
    best = 0.0
    for _ in range(_REPEATS[mode]):
        start = time.perf_counter()
        for _ in range(iters):
            work()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, iters * ops_per_call / elapsed)
    return best


def run_suite(quick: bool = False) -> Dict[str, float]:
    """Run every benchmark; returns ``{name: ops_per_sec}``.

    The unbatched flood always runs (it gates the per-frame plane); the
    batched headline is produced only while event batching is the
    process default, so ``--no-batch`` runs simply lack that key and the
    caller allows it via :data:`BATCH_ONLY_BENCHMARKS`.
    """
    from repro.sim.simulator import DEFAULT_BATCHING

    results: Dict[str, float] = {}
    for name, builder in BENCHMARKS.items():
        work, ops_per_call = builder()
        results[name] = _time_ops(work, ops_per_call, quick)
    results["broadcast_flood_unbatched"] = _bench_broadcast_flood(
        quick, batching=False
    )
    if DEFAULT_BATCHING:
        results["broadcast_flood_deliveries"] = _bench_broadcast_flood(
            quick, batching=True
        )
    return results


# ----------------------------------------------------------------------
# Baseline I/O and the gate
# ----------------------------------------------------------------------
def write_baseline(path: Path, results: Dict[str, float]) -> None:
    payload = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "note": "ops/sec; regenerate with: repro bench --update",
        },
        "results": {name: round(ops, 1) for name, ops in results.items()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> Dict[str, float]:
    payload = json.loads(path.read_text())
    return {name: float(ops) for name, ops in payload["results"].items()}


def check(
    results: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    allow_missing: frozenset = frozenset(),
) -> List[str]:
    """Compare ``results`` to ``baseline``; returns failure messages.

    A benchmark fails when it is missing from ``results`` or its
    throughput fell below ``baseline * tolerance``.  Benchmarks present
    only in ``results`` (newly added, no baseline yet) pass.  Baseline
    keys in ``allow_missing`` may be absent from ``results`` without
    failing — how ``--no-batch`` runs skip the batch-only headline.
    """
    failures: List[str] = []
    for name, base_ops in sorted(baseline.items()):
        current = results.get(name)
        if current is None:
            if name not in allow_missing:
                failures.append(f"{name}: missing from current run")
            continue
        floor = base_ops * tolerance
        if current < floor:
            failures.append(
                f"{name}: {current:,.0f} ops/s < floor {floor:,.0f} "
                f"(baseline {base_ops:,.0f} x tolerance {tolerance})"
            )
    return failures


def format_results(
    results: Dict[str, float], baseline: Optional[Dict[str, float]] = None
) -> str:
    lines = []
    width = max(len(n) for n in results)
    for name, ops in results.items():
        line = f"  {name:<{width}}  {ops:>14,.0f} ops/s"
        if baseline and name in baseline and baseline[name] > 0:
            line += f"  ({ops / baseline[name]:.2f}x baseline)"
        lines.append(line)
    return "\n".join(lines)
