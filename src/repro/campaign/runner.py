"""Campaign execution: serial or multiprocessing-backed, with retries.

The runner turns a :class:`CampaignSpec` into a :class:`CampaignResult`:

* cells already present in the :class:`~repro.campaign.cache.ResultCache`
  are served without computing anything;
* remaining tasks run either in-process (``jobs=1``, single task, or no
  ``fork`` support) or on a bounded pool of worker *processes* — one
  process per task attempt, so a crashed or hung worker can be reaped
  with ``terminate()`` without poisoning a shared pool;
* a task that raises (or times out, in parallel mode) is retried up to
  ``retries`` extra attempts, then recorded as a :class:`TaskFailure`
  without aborting the rest of the campaign.

Determinism: results are keyed by task identity and aggregation walks
tasks in spec order, so worker count and completion order never change
the campaign's aggregates.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec, CampaignTask, canonical_params, execute_task
from repro.errors import CampaignError
from repro.obs import live
from repro.obs.registry import REGISTRY
from repro.obs.watchdog import (
    DEFAULT_BEAT_INTERVAL,
    DEFAULT_STALL_AFTER,
    HEARTBEAT_SUFFIX,
    Heartbeat,
    Watchdog,
    WorkerHealth,
)

__all__ = ["TaskFailure", "CampaignResult", "run_campaign"]

#: Event cadence of the beacon-only recorder installed in heartbeating
#: workers that have no recorder of their own — frequent enough that the
#: beacon tracks sim progress between heartbeats, cheap enough to ignore.
_BEACON_CADENCE_EVENTS = 2_000

#: Signature of the unit of work: task in, JSON-safe result dict out.
Executor = Callable[[CampaignTask], Dict[str, object]]


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its attempts without producing a result."""

    task: CampaignTask
    error: str
    attempts: int


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    spec: CampaignSpec
    results: Dict[str, Dict[str, object]] = field(default_factory=dict)
    failures: Tuple[TaskFailure, ...] = ()
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    #: Worker metric snapshots folded into the parent registry (parallel
    #: runs only — in-process execution already counts into the parent).
    worker_metrics_merged: int = 0
    #: Stall episodes the run-health watchdog counted (heartbeat runs).
    worker_stalls: int = 0
    #: Where heartbeat files were written, or ``None`` (watchdog off).
    heartbeat_dir: Optional[str] = None
    #: Final watchdog scan — per-worker liveness at campaign end.
    worker_health: Tuple[WorkerHealth, ...] = ()

    @property
    def total_tasks(self) -> int:
        return len(self.results) + len(self.failures)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total_tasks if self.total_tasks else 0.0

    def result_for(self, task: CampaignTask) -> Optional[Dict[str, object]]:
        return self.results.get(task.key())

    def completed_in_order(
        self,
    ) -> List[Tuple[CampaignTask, Dict[str, object]]]:
        """(task, result) pairs in spec order — the deterministic view."""
        out = []
        for task in self.spec.tasks():
            result = self.results.get(task.key())
            if result is not None:
                out.append((task, result))
        return out


def _task_label(task: CampaignTask) -> str:
    return f"{task.scheme_label} {canonical_params(task.variant)} trial={task.trial}"


def _start_worker_heartbeat(
    task: CampaignTask, heartbeat_path, heartbeat_interval: float
) -> Optional[Heartbeat]:
    """Heartbeat + beacon telemetry for one worker (or the serial loop).

    The beacon only advances while a telemetry recorder ticks it, so a
    worker without one gets a ring-only recorder installed — that is
    what lets the parent watchdog tell "making sim progress" apart from
    "heartbeat thread alive, main thread wedged".
    """
    if live.default_recorder() is None:
        live.install(
            live.TelemetryRecorder(
                cadence_events=_BEACON_CADENCE_EVENTS,
                capacity=8,
                include_metrics=False,
            )
        )
    label = _task_label(task)
    heartbeat = Heartbeat(
        heartbeat_path,
        interval=heartbeat_interval,
        payload=lambda: {"task": label},
    )
    try:
        return heartbeat.start()
    except OSError:  # pragma: no cover - heartbeat dir vanished
        return None


def _worker_entry(
    executor: Executor,
    task: CampaignTask,
    conn,
    heartbeat_path=None,
    heartbeat_interval: float = DEFAULT_BEAT_INTERVAL,
) -> None:
    """Body of one worker process: run the task, send one message back."""
    heartbeat = None
    if heartbeat_path is not None:
        heartbeat = _start_worker_heartbeat(task, heartbeat_path, heartbeat_interval)
    try:
        payload = executor(task)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - broken pipe during shutdown
            pass
    finally:
        if heartbeat is not None:
            try:
                heartbeat.stop()
            except Exception:  # pragma: no cover - never mask the result
                pass
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


def _fork_context():
    """The fork multiprocessing context, or ``None`` if unsupported.

    Workers must inherit the parent's memory image (``fork``) so that
    custom executors — closures in tests, registry entries created at
    runtime — exist in the child without pickling.  Platforms without
    fork degrade gracefully to serial execution.
    """
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except Exception:  # pragma: no cover - exotic platforms
        pass
    return None


def _run_serial(
    tasks: List[CampaignTask],
    executor: Executor,
    retries: int,
    record_ok: Callable[[CampaignTask, Dict[str, object]], None],
    record_fail: Callable[[CampaignTask, str, int], None],
) -> None:
    for task in tasks:
        error = ""
        for attempt in range(1, retries + 2):
            try:
                record_ok(task, executor(task))
                break
            except Exception as exc:  # noqa: BLE001
                error = f"{type(exc).__name__}: {exc}"
        else:
            record_fail(task, error, retries + 1)


def _run_parallel(
    tasks: List[CampaignTask],
    executor: Executor,
    jobs: int,
    retries: int,
    task_timeout: float,
    ctx,
    record_ok: Callable[[CampaignTask, Dict[str, object]], None],
    record_fail: Callable[[CampaignTask, str, int], None],
    heartbeat_dir: Optional[Path] = None,
    heartbeat_interval: float = DEFAULT_BEAT_INTERVAL,
    watchdog: Optional[Watchdog] = None,
) -> None:
    pending = deque((task, 1) for task in tasks)
    running: Dict[object, Tuple[object, CampaignTask, float, int, Optional[Path]]] = {}
    launches = itertools.count(1)

    def finish(task: CampaignTask, attempt: int, error: str) -> None:
        if attempt <= retries:
            pending.append((task, attempt + 1))
        else:
            record_fail(task, error, attempt)

    while pending or running:
        while pending and len(running) < jobs:
            task, attempt = pending.popleft()
            hb_path = None
            if heartbeat_dir is not None:
                hb_path = heartbeat_dir / f"worker-{next(launches)}{HEARTBEAT_SUFFIX}"
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_entry,
                args=(executor, task, child_conn, hb_path, heartbeat_interval),
                daemon=True,
                name=f"campaign-worker-{task.trial}",
            )
            proc.start()
            child_conn.close()
            deadline = time.monotonic() + task_timeout
            running[parent_conn] = (proc, task, deadline, attempt, hb_path)

        if not running:
            continue
        now = time.monotonic()
        next_deadline = min(deadline for _, _, deadline, _, _ in running.values())
        wait_for = max(0.0, min(0.25, next_deadline - now))
        ready = connection_wait(list(running), timeout=wait_for)

        for conn in ready:
            proc, task, _, attempt, _hb = running.pop(conn)
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                status, payload = (
                    "error",
                    f"worker died before reporting (exitcode={proc.exitcode})",
                )
            conn.close()
            proc.join()
            if status == "ok":
                record_ok(task, payload)
            else:
                finish(task, attempt, payload)

        now = time.monotonic()
        for conn in [c for c, v in running.items() if v[2] <= now]:
            proc, task, _, attempt, hb_path = running.pop(conn)
            proc.terminate()
            proc.join(1.0)
            if proc.is_alive():  # pragma: no cover - terminate() sufficed
                proc.kill()
                proc.join()
            conn.close()
            if hb_path is not None:
                # The worker died without saying goodbye; remove its file
                # so the watchdog does not keep grading a corpse "stale".
                try:
                    hb_path.unlink()
                except OSError:
                    pass
            finish(task, attempt, f"timed out after {task_timeout:.1f}s")

        if watchdog is not None:
            # Every <=0.25s wakeup: grade the heartbeat files so stall
            # episodes are counted while they happen, not post-mortem.
            watchdog.scan()


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = 1,
    task_timeout: float = 300.0,
    executor: Executor = execute_task,
    heartbeat_dir: Union[str, Path, None] = None,
    heartbeat_interval: float = DEFAULT_BEAT_INTERVAL,
    stall_after: float = DEFAULT_STALL_AFTER,
) -> CampaignResult:
    """Execute every task of ``spec`` and collect the results.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (or platforms without ``fork``)
        runs everything in-process.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are written back.  ``None`` disables caching.
    retries:
        Extra attempts after a task's first failure before it is
        recorded as a :class:`TaskFailure`.
    task_timeout:
        Per-attempt wall-clock budget, enforced only in parallel mode
        (an in-process task cannot be safely interrupted).
    executor:
        The unit of work; overridable for tests and custom experiments.
    heartbeat_dir:
        When given, enables the run-health watchdog: every worker (or
        the serial loop) writes heartbeat files there, the parent grades
        them each scheduler wakeup, and the result carries
        ``worker_stalls`` / ``worker_health``.  ``None`` (the default)
        keeps the whole machinery off.
    heartbeat_interval:
        Seconds between heartbeat writes.
    stall_after:
        Seconds of frozen heartbeat (or frozen sim-clock beacon) before
        a worker is graded stalled.
    """
    if jobs < 1:
        raise CampaignError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise CampaignError(f"retries must be >= 0, got {retries}")
    if task_timeout <= 0:
        raise CampaignError(f"task_timeout must be positive, got {task_timeout}")

    started = time.monotonic()
    tasks = spec.tasks()
    result = CampaignResult(spec=spec, jobs=jobs)
    failures: List[TaskFailure] = []
    to_run: List[CampaignTask] = []

    for task in tasks:
        if cache is not None:
            cached = cache.get(cache.task_key(task))
            if cached is not None:
                if isinstance(cached, dict):
                    cached.pop("_obs", None)  # pre-strip era cache entries
                result.results[task.key()] = cached
                result.cache_hits += 1
                continue
        to_run.append(task)

    ctx = _fork_context()
    parallel = bool(to_run) and jobs > 1 and len(to_run) > 1 and ctx is not None

    hb_dir: Optional[Path] = None
    watchdog: Optional[Watchdog] = None
    if heartbeat_dir is not None:
        hb_dir = Path(heartbeat_dir)
        hb_dir.mkdir(parents=True, exist_ok=True)
        watchdog = Watchdog(hb_dir, stall_after=stall_after)
        result.heartbeat_dir = str(hb_dir)

    def record_ok(task: CampaignTask, payload: Dict[str, object]) -> None:
        # The _obs section is transport, not result: strip it before the
        # payload is stored or cached.  Merge it into the parent registry
        # only when the task ran in a separate process — an in-process
        # task already counted into this process's globals, so merging
        # would double-count.
        obs = payload.pop("_obs", None) if isinstance(payload, dict) else None
        if obs is not None and parallel:
            REGISTRY.merge(obs)
            result.worker_metrics_merged += 1
        result.results[task.key()] = payload
        result.executed += 1
        if cache is not None:
            cache.put(cache.task_key(task), task, payload)

    def record_fail(task: CampaignTask, error: str, attempts: int) -> None:
        failures.append(TaskFailure(task=task, error=error, attempts=attempts))

    if to_run:
        if not parallel:
            _run_serial_with_heartbeat(
                to_run,
                executor,
                retries,
                record_ok,
                record_fail,
                hb_dir,
                heartbeat_interval,
            )
        else:
            _run_parallel(
                to_run,
                executor,
                jobs,
                retries,
                task_timeout,
                ctx,
                record_ok,
                record_fail,
                heartbeat_dir=hb_dir,
                heartbeat_interval=heartbeat_interval,
                watchdog=watchdog,
            )

    if watchdog is not None:
        result.worker_health = tuple(watchdog.scan())
        result.worker_stalls = watchdog.stall_episodes
    result.failures = tuple(failures)
    result.elapsed = time.monotonic() - started
    return result


def _run_serial_with_heartbeat(
    tasks: List[CampaignTask],
    executor: Executor,
    retries: int,
    record_ok: Callable[[CampaignTask, Dict[str, object]], None],
    record_fail: Callable[[CampaignTask, str, int], None],
    hb_dir: Optional[Path],
    heartbeat_interval: float,
) -> None:
    """Serial execution, optionally under one long-lived heartbeat.

    The in-process loop gets a single ``campaign-serial`` heartbeat whose
    payload tracks the task currently running, plus a beacon recorder if
    none is installed — so ``repro top`` works on serial runs too.
    """
    if hb_dir is None:
        _run_serial(tasks, executor, retries, record_ok, record_fail)
        return
    current: Dict[str, Optional[str]] = {"task": None}

    def labeled(task: CampaignTask) -> Dict[str, object]:
        current["task"] = _task_label(task)
        return executor(task)

    beacon_recorder = None
    if live.default_recorder() is None:
        beacon_recorder = live.TelemetryRecorder(
            cadence_events=_BEACON_CADENCE_EVENTS, capacity=8, include_metrics=False
        )
        live.install(beacon_recorder)
    heartbeat = Heartbeat(
        hb_dir / f"campaign-serial{HEARTBEAT_SUFFIX}",
        interval=heartbeat_interval,
        payload=lambda: {"task": current["task"]},
    )
    heartbeat.start()
    try:
        _run_serial(tasks, labeled, retries, record_ok, record_fail)
    finally:
        heartbeat.stop()
        if beacon_recorder is not None and live.default_recorder() is beacon_recorder:
            live.uninstall()
