"""Campaign execution: serial or multiprocessing-backed, with retries.

The runner turns a :class:`CampaignSpec` into a :class:`CampaignResult`:

* cells already present in the :class:`~repro.campaign.cache.ResultCache`
  are served without computing anything;
* remaining tasks run either in-process (``jobs=1``, single task, or no
  ``fork`` support) or on a bounded pool of worker *processes* — one
  process per task attempt, so a crashed or hung worker can be reaped
  with ``terminate()`` without poisoning a shared pool;
* a task that raises (or times out, in parallel mode) is retried up to
  ``retries`` extra attempts, then recorded as a :class:`TaskFailure`
  without aborting the rest of the campaign.

Determinism: results are keyed by task identity and aggregation walks
tasks in spec order, so worker count and completion order never change
the campaign's aggregates.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec, CampaignTask, execute_task
from repro.errors import CampaignError
from repro.obs.registry import REGISTRY

__all__ = ["TaskFailure", "CampaignResult", "run_campaign"]

#: Signature of the unit of work: task in, JSON-safe result dict out.
Executor = Callable[[CampaignTask], Dict[str, object]]


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its attempts without producing a result."""

    task: CampaignTask
    error: str
    attempts: int


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    spec: CampaignSpec
    results: Dict[str, Dict[str, object]] = field(default_factory=dict)
    failures: Tuple[TaskFailure, ...] = ()
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    #: Worker metric snapshots folded into the parent registry (parallel
    #: runs only — in-process execution already counts into the parent).
    worker_metrics_merged: int = 0

    @property
    def total_tasks(self) -> int:
        return len(self.results) + len(self.failures)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total_tasks if self.total_tasks else 0.0

    def result_for(self, task: CampaignTask) -> Optional[Dict[str, object]]:
        return self.results.get(task.key())

    def completed_in_order(
        self,
    ) -> List[Tuple[CampaignTask, Dict[str, object]]]:
        """(task, result) pairs in spec order — the deterministic view."""
        out = []
        for task in self.spec.tasks():
            result = self.results.get(task.key())
            if result is not None:
                out.append((task, result))
        return out


def _worker_entry(executor: Executor, task: CampaignTask, conn) -> None:
    """Body of one worker process: run the task, send one message back."""
    try:
        payload = executor(task)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - broken pipe during shutdown
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


def _fork_context():
    """The fork multiprocessing context, or ``None`` if unsupported.

    Workers must inherit the parent's memory image (``fork``) so that
    custom executors — closures in tests, registry entries created at
    runtime — exist in the child without pickling.  Platforms without
    fork degrade gracefully to serial execution.
    """
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except Exception:  # pragma: no cover - exotic platforms
        pass
    return None


def _run_serial(
    tasks: List[CampaignTask],
    executor: Executor,
    retries: int,
    record_ok: Callable[[CampaignTask, Dict[str, object]], None],
    record_fail: Callable[[CampaignTask, str, int], None],
) -> None:
    for task in tasks:
        error = ""
        for attempt in range(1, retries + 2):
            try:
                record_ok(task, executor(task))
                break
            except Exception as exc:  # noqa: BLE001
                error = f"{type(exc).__name__}: {exc}"
        else:
            record_fail(task, error, retries + 1)


def _run_parallel(
    tasks: List[CampaignTask],
    executor: Executor,
    jobs: int,
    retries: int,
    task_timeout: float,
    ctx,
    record_ok: Callable[[CampaignTask, Dict[str, object]], None],
    record_fail: Callable[[CampaignTask, str, int], None],
) -> None:
    pending = deque((task, 1) for task in tasks)
    running: Dict[object, Tuple[object, CampaignTask, float, int]] = {}

    def finish(task: CampaignTask, attempt: int, error: str) -> None:
        if attempt <= retries:
            pending.append((task, attempt + 1))
        else:
            record_fail(task, error, attempt)

    while pending or running:
        while pending and len(running) < jobs:
            task, attempt = pending.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_entry,
                args=(executor, task, child_conn),
                daemon=True,
                name=f"campaign-worker-{task.trial}",
            )
            proc.start()
            child_conn.close()
            deadline = time.monotonic() + task_timeout
            running[parent_conn] = (proc, task, deadline, attempt)

        if not running:
            continue
        now = time.monotonic()
        next_deadline = min(deadline for _, _, deadline, _ in running.values())
        wait_for = max(0.0, min(0.25, next_deadline - now))
        ready = connection_wait(list(running), timeout=wait_for)

        for conn in ready:
            proc, task, _, attempt = running.pop(conn)
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                status, payload = (
                    "error",
                    f"worker died before reporting (exitcode={proc.exitcode})",
                )
            conn.close()
            proc.join()
            if status == "ok":
                record_ok(task, payload)
            else:
                finish(task, attempt, payload)

        now = time.monotonic()
        for conn in [c for c, v in running.items() if v[2] <= now]:
            proc, task, _, attempt = running.pop(conn)
            proc.terminate()
            proc.join(1.0)
            if proc.is_alive():  # pragma: no cover - terminate() sufficed
                proc.kill()
                proc.join()
            conn.close()
            finish(task, attempt, f"timed out after {task_timeout:.1f}s")


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = 1,
    task_timeout: float = 300.0,
    executor: Executor = execute_task,
) -> CampaignResult:
    """Execute every task of ``spec`` and collect the results.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (or platforms without ``fork``)
        runs everything in-process.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are written back.  ``None`` disables caching.
    retries:
        Extra attempts after a task's first failure before it is
        recorded as a :class:`TaskFailure`.
    task_timeout:
        Per-attempt wall-clock budget, enforced only in parallel mode
        (an in-process task cannot be safely interrupted).
    executor:
        The unit of work; overridable for tests and custom experiments.
    """
    if jobs < 1:
        raise CampaignError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise CampaignError(f"retries must be >= 0, got {retries}")
    if task_timeout <= 0:
        raise CampaignError(f"task_timeout must be positive, got {task_timeout}")

    started = time.monotonic()
    tasks = spec.tasks()
    result = CampaignResult(spec=spec, jobs=jobs)
    failures: List[TaskFailure] = []
    to_run: List[CampaignTask] = []

    for task in tasks:
        if cache is not None:
            cached = cache.get(cache.task_key(task))
            if cached is not None:
                if isinstance(cached, dict):
                    cached.pop("_obs", None)  # pre-strip era cache entries
                result.results[task.key()] = cached
                result.cache_hits += 1
                continue
        to_run.append(task)

    ctx = _fork_context()
    parallel = bool(to_run) and jobs > 1 and len(to_run) > 1 and ctx is not None

    def record_ok(task: CampaignTask, payload: Dict[str, object]) -> None:
        # The _obs section is transport, not result: strip it before the
        # payload is stored or cached.  Merge it into the parent registry
        # only when the task ran in a separate process — an in-process
        # task already counted into this process's globals, so merging
        # would double-count.
        obs = payload.pop("_obs", None) if isinstance(payload, dict) else None
        if obs is not None and parallel:
            REGISTRY.merge(obs)
            result.worker_metrics_merged += 1
        result.results[task.key()] = payload
        result.executed += 1
        if cache is not None:
            cache.put(cache.task_key(task), task, payload)

    def record_fail(task: CampaignTask, error: str, attempts: int) -> None:
        failures.append(TaskFailure(task=task, error=error, attempts=attempts))

    if to_run:
        if not parallel:
            _run_serial(to_run, executor, retries, record_ok, record_fail)
        else:
            _run_parallel(
                to_run,
                executor,
                jobs,
                retries,
                task_timeout,
                ctx,
                record_ok,
                record_fail,
            )

    result.failures = tuple(failures)
    result.elapsed = time.monotonic() - started
    return result
