"""Multi-trial aggregation of campaign results into report artifacts.

Where the single-run report code fills each table cell with one seed's
number, a campaign fills it with a distribution: per-cell mean, 95 % CI,
percentiles, and extrema over every completed trial.  The output reuses
:class:`repro.core.report.Artifact`, so aggregated tables render, CSV-
export, and slot into tooling exactly like the paper's originals.

Determinism: cells and trials are walked in spec order, so the floats
(and therefore the rendered table) are bit-identical for any worker
count or completion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.campaign.runner import CampaignResult
from repro.campaign.spec import EXPERIMENTS
from repro.core.experiment import result_from_dict
from repro.core.metrics import percentile
from repro.core.report import Artifact

__all__ = [
    "MetricStats",
    "CellAggregate",
    "aggregate",
    "to_artifact",
    "publish_metrics",
]


@dataclass(frozen=True)
class MetricStats:
    """Distribution summary of one metric over a cell's trials.

    Boolean metrics (``prevented``, ``detected``) become rates in [0, 1];
    ``None`` values (e.g. detection latency when undetected) are dropped,
    with the surviving sample size visible as ``n``.
    """

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    ci95: float
    p50: float
    p95: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricStats":
        summary = summarize(list(values))
        return cls(
            n=summary.n,
            mean=summary.mean,
            stdev=summary.stdev,
            minimum=summary.minimum,
            maximum=summary.maximum,
            ci95=summary.ci95_half_width,
            p50=percentile(values, 50),
            p95=percentile(values, 95),
        )

    def __str__(self) -> str:
        return f"{self.mean:.4g} ±{self.ci95:.2g}"


@dataclass(frozen=True)
class CellAggregate:
    """One aggregated grid cell: all trials of (scheme, variant)."""

    scheme: str
    variant: str
    n: int
    metrics: Dict[str, MetricStats]


def aggregate(campaign: CampaignResult) -> List[CellAggregate]:
    """Fold per-trial results into one :class:`CellAggregate` per cell."""
    kind = EXPERIMENTS[campaign.spec.experiment]
    by_cell: Dict[Tuple[str, str], List[object]] = {}
    for task, payload in campaign.completed_in_order():
        by_cell.setdefault(task.cell, []).append(result_from_dict(payload))

    out: List[CellAggregate] = []
    for (scheme, variant), results in by_cell.items():
        metrics: Dict[str, MetricStats] = {}
        for name in kind.metrics:
            values: List[float] = []
            for result in results:
                value = getattr(result, name)
                if value is None:
                    continue
                values.append(float(value))
            if values:
                metrics[name] = MetricStats.from_values(values)
        out.append(
            CellAggregate(
                scheme=scheme, variant=variant, n=len(results), metrics=metrics
            )
        )
    return out


def publish_metrics(campaign: CampaignResult) -> int:
    """Fold a campaign's per-trial results into the metrics registry.

    Emits per-cell detection-latency histograms
    (``campaign_detection_latency_seconds{scheme,variant}``), per-cell
    alert totals (``campaign_alerts_total{scheme,variant,truth}``), and
    per-(scheme, fault-spec) trial outcomes
    (``campaign_outcomes_total{scheme,faults,outcome}``) — the
    numerators/denominators of each scheme's detection rate under a
    given impairment level.  A Prometheus dump (``repro campaign
    --metrics-out``) turns these into the audit-trail numbers next to
    the aggregate table.  Returns the number of observations published.
    """
    from repro.obs.registry import REGISTRY

    latency = REGISTRY.histogram(
        "campaign_detection_latency_seconds",
        "Detection latency per campaign cell",
        labels=("scheme", "variant"),
    )
    alerts = REGISTRY.counter(
        "campaign_alerts_total",
        "Alerts per campaign cell, split into true/false positives",
        labels=("scheme", "variant", "truth"),
    )
    outcomes = REGISTRY.counter(
        "campaign_outcomes_total",
        "Campaign trial outcomes per scheme and fault spec "
        "(detection rate under impairment = detected / (detected + missed))",
        labels=("scheme", "faults", "outcome"),
    )
    published = 0
    for task, payload in campaign.completed_in_order():
        result = result_from_dict(payload)
        scheme, variant = task.cell
        value = getattr(result, "detection_latency", None)
        if value is not None:
            latency.labels(scheme=scheme, variant=variant).observe(float(value))
            published += 1
        for field_name, truth in (("tp_alerts", "true"), ("fp_alerts", "false")):
            count = getattr(result, field_name, None)
            if count:
                alerts.labels(scheme=scheme, variant=variant, truth=truth).inc(
                    int(count)
                )
                published += 1
        detected = getattr(result, "detected", None)
        if detected is not None:
            fault_label = str(task.variant.get("faults") or "none")
            outcomes.labels(
                scheme=scheme,
                faults=fault_label,
                outcome="detected" if detected else "missed",
            ).inc()
            published += 1
            if getattr(result, "prevented", False):
                outcomes.labels(
                    scheme=scheme, faults=fault_label, outcome="prevented"
                ).inc()
                published += 1
    return published


def to_artifact(campaign: CampaignResult) -> Artifact:
    """Render a campaign as a multi-trial statistics table."""
    spec = campaign.spec
    kind = EXPERIMENTS[spec.experiment]
    cells = aggregate(campaign)
    header = ["Scheme", "variant", "n"] + list(kind.metrics)
    rows: List[List[object]] = []
    for cell in cells:
        row: List[object] = [cell.scheme, cell.variant, cell.n]
        for name in kind.metrics:
            stats = cell.metrics.get(name)
            row.append(str(stats) if stats is not None else "-")
        rows.append(row)
    title = (
        f"Campaign — {kind.name}: {len(spec.schemes)} scheme(s) × "
        f"{len(spec.effective_variants())} variant(s) × {spec.seeds} seed(s), "
        f"root seed {spec.root_seed}"
    )
    return Artifact(
        artifact_id=f"C-{kind.name}",
        title=title,
        header=header,
        rows=rows,
        rendered=render_table(header, rows, title=title),
    )
