"""Declarative experiment-campaign grids.

A :class:`CampaignSpec` names one experiment kind and the grid to sweep:
schemes × variants (experiment parameters) × ``seeds`` independent
trials.  :meth:`CampaignSpec.tasks` expands the grid into self-contained
:class:`CampaignTask` cells that can be shipped to worker processes and
hashed for the result cache.

Determinism contract
--------------------
Each task's seed is derived with :func:`derive_seed` from the *content*
of its cell — root seed, experiment kind, scheme, variant, scenario
overrides, and trial index — never from the task's position in the grid.
Reordering schemes, adding variants, or changing the worker count
therefore never changes the result of any individual cell, and two
campaigns with the same root seed produce bit-identical aggregates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.experiment import (
    ScenarioConfig,
    SerializableResult,
    run_detection_latency,
    run_effectiveness,
    run_false_positives,
    run_footprint,
    run_overhead,
    run_resolution_latency,
)
from repro.errors import CampaignError
from repro.schemes.registry import SCHEME_FACTORIES, validate_scheme_spec

__all__ = [
    "derive_seed",
    "canonical_params",
    "CampaignTask",
    "CampaignSpec",
    "ExperimentKind",
    "EXPERIMENTS",
    "execute_task",
]


def derive_seed(root_seed: int, *parts: object) -> int:
    """Derive an independent seed from ``root_seed`` and string-able parts.

    Uses a stable cryptographic hash (never Python's randomized ``hash``)
    so the same inputs give the same seed on every run, interpreter, and
    platform.  Distinct part tuples give statistically independent seeds.
    """
    material = json.dumps(
        [int(root_seed)] + [str(p) for p in parts], separators=(",", ":")
    )
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


def canonical_params(params: Mapping[str, object]) -> str:
    """A stable, order-independent text form of a parameter mapping."""
    if not params:
        return "-"
    return ",".join(f"{k}={params[k]}" for k in sorted(params))


def _canonical_json(value: object) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignTask:
    """One cell of a campaign grid: a single seeded experiment run.

    Tasks are self-contained (they carry the scenario overrides, not a
    reference back to the spec) so that a task dict alone determines the
    computation — that is what the result cache hashes.
    """

    experiment: str
    scheme: Optional[str]
    variant: Mapping[str, object]
    scenario: Mapping[str, object]
    trial: int
    seed: int

    @property
    def scheme_label(self) -> str:
        return self.scheme or "none"

    @property
    def cell(self) -> Tuple[str, str]:
        """The aggregation group this task belongs to (all trials share it)."""
        return (self.scheme_label, canonical_params(self.variant))

    def key(self) -> str:
        """Stable unique identifier of this task within any campaign."""
        return _canonical_json(self.to_dict())

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "scheme": self.scheme,
            "variant": dict(self.variant),
            "scenario": dict(self.scenario),
            "trial": self.trial,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignTask":
        payload = dict(data)
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise CampaignError(f"unknown task fields {sorted(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise CampaignError(f"invalid task payload: {exc}") from None


@dataclass(frozen=True)
class CampaignSpec:
    """A sweep grid: one experiment kind × schemes × variants × seeds."""

    experiment: str = "effectiveness"
    schemes: Tuple[Optional[str], ...] = (None,)
    variants: Tuple[Mapping[str, object], ...] = ()
    seeds: int = 5
    root_seed: int = 7
    scenario: Mapping[str, object] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        kind = EXPERIMENTS.get(self.experiment)
        if kind is None:
            raise CampaignError(
                f"unknown experiment {self.experiment!r}; "
                f"known: {sorted(EXPERIMENTS)}"
            )
        if self.seeds < 1:
            raise CampaignError(f"seeds must be >= 1, got {self.seeds}")
        if not self.schemes:
            raise CampaignError("a campaign needs at least one scheme")
        for scheme in self.schemes:
            if scheme is not None and not validate_scheme_spec(scheme):
                raise CampaignError(
                    f"unknown scheme {scheme!r}; known: "
                    f"{sorted(SCHEME_FACTORIES)}, '+'-joined stacks of "
                    "those (e.g. 'dai+arpwatch'), or None for the baseline"
                )
            if scheme is None and kind.requires_scheme:
                raise CampaignError(
                    f"experiment {self.experiment!r} needs a scheme; "
                    "None (baseline) is not allowed"
                )
        for variant in self.variants:
            bad = set(variant) - set(kind.variant_keys)
            if bad:
                raise CampaignError(
                    f"variant keys {sorted(bad)} not understood by "
                    f"{self.experiment!r}; allowed: {sorted(kind.variant_keys)}"
                )
        # Validate the scenario overrides eagerly: a typo should fail at
        # spec construction, not inside a worker process.
        ScenarioConfig.from_dict(dict(self.scenario))

    @property
    def kind(self) -> "ExperimentKind":
        return EXPERIMENTS[self.experiment]

    def effective_variants(self) -> Tuple[Mapping[str, object], ...]:
        return self.variants if self.variants else self.kind.default_variants

    def tasks(self) -> List[CampaignTask]:
        """Expand the grid, deterministically, in cell-major order."""
        out: List[CampaignTask] = []
        scenario = dict(self.scenario)
        for scheme in self.schemes:
            for variant in self.effective_variants():
                for trial in range(self.seeds):
                    seed = derive_seed(
                        self.root_seed,
                        self.experiment,
                        scheme or "none",
                        _canonical_json(dict(variant)),
                        _canonical_json(scenario),
                        trial,
                    )
                    out.append(
                        CampaignTask(
                            experiment=self.experiment,
                            scheme=scheme,
                            variant=dict(variant),
                            scenario=scenario,
                            trial=trial,
                            seed=seed,
                        )
                    )
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "schemes": list(self.schemes),
            "variants": [dict(v) for v in self.variants],
            "seeds": self.seeds,
            "root_seed": self.root_seed,
            "scenario": dict(self.scenario),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        payload = dict(data)
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise CampaignError(f"unknown spec fields {sorted(unknown)}")
        if "schemes" in payload:
            payload["schemes"] = tuple(payload["schemes"])
        if "variants" in payload:
            payload["variants"] = tuple(dict(v) for v in payload["variants"])
        return cls(**payload)


# ======================================================================
# Experiment kinds: how one task maps onto a run_* call
# ======================================================================
def _scenario_config(task: CampaignTask, **extra: object) -> ScenarioConfig:
    payload = dict(task.scenario)
    payload.update(extra)
    payload["seed"] = task.seed
    return ScenarioConfig.from_dict(payload)


def _execute_effectiveness(task: CampaignTask) -> SerializableResult:
    technique = str(task.variant.get("technique", "reply"))
    return run_effectiveness(task.scheme, technique, config=_scenario_config(task))


def _execute_false_positives(task: CampaignTask) -> SerializableResult:
    duration = float(task.variant.get("duration", 600.0))
    config = _scenario_config(task, with_dhcp=True)
    return run_false_positives(task.scheme, duration=duration, config=config)


def _execute_detection_latency(task: CampaignTask) -> SerializableResult:
    rate = float(task.variant.get("poison_rate", 1.0))
    return run_detection_latency(
        task.scheme, poison_rate=rate, config=_scenario_config(task)
    )


def _execute_overhead(task: CampaignTask) -> SerializableResult:
    return run_overhead(
        task.scheme,
        n_hosts=int(task.variant.get("n_hosts", 8)),
        resolutions_per_host=int(task.variant.get("resolutions_per_host", 4)),
        seed=task.seed,
    )


def _execute_resolution_latency(task: CampaignTask) -> SerializableResult:
    return run_resolution_latency(
        task.scheme,
        n_resolutions=int(task.variant.get("n_resolutions", 20)),
        seed=task.seed,
    )


def _execute_footprint(task: CampaignTask) -> SerializableResult:
    return run_footprint(
        task.scheme,
        n_hosts=int(task.variant.get("n_hosts", 8)),
        settle=float(task.variant.get("settle", 30.0)),
        seed=task.seed,
    )


@dataclass(frozen=True)
class ExperimentKind:
    """Binding between a campaign experiment name and its ``run_*`` call."""

    name: str
    execute: Callable[[CampaignTask], SerializableResult]
    metrics: Tuple[str, ...]
    variant_keys: Tuple[str, ...]
    default_variants: Tuple[Mapping[str, object], ...]
    requires_scheme: bool = False


#: All campaign-runnable experiment kinds.
EXPERIMENTS: Dict[str, ExperimentKind] = {
    kind.name: kind
    for kind in (
        ExperimentKind(
            name="effectiveness",
            execute=_execute_effectiveness,
            metrics=(
                "prevented",
                "detected",
                "detection_latency",
                "tp_alerts",
                "fp_alerts",
                "victim_poisoned_seconds",
                "packets_intercepted",
            ),
            variant_keys=("technique",),
            default_variants=({"technique": "reply"},),
        ),
        ExperimentKind(
            name="false-positives",
            execute=_execute_false_positives,
            metrics=("fp_alerts", "fp_per_hour", "info_alerts"),
            variant_keys=("duration",),
            default_variants=({"duration": 600.0},),
        ),
        ExperimentKind(
            name="detection-latency",
            execute=_execute_detection_latency,
            metrics=("detected", "detection_latency"),
            variant_keys=("poison_rate",),
            default_variants=({"poison_rate": 1.0},),
            requires_scheme=True,
        ),
        ExperimentKind(
            name="overhead",
            execute=_execute_overhead,
            metrics=(
                "frames_per_resolution",
                "bytes_per_resolution",
                "arp_frames",
                "scheme_messages",
            ),
            variant_keys=("n_hosts", "resolutions_per_host"),
            default_variants=({"n_hosts": 8},),
        ),
        ExperimentKind(
            name="resolution-latency",
            execute=_execute_resolution_latency,
            metrics=("mean_latency", "max_latency"),
            variant_keys=("n_resolutions",),
            default_variants=({"n_resolutions": 20},),
        ),
        ExperimentKind(
            name="footprint",
            execute=_execute_footprint,
            metrics=("state_entries", "scheme_messages", "switch_cam_entries"),
            variant_keys=("n_hosts", "settle"),
            default_variants=({"n_hosts": 8},),
        ),
    )
}


def execute_task(task: CampaignTask) -> Dict[str, object]:
    """Run one task and return its result as a JSON-safe dict.

    This is the unit of work shipped to campaign worker processes; the
    dict form crosses the process boundary and lands in the cache.

    Alongside the experiment result, the payload carries an ``_obs``
    section: the *delta* of the process-global metrics registry (labeled
    metrics plus the perf counter block) over this task.  Fork-workers
    inherit the parent's counts, so only the delta is safe to merge back
    without double counting.  The runner strips ``_obs`` before the
    result is stored or cached, and merges it into the parent registry
    when the task ran in a separate process.
    """
    kind = EXPERIMENTS.get(task.experiment)
    if kind is None:
        raise CampaignError(f"unknown experiment {task.experiment!r}")
    from repro.obs import REGISTRY

    before = REGISTRY.snapshot()
    payload = kind.execute(task).to_dict()
    payload["_obs"] = REGISTRY.delta(before)
    return payload
