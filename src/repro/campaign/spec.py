"""Declarative experiment-campaign grids.

A :class:`CampaignSpec` names one experiment kind and the grid to sweep:
schemes × variants (experiment parameters) × ``seeds`` independent
trials.  :meth:`CampaignSpec.tasks` expands the grid into self-contained
:class:`CampaignTask` cells that can be shipped to worker processes and
hashed for the result cache.

Determinism contract
--------------------
Each task's seed is derived with :func:`derive_seed` from the *content*
of its cell — root seed, experiment kind, scheme, variant, scenario
overrides, and trial index — never from the task's position in the grid.
Reordering schemes, adding variants, or changing the worker count
therefore never changes the result of any individual cell, and two
campaigns with the same root seed produce bit-identical aggregates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core import api
from repro.core.experiment import ScenarioConfig, SerializableResult
from repro.errors import CampaignError, FaultError
from repro.faults import parse_fault_spec
from repro.schemes.registry import SCHEME_FACTORIES, validate_scheme_spec

__all__ = [
    "derive_seed",
    "canonical_params",
    "CampaignTask",
    "CampaignSpec",
    "ExperimentKind",
    "EXPERIMENTS",
    "execute_task",
]


def derive_seed(root_seed: int, *parts: object) -> int:
    """Derive an independent seed from ``root_seed`` and string-able parts.

    Uses a stable cryptographic hash (never Python's randomized ``hash``)
    so the same inputs give the same seed on every run, interpreter, and
    platform.  Distinct part tuples give statistically independent seeds.
    """
    material = json.dumps(
        [int(root_seed)] + [str(p) for p in parts], separators=(",", ":")
    )
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


def canonical_params(params: Mapping[str, object]) -> str:
    """A stable, order-independent text form of a parameter mapping."""
    if not params:
        return "-"
    return ",".join(f"{k}={params[k]}" for k in sorted(params))


def _canonical_json(value: object) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignTask:
    """One cell of a campaign grid: a single seeded experiment run.

    Tasks are self-contained (they carry the scenario overrides, not a
    reference back to the spec) so that a task dict alone determines the
    computation — that is what the result cache hashes.
    """

    experiment: str
    scheme: Optional[str]
    variant: Mapping[str, object]
    scenario: Mapping[str, object]
    trial: int
    seed: int

    @property
    def scheme_label(self) -> str:
        return self.scheme or "none"

    @property
    def cell(self) -> Tuple[str, str]:
        """The aggregation group this task belongs to (all trials share it)."""
        return (self.scheme_label, canonical_params(self.variant))

    def key(self) -> str:
        """Stable unique identifier of this task within any campaign."""
        return _canonical_json(self.to_dict())

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "scheme": self.scheme,
            "variant": dict(self.variant),
            "scenario": dict(self.scenario),
            "trial": self.trial,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignTask":
        payload = dict(data)
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise CampaignError(f"unknown task fields {sorted(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise CampaignError(f"invalid task payload: {exc}") from None


@dataclass(frozen=True)
class CampaignSpec:
    """A sweep grid: one experiment kind × schemes × variants × seeds."""

    experiment: str = "effectiveness"
    schemes: Tuple[Optional[str], ...] = (None,)
    variants: Tuple[Mapping[str, object], ...] = ()
    seeds: int = 5
    root_seed: int = 7
    scenario: Mapping[str, object] = field(default_factory=dict)
    name: str = ""
    #: Fault-injection sweep axis: each entry is a compact
    #: ``repro.faults`` spec string (or ``None`` for a clean LAN) and
    #: multiplies the grid like a scheme does.  The spec lands in each
    #: task's variant under the ``"faults"`` key, so cells, derived
    #: seeds, and cache keys all distinguish fault levels automatically.
    faults: Tuple[Optional[str], ...] = (None,)
    #: Trace sweep axis (``replay`` experiment only): each entry is a
    #: ``repro.replay`` source spec (``"pcap:PATH"``,
    #: ``"synthetic:rate=50k,churn=0.2"``) and multiplies the grid —
    #: schemes × traces sweep on the worker pool.  The spec lands in
    #: each task's variant under the ``"trace"`` key, exactly like the
    #: faults axis, so derived seeds and cache keys distinguish traces.
    traces: Tuple[Optional[str], ...] = (None,)

    def __post_init__(self) -> None:
        kind = EXPERIMENTS.get(self.experiment)
        if kind is None:
            raise CampaignError(
                f"unknown experiment {self.experiment!r}; "
                f"known: {sorted(EXPERIMENTS)}"
            )
        if self.seeds < 1:
            raise CampaignError(f"seeds must be >= 1, got {self.seeds}")
        if not self.schemes:
            raise CampaignError("a campaign needs at least one scheme")
        for scheme in self.schemes:
            if scheme is not None and not validate_scheme_spec(scheme):
                raise CampaignError(
                    f"unknown scheme {scheme!r}; known: "
                    f"{sorted(SCHEME_FACTORIES)}, '+'-joined stacks of "
                    "those (e.g. 'dai+arpwatch'), or None for the baseline"
                )
            if scheme is None and kind.requires_scheme:
                raise CampaignError(
                    f"experiment {self.experiment!r} needs a scheme; "
                    "None (baseline) is not allowed"
                )
        for variant in self.variants:
            # "faults" is a universal variant key (any experiment kind
            # accepts it); everything else must be kind-specific.
            bad = set(variant) - set(kind.variant_keys) - {"faults"}
            if bad:
                raise CampaignError(
                    f"variant keys {sorted(bad)} not understood by "
                    f"{self.experiment!r}; allowed: "
                    f"{sorted(kind.variant_keys)} (+ 'faults')"
                )
        if not self.faults:
            raise CampaignError(
                "faults must be non-empty; use (None,) for a clean LAN"
            )
        for fault in self.faults:
            try:
                parse_fault_spec(fault)
            except FaultError as exc:
                raise CampaignError(f"invalid fault spec {fault!r}: {exc}") from None
        has_variant_faults = any("faults" in v for v in self.variants)
        sweeping_faults = tuple(self.faults) != (None,)
        if has_variant_faults:
            if sweeping_faults:
                raise CampaignError(
                    "give faults either as the faults= sweep axis or "
                    "inside variants, not both"
                )
            for variant in self.variants:
                try:
                    parse_fault_spec(variant.get("faults"))
                except FaultError as exc:
                    raise CampaignError(
                        f"invalid variant fault spec: {exc}"
                    ) from None
        if "fault_spec" in self.scenario and (sweeping_faults or has_variant_faults):
            raise CampaignError(
                "scenario already pins fault_spec; a faults sweep would "
                "silently override it — drop one of the two"
            )
        if not self.traces:
            raise CampaignError(
                "traces must be non-empty; use (None,) when not sweeping traces"
            )
        sweeping_traces = tuple(self.traces) != (None,)
        has_variant_trace = any("trace" in v for v in self.variants)
        if sweeping_traces and self.experiment != "replay":
            raise CampaignError(
                f"the traces axis only applies to the 'replay' experiment, "
                f"not {self.experiment!r}"
            )
        if sweeping_traces and has_variant_trace:
            raise CampaignError(
                "give traces either as the traces= sweep axis or inside "
                "variants, not both"
            )
        from repro.errors import ReplayError
        from repro.replay import open_source

        for trace in self.traces:
            if trace is None:
                continue
            try:
                open_source(trace)
            except ReplayError as exc:
                raise CampaignError(
                    f"invalid trace spec {trace!r}: {exc}"
                ) from None
        # Validate the scenario overrides eagerly: a typo should fail at
        # spec construction, not inside a worker process.
        ScenarioConfig.from_dict(dict(self.scenario))

    @property
    def kind(self) -> "ExperimentKind":
        return EXPERIMENTS[self.experiment]

    def effective_variants(self) -> Tuple[Mapping[str, object], ...]:
        return self.variants if self.variants else self.kind.default_variants

    def tasks(self) -> List[CampaignTask]:
        """Expand the grid, deterministically, in cell-major order."""
        out: List[CampaignTask] = []
        scenario = dict(self.scenario)
        for scheme in self.schemes:
            for fault in self.faults:
                for trace in self.traces:
                    for variant in self.effective_variants():
                        cell_variant = dict(variant)
                        if fault is not None:
                            # The fault spec rides in the variant so cells,
                            # content-derived seeds, and cache keys all see it.
                            cell_variant["faults"] = fault
                        if trace is not None:
                            # Same rule for the trace axis.
                            cell_variant["trace"] = trace
                        for trial in range(self.seeds):
                            seed = derive_seed(
                                self.root_seed,
                                self.experiment,
                                scheme or "none",
                                _canonical_json(cell_variant),
                                _canonical_json(scenario),
                                trial,
                            )
                            out.append(
                                CampaignTask(
                                    experiment=self.experiment,
                                    scheme=scheme,
                                    variant=cell_variant,
                                    scenario=scenario,
                                    trial=trial,
                                    seed=seed,
                                )
                            )
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "schemes": list(self.schemes),
            "variants": [dict(v) for v in self.variants],
            "seeds": self.seeds,
            "root_seed": self.root_seed,
            "scenario": dict(self.scenario),
            "name": self.name,
            "faults": list(self.faults),
            "traces": list(self.traces),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        payload = dict(data)
        unknown = set(payload) - {f.name for f in fields(cls)}
        if unknown:
            raise CampaignError(f"unknown spec fields {sorted(unknown)}")
        if "schemes" in payload:
            payload["schemes"] = tuple(payload["schemes"])
        if "variants" in payload:
            payload["variants"] = tuple(dict(v) for v in payload["variants"])
        if "faults" in payload:
            payload["faults"] = tuple(payload["faults"])
        if "traces" in payload:
            payload["traces"] = tuple(payload["traces"])
        return cls(**payload)


# ======================================================================
# Experiment kinds: how one task maps onto an api.run call
# ======================================================================
def _scenario_config(
    task: CampaignTask,
    defaults: Optional[Mapping[str, object]] = None,
    **extra: object,
) -> ScenarioConfig:
    """Task scenario -> config; ``defaults`` yield to the task's scenario.

    A task variant's ``"faults"`` entry becomes the config's
    ``fault_spec`` (verbatim), which is how the campaign fault sweep
    reaches the scenario builder.
    """
    payload = dict(defaults or {})
    payload.update(task.scenario)
    payload.update(extra)
    payload["seed"] = task.seed
    fault = task.variant.get("faults")
    if fault is not None:
        payload["fault_spec"] = str(fault)
    return ScenarioConfig.from_dict(payload)


#: Scenario defaults of the historical no-attack measurements
#: (overhead / resolution-latency / footprint built their own config
#: with a Linux victim); an explicit scenario override still wins.
_QUIET_DEFAULTS = {"victim_profile": "linux"}


def _execute_effectiveness(task: CampaignTask) -> SerializableResult:
    return api.run(
        "effectiveness",
        _scenario_config(task),
        scheme=task.scheme,
        technique=str(task.variant.get("technique", "reply")),
    )


def _execute_false_positives(task: CampaignTask) -> SerializableResult:
    return api.run(
        "false-positives",
        _scenario_config(task, with_dhcp=True),
        scheme=task.scheme,
        duration=float(task.variant.get("duration", 600.0)),
    )


def _execute_detection_latency(task: CampaignTask) -> SerializableResult:
    return api.run(
        "detection-latency",
        _scenario_config(task),
        scheme=task.scheme,
        poison_rate=float(task.variant.get("poison_rate", 1.0)),
    )


def _execute_overhead(task: CampaignTask) -> SerializableResult:
    return api.run(
        "overhead",
        _scenario_config(task, defaults=_QUIET_DEFAULTS),
        scheme=task.scheme,
        n_hosts=int(task.variant.get("n_hosts", 8)),
        resolutions_per_host=int(task.variant.get("resolutions_per_host", 4)),
    )


def _execute_resolution_latency(task: CampaignTask) -> SerializableResult:
    return api.run(
        "resolution-latency",
        # Historical shape: a small 4-host LAN unless the scenario says more.
        _scenario_config(task, defaults={**_QUIET_DEFAULTS, "n_hosts": 4}),
        scheme=task.scheme,
        n_resolutions=int(task.variant.get("n_resolutions", 20)),
    )


def _execute_interception_timeline(task: CampaignTask) -> SerializableResult:
    return api.run(
        "interception-timeline",
        _scenario_config(task),
        scheme=task.scheme,
        duration=float(task.variant.get("duration", 120.0)),
        attack_at=float(task.variant.get("attack_at", 30.0)),
        ping_rate=float(task.variant.get("ping_rate", 2.0)),
        bin_seconds=float(task.variant.get("bin_seconds", 10.0)),
    )


def _execute_footprint(task: CampaignTask) -> SerializableResult:
    return api.run(
        "footprint",
        _scenario_config(task, defaults=_QUIET_DEFAULTS),
        scheme=task.scheme,
        n_hosts=int(task.variant.get("n_hosts", 8)),
        settle=float(task.variant.get("settle", 30.0)),
    )


def _execute_controller_failover(task: CampaignTask) -> SerializableResult:
    return api.run(
        "controller-failover",
        _scenario_config(task),
        scheme=task.scheme,
        fail_mode=str(task.variant.get("fail_mode", "open")),
        poison_interval=float(task.variant.get("poison_interval", 0.5)),
    )


def _execute_dhcp_starvation(task: CampaignTask) -> SerializableResult:
    return api.run(
        "dhcp-starvation",
        _scenario_config(task, with_dhcp=True),
        scheme=task.scheme,
        duration=float(task.variant.get("duration", 30.0)),
        rate_per_second=float(task.variant.get("rate_per_second", 30.0)),
    )


def _execute_campus_churn(task: CampaignTask) -> SerializableResult:
    return api.run(
        "campus-churn",
        _scenario_config(task),
        scheme=task.scheme,
        buildings=int(task.variant.get("buildings", 4)),
        leaves_per_building=int(task.variant.get("leaves_per_building", 2)),
        hosts_per_leaf=int(task.variant.get("hosts_per_leaf", 24)),
        talkers=(
            int(task.variant["talkers"]) if "talkers" in task.variant else None
        ),
        duration=float(task.variant.get("duration", 2.0)),
        shards=int(task.variant.get("shards", 0)),
    )


def _execute_replay(task: CampaignTask) -> SerializableResult:
    return api.run(
        "replay",
        _scenario_config(task),
        scheme=task.scheme,
        source=str(task.variant.get("trace", "synthetic:")),
        window=int(task.variant.get("window", 1024)),
        drain=float(task.variant.get("drain", 0.0)),
    )


@dataclass(frozen=True)
class ExperimentKind:
    """Binding between a campaign experiment name and its ``run_*`` call."""

    name: str
    execute: Callable[[CampaignTask], SerializableResult]
    metrics: Tuple[str, ...]
    variant_keys: Tuple[str, ...]
    default_variants: Tuple[Mapping[str, object], ...]
    requires_scheme: bool = False


#: All campaign-runnable experiment kinds.
EXPERIMENTS: Dict[str, ExperimentKind] = {
    kind.name: kind
    for kind in (
        ExperimentKind(
            name="effectiveness",
            execute=_execute_effectiveness,
            metrics=(
                "prevented",
                "detected",
                "detection_latency",
                "tp_alerts",
                "fp_alerts",
                "victim_poisoned_seconds",
                "packets_intercepted",
            ),
            variant_keys=("technique",),
            default_variants=({"technique": "reply"},),
        ),
        ExperimentKind(
            name="false-positives",
            execute=_execute_false_positives,
            metrics=("fp_alerts", "fp_per_hour", "info_alerts"),
            variant_keys=("duration",),
            default_variants=({"duration": 600.0},),
        ),
        ExperimentKind(
            name="detection-latency",
            execute=_execute_detection_latency,
            metrics=("detected", "detection_latency"),
            variant_keys=("poison_rate",),
            default_variants=({"poison_rate": 1.0},),
            requires_scheme=True,
        ),
        ExperimentKind(
            name="overhead",
            execute=_execute_overhead,
            metrics=(
                "frames_per_resolution",
                "bytes_per_resolution",
                "arp_frames",
                "scheme_messages",
            ),
            variant_keys=("n_hosts", "resolutions_per_host"),
            default_variants=({"n_hosts": 8},),
        ),
        ExperimentKind(
            name="resolution-latency",
            execute=_execute_resolution_latency,
            metrics=("mean_latency", "max_latency"),
            variant_keys=("n_resolutions",),
            default_variants=({"n_resolutions": 20},),
        ),
        ExperimentKind(
            name="interception-timeline",
            execute=_execute_interception_timeline,
            metrics=("peak_ratio", "mean_ratio"),
            variant_keys=("duration", "attack_at", "ping_rate", "bin_seconds"),
            default_variants=({"duration": 120.0},),
        ),
        ExperimentKind(
            name="footprint",
            execute=_execute_footprint,
            metrics=("state_entries", "scheme_messages", "switch_cam_entries"),
            variant_keys=("n_hosts", "settle"),
            default_variants=({"n_hosts": 8},),
        ),
        ExperimentKind(
            name="controller-failover",
            execute=_execute_controller_failover,
            metrics=(
                "guard_drops",
                "fallback_entered",
                "recovered",
                "poisoned_during_flap",
                "poisoned_outside_flap",
                "evictions",
            ),
            variant_keys=("fail_mode", "poison_interval"),
            default_variants=({"fail_mode": "open"}, {"fail_mode": "closed"}),
            requires_scheme=True,
        ),
        ExperimentKind(
            name="dhcp-starvation",
            execute=_execute_dhcp_starvation,
            metrics=("leases_captured", "pool_free", "exhausted"),
            variant_keys=("duration", "rate_per_second"),
            default_variants=({"duration": 30.0},),
        ),
        ExperimentKind(
            name="campus-churn",
            execute=_execute_campus_churn,
            metrics=(
                "deliveries",
                "deliveries_per_sec",
                "events",
                "alerts",
                "wall_seconds",
            ),
            variant_keys=(
                "buildings",
                "leaves_per_building",
                "hosts_per_leaf",
                "talkers",
                "duration",
                "shards",
            ),
            default_variants=({"shards": 0}, {"shards": 2}),
        ),
        ExperimentKind(
            name="replay",
            execute=_execute_replay,
            metrics=(
                "frames",
                "delivered",
                "alerts",
                "frames_per_sec",
                "wall_seconds",
            ),
            variant_keys=("trace", "window", "drain"),
            default_variants=({"trace": "synthetic:"},),
        ),
    )
}


def execute_task(task: CampaignTask) -> Dict[str, object]:
    """Run one task and return its result as a JSON-safe dict.

    This is the unit of work shipped to campaign worker processes; the
    dict form crosses the process boundary and lands in the cache.

    Alongside the experiment result, the payload carries an ``_obs``
    section: the *delta* of the process-global metrics registry (labeled
    metrics plus the perf counter block) over this task.  Fork-workers
    inherit the parent's counts, so only the delta is safe to merge back
    without double counting.  The runner strips ``_obs`` before the
    result is stored or cached, and merges it into the parent registry
    when the task ran in a separate process.
    """
    kind = EXPERIMENTS.get(task.experiment)
    if kind is None:
        raise CampaignError(f"unknown experiment {task.experiment!r}")
    from repro.obs import REGISTRY

    before = REGISTRY.snapshot()
    payload = kind.execute(task).to_dict()
    payload["_obs"] = REGISTRY.delta(before)
    return payload
