"""On-disk JSON result cache for campaign tasks.

Each completed task is stored as one JSON file named by a content hash
of (task cell, code fingerprint).  Re-running a campaign only computes
cells whose key is absent — a spec edit, a new seed, or a change to the
experiment code all produce new keys, so stale results can never be
served.  Corrupt or unreadable entries are treated as misses (with a
warning) and recomputed; the cache never crashes a campaign.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import warnings
from functools import lru_cache
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro._version import __version__
from repro.campaign.spec import CampaignTask

__all__ = ["ResultCache", "code_fingerprint"]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the code that produces results, for cache invalidation.

    Covers the package version plus the source of the experiment and
    campaign-spec modules: editing either changes every cache key.  In
    environments where source is unavailable (zipped installs), falls
    back to the version string alone.
    """
    hasher = hashlib.sha256(__version__.encode("utf-8"))
    try:
        import repro.campaign.spec as spec_module
        import repro.core.experiment as experiment_module

        for module in (experiment_module, spec_module):
            hasher.update(inspect.getsource(module).encode("utf-8"))
    except (OSError, TypeError):  # pragma: no cover - zipped/frozen installs
        pass
    return hasher.hexdigest()[:16]


class ResultCache:
    """Content-addressed store of task results under one directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def task_key(self, task: CampaignTask) -> str:
        """Content hash identifying ``task`` under the current code."""
        material = json.dumps(
            {"task": task.to_dict(), "code": code_fingerprint()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached result dict for ``key``, or ``None`` on a miss.

        A corrupt entry (truncated write, bad JSON, wrong shape) is
        deleted, warned about, and reported as a miss.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
            result = payload["result"]
            if not isinstance(result, dict):
                raise ValueError("cache entry 'result' is not a dict")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"discarding corrupt campaign cache entry {path.name}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(
        self, key: str, task: CampaignTask, result: Mapping[str, object]
    ) -> None:
        """Store ``result`` for ``key`` atomically (write temp, rename)."""
        payload = {"key": key, "task": task.to_dict(), "result": dict(result)}
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with tmp.open("w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            tmp.replace(path)
        except OSError as exc:  # a full/read-only disk must not kill the run
            warnings.warn(
                f"could not write campaign cache entry {path.name}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                tmp.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
