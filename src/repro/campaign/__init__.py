"""repro.campaign — parallel experiment campaigns with caching.

A *campaign* sweeps one experiment kind over a schemes × variants ×
seeds grid, executes the cells on a multiprocessing worker pool (with
per-task timeouts and bounded retries), serves repeat cells from an
on-disk result cache, and aggregates per-seed results into multi-trial
statistics rendered as standard report artifacts.

Typical use::

    from repro.campaign import CampaignSpec, ResultCache, run_campaign, to_artifact

    spec = CampaignSpec(
        experiment="effectiveness",
        schemes=(None, "dai", "arpwatch"),
        variants=({"technique": "reply"}, {"technique": "gratuitous"}),
        seeds=8,
    )
    campaign = run_campaign(spec, jobs=4, cache=ResultCache(".repro_cache"))
    print(to_artifact(campaign).rendered)

See ``docs/campaigns.md`` for the spec format, determinism guarantees,
and cache-key semantics.
"""

from repro.campaign.aggregate import (
    CellAggregate,
    MetricStats,
    aggregate,
    publish_metrics,
    to_artifact,
)
from repro.campaign.cache import ResultCache, code_fingerprint
from repro.campaign.runner import CampaignResult, TaskFailure, run_campaign
from repro.campaign.spec import (
    EXPERIMENTS,
    CampaignSpec,
    CampaignTask,
    ExperimentKind,
    canonical_params,
    derive_seed,
    execute_task,
)

__all__ = [
    "EXPERIMENTS",
    "CampaignResult",
    "CampaignSpec",
    "CampaignTask",
    "CellAggregate",
    "ExperimentKind",
    "MetricStats",
    "ResultCache",
    "TaskFailure",
    "aggregate",
    "canonical_params",
    "code_fingerprint",
    "derive_seed",
    "execute_task",
    "publish_metrics",
    "run_campaign",
    "to_artifact",
]
