"""Partitioned simulation: per-domain event loops + conservative lookahead.

A single :class:`~repro.sim.simulator.Simulator` dispatches every event in
the topology through one heap, which caps a campus-scale scenario at one
core and one giant queue.  This module splits the simulation by switch
domain:

* a :class:`Partition` is a full event engine (it *is* a ``Simulator`` —
  the tuple-keyed heap and the fused run loop now serve per-domain) that
  additionally owns the switches/hosts/links of its domain;
* a :class:`Boundary` is the cross-partition cable: it mimics
  :class:`~repro.l2.device.Link`'s transmit surface byte-for-byte (same
  delay expression, evaluated in the same order, so arrival timestamps
  are float-identical to a single-simulator run) but, instead of
  scheduling directly, it posts a timestamped :class:`Envelope` to the
  coordinator;
* a :class:`ShardedSimulator` advances all partitions in **conservative
  lookahead windows**: every boundary latency is at least ``lookahead``
  seconds, so no frame sent during a window ``[t, t + lookahead]`` can
  arrive inside it — partitions run the window independently, then
  envelopes are flushed into their destination heaps before the next
  window opens.  No null messages, no rollback.

Determinism contract: each partition derives its RNG streams from the
same ``(seed, name)`` scheme as an unsharded simulator, device names are
unique across the fabric, and envelope flushes reuse the exact batched /
per-event delivery mechanics of :class:`~repro.l2.device.Link` — so a
fixed-seed run produces identical frame timestamps, CAM state, and scheme
alerts whether it is sharded or not (``tests/test_shard_equivalence.py``
pins this property).

Process sharding reuses the ``repro.campaign`` machinery: partitions are
grouped into fork workers, window barriers run over pipes, and each
worker ships home its ``REGISTRY.delta`` (which carries the PERF counter
block through the ``perf`` collector's merge hook) exactly like a
campaign task's ``_obs`` payload.  Telemetry and heartbeats are per
shard: a worker ticks the attached recorder against a view of its own
partitions only, and writes its own heartbeat file.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import SimulationError, TopologyError
from repro.obs.live import default_recorder as _default_recorder
from repro.obs.registry import REGISTRY
from repro.obs.trace import TRACER
from repro.sim.simulator import Simulator

__all__ = [
    "Boundary",
    "Envelope",
    "Partition",
    "ShardedSimulator",
]

#: Pipe poll budget for one window barrier; a shard silent this long is
#: treated as dead (matches the campaign runner's per-task watchdog
#: philosophy: fail loudly instead of hanging the coordinator).
_SHARD_TIMEOUT = 300.0


class Envelope(NamedTuple):
    """One cross-partition frame in flight.

    Addressing is by name + port index (not object reference) so an
    envelope survives a pickle hop between shard processes unchanged.
    """

    when: float
    partition: str
    device: str
    port: int
    payload: bytes


class Partition(Simulator):
    """One switch domain: an event engine that owns its devices.

    Behaves exactly like a standalone :class:`Simulator` (same heap, same
    fused run loop, same seeded streams), which is what keeps fixed-seed
    single-partition runs byte-identical to the pre-sharding engine.  The
    additions are a name and a device registry used to resolve envelope
    addresses arriving from other partitions.
    """

    def __init__(
        self, name: str, seed: int = 0, batching: Optional[bool] = None
    ) -> None:
        super().__init__(seed=seed, batching=batching)
        self.name = name
        #: Devices of this domain by name (switches, hosts, routers).
        self.devices: Dict[str, object] = {}

    def register(self, device):
        """Claim ``device`` for this partition (needed for envelope routing)."""
        existing = self.devices.get(device.name)
        if existing is not None and existing is not device:
            raise TopologyError(
                f"partition {self.name!r} already has a device named "
                f"{device.name!r}"
            )
        self.devices[device.name] = device
        return device

    def device(self, name: str):
        try:
            return self.devices[name]
        except KeyError:
            raise TopologyError(
                f"partition {self.name!r} has no device {name!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partition({self.name!r}, now={self._now:.6f}, "
            f"devices={len(self.devices)}, pending={self.pending()})"
        )


class _Endpoint(NamedTuple):
    """One side of a boundary: the partition and the port's stable address."""

    partition: Partition
    port: object
    device: str
    index: int


class Boundary:
    """A cross-partition link.

    Duck-types the transmit half of :class:`~repro.l2.device.Link` (ports
    call ``link.carry`` / ``link.carry_batch``), computes the *identical*
    delay expression, and posts envelopes to the coordinator instead of
    scheduling — the destination partition schedules the delivery itself
    at flush time, through the same coalesced/per-event mechanics a local
    link would have used.

    Boundaries carry no fault hooks and no trace recorder: impairments
    and sniffers belong on intra-domain links (campus spine links are
    clean trunks).  ``latency`` must be >= the coordinator's lookahead,
    which holds by construction since the lookahead is derived as the
    minimum boundary latency.
    """

    def __init__(
        self,
        coordinator: "ShardedSimulator",
        a: _Endpoint,
        b: _Endpoint,
        latency: float,
        rate_bps: float,
    ) -> None:
        if latency <= 0:
            raise TopologyError(
                f"boundary latency must be positive (it is the lookahead "
                f"window), got {latency}"
            )
        if rate_bps <= 0:
            raise TopologyError(f"non-positive rate: {rate_bps}")
        for end in (a, b):
            if end.port.attached:
                raise TopologyError(f"{end.port.name} is already attached")
        self._coordinator = coordinator
        self.a = a
        self.b = b
        self.latency = latency
        self.rate_bps = rate_bps
        self._seconds_per_byte = 8.0 / rate_bps
        self.frames_carried = 0
        self.bytes_carried = 0
        a.port.link = self
        b.port.link = self
        a.port.peer = b.port
        b.port.peer = a.port

    def _ends(self, sender) -> Tuple[_Endpoint, _Endpoint]:
        if sender is self.a.port:
            return self.a, self.b
        if sender is self.b.port:
            return self.b, self.a
        raise TopologyError(f"{sender.name} is not an endpoint of this boundary")

    def carry(self, sender, data: bytes) -> None:
        """Post ``data`` toward the opposite partition as an envelope."""
        src, dst = self._ends(sender)
        self.frames_carried += 1
        self.bytes_carried += len(data)
        # Byte-for-byte the Link.carry delay expression, evaluated against
        # the *sending* partition's clock — identical float result.
        delay = self.latency + len(data) * self._seconds_per_byte
        when = src.partition.now + delay
        self._coordinator._post(
            Envelope(when, dst.partition.name, dst.device, dst.index, bytes(data))
        )

    def carry_batch(self, sender, datas) -> None:
        """Batch egress: one envelope per frame, in batch (== wire) order."""
        src, dst = self._ends(sender)
        self.frames_carried += len(datas)
        self.bytes_carried += sum(map(len, datas))
        now = src.partition.now
        latency = self.latency
        spb = self._seconds_per_byte
        post = self._coordinator._post
        name = dst.partition.name
        device = dst.device
        index = dst.index
        for data in datas:
            post(Envelope(now + (latency + len(data) * spb), name, device, index, bytes(data)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Boundary({self.a.partition.name}:{self.a.port.name} <-> "
            f"{self.b.partition.name}:{self.b.port.name}, "
            f"latency={self.latency})"
        )


class _ShardView:
    """A shard worker's view of the fabric: its own partitions only.

    Handed to the telemetry recorder inside fork workers so per-shard
    snapshots aggregate the partitions that shard actually advances,
    instead of summing in stale copies of everyone else's heaps.
    """

    def __init__(self, owned: List[Partition]) -> None:
        self._owned = owned

    @property
    def now(self) -> float:
        return min((p.now for p in self._owned), default=0.0)

    @property
    def events_processed(self) -> int:
        return sum(p.events_processed for p in self._owned)

    def pending(self) -> int:
        return sum(p.pending() for p in self._owned)

    @property
    def heap_depth(self) -> int:
        return sum(p.heap_depth for p in self._owned)

    def heap_depths(self) -> Dict[str, int]:
        return {p.name: p.heap_depth for p in self._owned}


class ShardedSimulator:
    """Coordinator: conservative-lookahead advance over named partitions.

    Parameters
    ----------
    seed:
        Shared by every partition; RNG streams stay keyed by ``(seed,
        name)``, so a component draws the same sequence regardless of
        which partition (or how many) it lives in.
    batching:
        Per-partition batched data plane flag (``None`` = process default).
    lookahead:
        Explicit safe-window override.  Must not exceed the minimum
        boundary latency; ``None`` (default) derives exactly that
        minimum.
    """

    def __init__(
        self,
        seed: int = 0,
        batching: Optional[bool] = None,
        lookahead: Optional[float] = None,
    ) -> None:
        self.seed = seed
        self.batching = batching
        self.partitions: Dict[str, Partition] = {}
        self.boundaries: List[Boundary] = []
        self._explicit_lookahead = lookahead
        self._outbox: List[Envelope] = []
        self.windows = 0
        self.envelopes_routed = 0
        #: Set by a process-sharded run: (events, now) as reported by the
        #: workers — the parent's partition objects are pre-fork copies.
        self._remote_totals: Optional[Tuple[int, float]] = None
        self.telemetry = None
        recorder = _default_recorder()
        if recorder is not None:
            recorder.attach(self)

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_partition(self, name: str) -> Partition:
        if name in self.partitions:
            raise TopologyError(f"duplicate partition name {name!r}")
        partition = Partition(name, seed=self.seed, batching=self.batching)
        # Partitions are sampled through the coordinator's aggregate view
        # (sum + per-partition breakdown); detach the per-sim recorder the
        # Simulator constructor may have auto-attached.
        if partition.telemetry is not None:
            partition.telemetry.detach(partition)
        self.partitions[name] = partition
        return partition

    def partition_of(self, device) -> Partition:
        for partition in self.partitions.values():
            if partition.devices.get(device.name) is device:
                return partition
        raise TopologyError(f"{device.name!r} is not registered in any partition")

    def connect(
        self,
        port_a,
        port_b,
        latency: float,
        rate_bps: float = 100e6,
    ) -> Boundary:
        """Join two ports of *different* partitions with a boundary link.

        Both ports' devices must already be registered
        (:meth:`Partition.register`) so envelopes can be addressed by
        ``(partition, device, port)`` name across process hops.
        """
        end_a = self._endpoint(port_a)
        end_b = self._endpoint(port_b)
        if end_a.partition is end_b.partition:
            raise TopologyError(
                f"{port_a.name} and {port_b.name} are both in partition "
                f"{end_a.partition.name!r}; use a plain Link inside a domain"
            )
        boundary = Boundary(self, end_a, end_b, latency=latency, rate_bps=rate_bps)
        self.boundaries.append(boundary)
        return boundary

    def _endpoint(self, port) -> _Endpoint:
        device = port.device
        partition = self.partition_of(device)
        return _Endpoint(partition, port, device.name, port.index)

    # ------------------------------------------------------------------
    # Aggregate clock/telemetry surface (sim-alike for the recorder)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Conservative frontier: the clock of the furthest-behind partition."""
        if self._remote_totals is not None:
            return self._remote_totals[1]
        return min((p.now for p in self.partitions.values()), default=0.0)

    @property
    def events_processed(self) -> int:
        if self._remote_totals is not None:
            return self._remote_totals[0]
        return sum(p.events_processed for p in self.partitions.values())

    def pending(self) -> int:
        return sum(p.pending() for p in self.partitions.values())

    @property
    def heap_depth(self) -> int:
        return sum(p.heap_depth for p in self.partitions.values())

    def heap_depths(self) -> Dict[str, int]:
        """Per-partition raw heap length — the telemetry breakdown."""
        return {name: p.heap_depth for name, p in self.partitions.items()}

    @property
    def lookahead(self) -> float:
        """The safe window: min boundary latency (or the explicit override)."""
        if not self.boundaries:
            if self._explicit_lookahead is not None:
                return self._explicit_lookahead
            raise SimulationError(
                "no boundaries to derive a lookahead from; pass lookahead="
            )
        floor = min(b.latency for b in self.boundaries)
        if self._explicit_lookahead is None:
            return floor
        if self._explicit_lookahead > floor:
            raise SimulationError(
                f"lookahead {self._explicit_lookahead} exceeds the minimum "
                f"boundary latency {floor}; frames could arrive inside a window"
            )
        return self._explicit_lookahead

    # ------------------------------------------------------------------
    # Envelope routing
    # ------------------------------------------------------------------
    def _post(self, envelope: Envelope) -> None:
        """Called by boundaries mid-window; flushed at the barrier."""
        self._outbox.append(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        """Schedule one envelope into its destination partition.

        Reuses the exact Link delivery mechanics: coalesced batch flush
        keyed on the precomputed absolute ``(when, port)`` when the
        destination plane batches, per-event dispatch otherwise — so a
        cross-partition frame is indistinguishable, timestamp and batch
        shape included, from one that crossed a local link.
        """
        partition = self.partitions[envelope.partition]
        port = partition.device(envelope.device).ports[envelope.port]
        self.envelopes_routed += 1
        if partition.batching and not TRACER.enabled:
            partition.coalesce_at(envelope.when, port, envelope.payload)
        else:
            partition.schedule_at(
                envelope.when,
                partial(port.deliver, envelope.payload),
                name="boundary.carry",
            )

    def _flush_outbox(self) -> None:
        outbox = self._outbox
        if not outbox:
            return
        self._outbox = []
        for envelope in outbox:
            self._deliver(envelope)

    # ------------------------------------------------------------------
    # In-process conservative-lookahead run
    # ------------------------------------------------------------------
    def run(self, until: float, max_events: int = 50_000_000) -> None:
        """Advance every partition to exactly ``until``.

        Window loop: find the earliest pending event across partitions,
        run everyone to ``min(until, t_min + lookahead)``, flush the
        envelopes generated during the window (all of which arrive at or
        after the window end — that is what the lookahead guarantees),
        repeat.  Partitions with nothing to do skip ahead for free.
        """
        parts = list(self.partitions.values())
        if not parts:
            raise SimulationError("no partitions to run")
        if len(parts) == 1 and not self.boundaries:
            parts[0].run(until=until, max_events=max_events)
            if self.telemetry is not None:
                self.telemetry.run_end(self)
            return
        lookahead = self.lookahead
        while True:
            # Flush first: envelopes may predate the run (frames sent at
            # construction time, before any window opened), and every
            # queued envelope's arrival is >= the last window end, i.e.
            # schedulable on its destination's clock.  Flushing here also
            # lets the queued arrivals participate in picking t_min.
            self._flush_outbox()
            t_min = None
            for p in parts:
                t = p.next_event_time()
                if t is not None and (t_min is None or t < t_min):
                    t_min = t
            if t_min is None or t_min > until:
                break
            window_end = min(until, t_min + lookahead)
            for p in parts:
                p.run(until=window_end, max_events=max_events)
            self.windows += 1
            if self.telemetry is not None:
                self.telemetry.tick(self)
        # No event <= `until` remains and the outbox is empty (flushed
        # before the break; the drain below fires nothing, it only pins
        # every clock to exactly `until` so post-run measurements line up
        # across partitions and with an unsharded run).
        for p in parts:
            p.run(until=until, max_events=max_events)
        if self.telemetry is not None:
            self.telemetry.run_end(self)

    # ------------------------------------------------------------------
    # Process-sharded run (fork worker pool, campaign-style delta merge)
    # ------------------------------------------------------------------
    def run_sharded(
        self,
        until: float,
        jobs: int = 2,
        heartbeat_dir=None,
    ) -> Dict[str, object]:
        """Advance to ``until`` with partitions sharded over ``jobs`` forks.

        The window barrier runs over pipes: the parent picks the global
        horizon from the shards' reported next-event times (plus any
        envelopes still in flight), broadcasts the window, routes the
        envelopes each shard emitted to the shards owning their
        destination partitions, and repeats.  On finish every worker
        ships its ``REGISTRY.delta`` home — PERF rides along through the
        registry's ``perf`` collector merge hook — exactly like a
        campaign ``_obs`` payload, so parent-side metrics reflect the
        whole fabric with no double counting.

        Falls back to the in-process loop when ``jobs <= 1``, when there
        are fewer partitions than shards would help with, or on platforms
        without ``fork``.  Returns a summary dict (events, windows,
        shards, envelopes).
        """
        from repro.campaign.runner import _fork_context

        import multiprocessing

        parts = list(self.partitions.values())
        if not parts:
            raise SimulationError("no partitions to run")
        ctx = _fork_context()
        # Inside a daemonic campaign worker, forking again is forbidden —
        # the task already has a process of its own; the in-process window
        # loop is the same engine minus the pipes.
        if (
            jobs <= 1
            or len(parts) < 2
            or ctx is None
            or multiprocessing.current_process().daemon
        ):
            self.run(until)
            return {
                "events": self.events_processed,
                "windows": self.windows,
                "shards": 1,
                "envelopes": self.envelopes_routed,
            }
        jobs = min(jobs, len(parts))
        lookahead = self.lookahead
        groups: List[List[Partition]] = [[] for _ in range(jobs)]
        for i, p in enumerate(parts):
            groups[i % jobs].append(p)
        shard_of = {
            p.name: i for i, group in enumerate(groups) for p in group
        }
        # Envelopes posted before the run (frames sent at construction
        # time) must be routed by the parent — drained *before* the fork
        # so workers inherit an empty outbox.
        queued: List[List[Envelope]] = [[] for _ in range(jobs)]
        for envelope in self._outbox:
            queued[shard_of[envelope.partition]].append(envelope)
        self._outbox = []

        workers = []
        try:
            for i, group in enumerate(groups):
                parent_conn, child_conn = ctx.Pipe()
                hb_path = None
                if heartbeat_dir is not None:
                    from pathlib import Path

                    hb_path = Path(heartbeat_dir) / f"shard-{i}.heartbeat.json"
                proc = ctx.Process(
                    target=self._shard_worker,
                    args=([p.name for p in group], child_conn, hb_path),
                )
                proc.start()
                child_conn.close()
                workers.append((proc, parent_conn))

            next_times: List[Optional[float]] = [
                min(
                    (t for t in (p.next_event_time() for p in group) if t is not None),
                    default=None,
                )
                for group in groups
            ]
            windows = 0
            while True:
                t_min: Optional[float] = None
                for i in range(jobs):
                    candidates = [next_times[i]] + [e.when for e in queued[i]]
                    for t in candidates:
                        if t is not None and (t_min is None or t < t_min):
                            t_min = t
                if t_min is None or t_min > until:
                    break
                window_end = min(until, t_min + lookahead)
                for i, (_proc, conn) in enumerate(workers):
                    conn.send(("window", window_end, queued[i]))
                    queued[i] = []
                for i, (proc, conn) in enumerate(workers):
                    kind, *rest = self._recv(proc, conn)
                    if kind == "error":
                        raise SimulationError(f"shard {i} failed: {rest[0]}")
                    next_t, outgoing = rest
                    next_times[i] = next_t
                    self.envelopes_routed += len(outgoing)
                    for envelope in outgoing:
                        queued[shard_of[envelope.partition]].append(envelope)
                windows += 1

            events = 0
            for i, (proc, conn) in enumerate(workers):
                conn.send(("finish", until, queued[i]))
                queued[i] = []
            for i, (proc, conn) in enumerate(workers):
                kind, payload = self._recv(proc, conn)
                if kind == "error":
                    raise SimulationError(f"shard {i} failed: {payload}")
                events += payload["events"]
                REGISTRY.merge(payload["obs"])
            self._remote_totals = (events, until)
            self.windows += windows
            if self.telemetry is not None:
                self.telemetry.run_end(self)
            return {
                "events": events,
                "windows": windows,
                "shards": jobs,
                "envelopes": self.envelopes_routed,
            }
        finally:
            for proc, conn in workers:
                conn.close()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - hung shard
                    proc.terminate()
                    proc.join(timeout=5.0)

    @staticmethod
    def _recv(proc, conn):
        if not conn.poll(_SHARD_TIMEOUT):
            raise SimulationError(
                f"shard (pid {proc.pid}) silent for {_SHARD_TIMEOUT}s at a "
                "window barrier"
            )
        return conn.recv()

    def _shard_worker(self, names: List[str], conn, heartbeat_path) -> None:
        """Fork-worker body: advance the owned partitions window by window."""
        owned = [self.partitions[name] for name in names]
        view = _ShardView(owned)
        before = REGISTRY.snapshot()
        heartbeat = None
        if heartbeat_path is not None:
            from repro.obs.watchdog import Heartbeat

            try:
                heartbeat = Heartbeat(
                    heartbeat_path,
                    name=f"shard:{','.join(names)}",
                ).start()
            except OSError:  # pragma: no cover - heartbeat dir vanished
                heartbeat = None
        try:
            while True:
                command = conn.recv()
                kind = command[0]
                if kind == "window":
                    _, window_end, incoming = command
                    for envelope in incoming:
                        self._deliver(envelope)
                    for p in owned:
                        p.run(until=window_end)
                    outgoing = self._outbox
                    self._outbox = []
                    next_t = min(
                        (
                            t
                            for t in (p.next_event_time() for p in owned)
                            if t is not None
                        ),
                        default=None,
                    )
                    conn.send(("done", next_t, outgoing))
                    if self.telemetry is not None:
                        self.telemetry.tick(view)
                elif kind == "finish":
                    _, final_until, incoming = command
                    for envelope in incoming:
                        self._deliver(envelope)
                    for p in owned:
                        p.run(until=final_until)
                    if self.telemetry is not None:
                        self.telemetry.run_end(view)
                    conn.send(
                        (
                            "result",
                            {
                                "events": view.events_processed,
                                "now": final_until,
                                "obs": REGISTRY.delta(before),
                            },
                        )
                    )
                    return
                else:  # pragma: no cover - protocol guard
                    raise SimulationError(f"unknown shard command {kind!r}")
        except (EOFError, KeyboardInterrupt):  # pragma: no cover
            return
        except Exception as exc:  # noqa: BLE001 - ship the failure home
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        finally:
            if heartbeat is not None:
                try:
                    heartbeat.stop()
                except Exception:  # pragma: no cover  # noqa: BLE001
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def rng_stream(self, name: str):
        """Coordinator-level stream (same keying as any partition's)."""
        import random

        return random.Random(f"{self.seed}/{name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSimulator(partitions={len(self.partitions)}, "
            f"boundaries={len(self.boundaries)}, now={self.now:.6f}, "
            f"windows={self.windows})"
        )
