"""Discrete-event simulation engine and trace capture."""

from repro.sim.simulator import Event, Simulator
from repro.sim.trace import Direction, TraceRecord, TraceRecorder

__all__ = ["Event", "Simulator", "Direction", "TraceRecord", "TraceRecorder"]
