"""Discrete-event simulation engine and trace capture."""

from repro.sim.partition import Boundary, Envelope, Partition, ShardedSimulator
from repro.sim.simulator import Event, Simulator
from repro.sim.trace import Direction, TraceRecord, TraceRecorder

__all__ = [
    "Boundary",
    "Envelope",
    "Event",
    "Partition",
    "ShardedSimulator",
    "Simulator",
    "Direction",
    "TraceRecord",
    "TraceRecorder",
]
