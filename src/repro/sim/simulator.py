"""Deterministic discrete-event simulation engine.

The simulator is the clock and scheduler every other component hangs off.
It is intentionally small: a priority queue of timestamped callbacks with a
deterministic tie-break, a seeded random source factory, and run-until
helpers.  Determinism is a hard requirement — two runs with the same seed
must produce byte-identical traces, because the analysis framework compares
schemes across runs and the test suite asserts on exact event orders.

Example
-------
>>> sim = Simulator(seed=7)
>>> fired = []
>>> sim.schedule(1.5, lambda: fired.append("b"))
>>> sim.schedule(0.5, lambda: fired.append("a"))
>>> sim.run()
>>> fired
['a', 'b']
>>> sim.now
1.5
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import ClockError, SimulationError

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    insertion counter, so two events at the same instant fire in the order
    they were scheduled.  Cancelled events stay in the heap but are skipped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing (idempotent)."""
        self.cancelled = True


class Simulator:
    """Event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the root random stream.  Component-specific streams are
        derived with :meth:`rng_stream` so adding a new consumer does not
        perturb the draws seen by existing ones.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._seed = seed
        self._running = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        """The seed this simulator was built with."""
        return self._seed

    def rng_stream(self, name: str) -> random.Random:
        """Return an independent, reproducible random stream.

        The stream is keyed by ``(seed, name)`` so that every component
        drawing randomness (traffic generator, attacker jitter, MAC
        allocator...) is isolated from the others.
        """
        return random.Random(f"{self._seed}/{name}")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        name: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, name)

    def schedule_at(
        self,
        when: float,
        action: Callable[[], None],
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute time ``when``."""
        if when < self._now:
            raise ClockError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        event = Event(time=when, seq=next(self._counter), action=action, name=name)
        heapq.heappush(self._heap, event)
        return event

    def call_every(
        self,
        interval: float,
        action: Callable[[], None],
        name: str = "",
        start: Optional[float] = None,
        jitter: Optional[Callable[[], float]] = None,
    ) -> Callable[[], None]:
        """Run ``action`` periodically; returns a canceller callable.

        ``jitter``, when given, is called before each firing and its result
        (seconds, may be negative but clamped at zero) is added to the
        interval.  Used by attackers and traffic sources to avoid lockstep.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        state = {"event": None, "stopped": False}

        def fire() -> None:
            if state["stopped"]:
                return
            action()
            reschedule()

        def reschedule() -> None:
            if state["stopped"]:
                return
            extra = jitter() if jitter is not None else 0.0
            delay = max(0.0, interval + extra)
            state["event"] = self.schedule(delay, fire, name=name)

        def cancel() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                event.cancel()

        first_delay = interval if start is None else max(0.0, start - self._now)
        state["event"] = self.schedule(first_delay, fire, name=name)
        return cancel

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event; return ``False`` when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise ClockError("event heap yielded an event in the past")
            self._now = event.time
            self.events_processed += 1
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains early, so post-run measurements line up
        across scenarios.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._heap:
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                if not self.step():
                    break
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway schedule?"
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def _peek(self) -> Optional[Event]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def iter_pending(self) -> Iterator[Event]:
        """Yield live queued events in firing order (for diagnostics)."""
        for event in sorted(self._heap):
            if not event.cancelled:
                yield event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending()}, "
            f"processed={self.events_processed})"
        )
