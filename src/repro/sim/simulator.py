"""Deterministic discrete-event simulation engine.

The simulator is the clock and scheduler every other component hangs off.
It is intentionally small: a priority queue of timestamped callbacks with a
deterministic tie-break, a seeded random source factory, and run-until
helpers.  Determinism is a hard requirement — two runs with the same seed
must produce byte-identical traces, because the analysis framework compares
schemes across runs and the test suite asserts on exact event orders.

Internally the heap stores plain ``(time, seq, event)`` tuples so ordering
comparisons run in C instead of through a Python ``__lt__`` — on wire-heavy
workloads the heap siftup is a measurable fraction of the run.  Cancelled
events are skipped lazily on pop, and the heap is compacted whenever
cancelled entries outnumber live ones (see :meth:`Event.cancel`), so
long-running simulations that arm and cancel many timers (ARP retries,
cache aging) do not leak.

Same-timestamp deliveries to one sink can additionally be *coalesced*
(:meth:`Simulator.coalesce`): all items landing on the same ``(time,
sink)`` pair share one flush event that hands ``sink.deliver_batch`` the
whole batch at once, instead of one event per frame.  This is the batched
data plane's entry point; per-event dispatch remains the fallback
(``batching=False``), and both paths compute identical delivery
timestamps from the same expressions, so fixed-seed runs stay
reproducible either way.

Example
-------
>>> sim = Simulator(seed=7)
>>> fired = []
>>> sim.schedule(1.5, lambda: fired.append("b"))
>>> sim.schedule(0.5, lambda: fired.append("a"))
>>> sim.run()
>>> fired
['a', 'b']
>>> sim.now
1.5
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Iterator, Optional, Sequence

from repro.errors import ClockError, SimulationError
from repro.obs.live import default_recorder as _default_recorder
from repro.obs.trace import TRACER
from repro.perf import PERF

__all__ = ["Event", "Simulator", "DEFAULT_BATCHING"]

#: Compaction never triggers below this many cancelled entries — tiny heaps
#: are cheaper to skip through than to rebuild.
_COMPACT_MIN_CANCELLED = 64

#: Process-wide default for :class:`Simulator` batching.  ``repro bench
#: --no-batch`` (and the CI batch-off smoke job) flip this to prove the
#: per-event fallback path still works and still meets its own gate.
DEFAULT_BATCHING = True


class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    insertion counter, so two events at the same instant fire in the order
    they were scheduled.  Cancelling marks the event dead; the simulator
    skips dead entries on pop and compacts the heap when they pile up.
    """

    __slots__ = ("time", "seq", "action", "name", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        name: str = "",
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.name = name
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:  # still queued: let the owner account for it
            sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}, name={self.name!r}{state})"


class Simulator:
    """Event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the root random stream.  Component-specific streams are
        derived with :meth:`rng_stream` so adding a new consumer does not
        perturb the draws seen by existing ones.
    """

    def __init__(self, seed: int = 0, batching: Optional[bool] = None) -> None:
        self._now = 0.0
        #: Heap of ``(time, seq, Event)`` — tuple keys keep comparisons in C.
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._seed = seed
        self._running = False
        self._cancelled_in_heap = 0
        self.events_processed = 0
        self.heap_compactions = 0
        #: Same-timestamp event coalescing (the batched data plane).
        #: ``None`` inherits the process default so the batch-off smoke
        #: path (``repro bench --no-batch``) needs no per-site plumbing.
        self.batching = DEFAULT_BATCHING if batching is None else batching
        #: Open coalesced batches: ``(when, sink) -> item list``.  The
        #: list is aliased by the flush event scheduled at first insert,
        #: so later same-instant items ride along for free.
        self._open_batches: dict = {}
        #: Live telemetry recorder (:mod:`repro.obs.live`), or ``None``.
        #: ``run()`` only pays for telemetry when one is attached.
        self.telemetry = None
        if TRACER.enabled:
            # The most recently built simulator owns the trace clock, so
            # span timestamps are simulated seconds (deterministic per
            # seed), not wall time.
            TRACER.use_clock(lambda: self._now)
        recorder = _default_recorder()
        if recorder is not None:
            recorder.attach(self)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        """The seed this simulator was built with."""
        return self._seed

    def rng_stream(self, name: str) -> random.Random:
        """Return an independent, reproducible random stream.

        The stream is keyed by ``(seed, name)`` so that every component
        drawing randomness (traffic generator, attacker jitter, MAC
        allocator...) is isolated from the others.
        """
        return random.Random(f"{self._seed}/{name}")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        name: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        # Inlined schedule_at: this is the hottest allocation site in the
        # simulator (one call per frame hop), so skip the re-validation.
        when = self._now + delay
        seq = next(self._counter)
        event = Event(time=when, seq=seq, action=action, name=name, sim=self)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_at(
        self,
        when: float,
        action: Callable[[], None],
        name: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute time ``when``."""
        if when < self._now:
            raise ClockError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        seq = next(self._counter)
        event = Event(time=when, seq=seq, action=action, name=name, sim=self)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    # ------------------------------------------------------------------
    # Same-timestamp coalescing (the batched data plane)
    # ------------------------------------------------------------------
    def coalesce(
        self,
        delay: float,
        sink,
        item,
        name: str = "link.carry",
    ) -> None:
        """Append ``item`` to the batch delivered to ``sink`` at ``now+delay``.

        All items coalesced onto the same ``(time, sink)`` pair are handed
        to ``sink.deliver_batch(items)`` by a single flush event, scheduled
        with the sequence number of the batch's *first* item — so a batch
        fires exactly where its first frame would have, and items keep
        their arrival order inside the batch.  Per-item dispatch
        (:meth:`schedule`) remains the fallback when :attr:`batching` is
        off; delivery timestamps are computed identically on both paths.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        key = (when, sink)
        open_batches = self._open_batches
        items = open_batches.get(key)
        if items is not None:
            items.append(item)
            return
        items = [item]
        open_batches[key] = items

        def flush() -> None:
            del open_batches[key]
            PERF.batch_flushes += 1
            PERF.batched_items += len(items)
            sink.deliver_batch(items)

        seq = next(self._counter)
        event = Event(time=when, seq=seq, action=flush, name=name, sim=self)
        heapq.heappush(self._heap, (when, seq, event))

    def coalesce_many(
        self,
        delay: float,
        sink,
        new_items: Sequence,
        name: str = "link.carry",
    ) -> None:
        """Bulk :meth:`coalesce` — one accumulator probe for many items."""
        if not new_items:
            return
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        key = (when, sink)
        open_batches = self._open_batches
        items = open_batches.get(key)
        if items is not None:
            items.extend(new_items)
            return
        items = list(new_items)
        open_batches[key] = items

        def flush() -> None:
            del open_batches[key]
            PERF.batch_flushes += 1
            PERF.batched_items += len(items)
            sink.deliver_batch(items)

        seq = next(self._counter)
        event = Event(time=when, seq=seq, action=flush, name=name, sim=self)
        heapq.heappush(self._heap, (when, seq, event))

    def coalesce_at(
        self,
        when: float,
        sink,
        item,
        name: str = "link.carry",
    ) -> None:
        """Absolute-time :meth:`coalesce` — the envelope flush path.

        Cross-partition frames (:mod:`repro.sim.partition`) arrive with a
        precomputed absolute timestamp; recomputing it as ``now + (when -
        now)`` would reassociate the float arithmetic and could drift a
        ULP from the timestamp the unsharded run produces.  Same batch
        mechanics as :meth:`coalesce`, keyed on the exact ``when``.
        """
        if when < self._now:
            raise ClockError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        key = (when, sink)
        open_batches = self._open_batches
        items = open_batches.get(key)
        if items is not None:
            items.append(item)
            return
        items = [item]
        open_batches[key] = items

        def flush() -> None:
            del open_batches[key]
            PERF.batch_flushes += 1
            PERF.batched_items += len(items)
            sink.deliver_batch(items)

        seq = next(self._counter)
        event = Event(time=when, seq=seq, action=flush, name=name, sim=self)
        heapq.heappush(self._heap, (when, seq, event))

    def call_every(
        self,
        interval: float,
        action: Callable[[], None],
        name: str = "",
        start: Optional[float] = None,
        jitter: Optional[Callable[[], float]] = None,
    ) -> Callable[[], None]:
        """Run ``action`` periodically; returns a canceller callable.

        ``jitter``, when given, is called before each firing and its result
        (seconds, may be negative but clamped at zero) is added to the
        interval.  Used by attackers and traffic sources to avoid lockstep.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        state = {"event": None, "stopped": False}

        def fire() -> None:
            if state["stopped"]:
                return
            action()
            reschedule()

        def reschedule() -> None:
            if state["stopped"]:
                return
            extra = jitter() if jitter is not None else 0.0
            delay = max(0.0, interval + extra)
            state["event"] = self.schedule(delay, fire, name=name)

        def cancel() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                event.cancel()

        first_delay = interval if start is None else max(0.0, start - self._now)
        state["event"] = self.schedule(first_delay, fire, name=name)
        return cancel

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event is still queued."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (order is preserved:
        the heap invariant is rebuilt over the same ``(time, seq)`` keys)."""
        # In-place so aliases held by the run() loop stay valid.
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.heap_compactions += 1

    def _detach(self, event: Event) -> None:
        """Mark ``event`` as no longer queued (it was popped)."""
        event._sim = None
        if event.cancelled:
            self._cancelled_in_heap -= 1

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _fire(self, event: Event) -> None:
        """Dispatch one live event — the single code path for traced and
        untraced dispatch, shared by :meth:`step` and :meth:`run` so
        single-stepped tests produce the same ``sim.event`` spans a full
        run does."""
        if TRACER.enabled and event.name:
            with TRACER.span("sim.event", event=event.name):
                event.action()
        else:
            event.action()

    def step(self) -> bool:
        """Process the next pending event; return ``False`` when idle."""
        heap = self._heap
        while heap:
            when, _seq, event = heapq.heappop(heap)
            self._detach(event)
            if event.cancelled:
                continue
            if when < self._now:
                raise ClockError("event heap yielded an event in the past")
            self._now = when
            self.events_processed += 1
            self._fire(event)
            if self.telemetry is not None:
                self.telemetry.tick(self)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains early, so post-run measurements line up
        across scenarios.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if self.telemetry is not None:
                self._run_instrumented(until, max_events)
            else:
                # One fused peek/pop loop: this dispatches every event in
                # the simulation, so the per-event overhead matters more
                # than the tidier step()-based formulation it replaces.
                heap = self._heap  # safe: _compact() rebuilds it in place
                pop = heapq.heappop
                limit = self.events_processed + max_events
                fire = self._fire
                while heap:
                    when, _seq, event = heap[0]
                    if event.cancelled:
                        pop(heap)
                        event._sim = None
                        self._cancelled_in_heap -= 1
                        continue
                    if until is not None and when > until:
                        break
                    pop(heap)
                    event._sim = None
                    self._now = when
                    self.events_processed += 1
                    fire(event)
                    if self.events_processed > limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; runaway schedule?"
                        )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def _run_instrumented(self, until: Optional[float], max_events: int) -> None:
        """The telemetry twin of run()'s fused loop.

        Kept as a structural mirror (same pop/fire sequence, same clock
        and limit semantics) so fixed-seed runs are byte-identical with
        and without a recorder: ``tick()`` only *reads* simulator state.
        Duplicating the loop keeps the common untelemetered path free of
        the per-event ``tick`` call — the zero-cost guard the bench gate
        enforces.
        """
        heap = self._heap
        pop = heapq.heappop
        limit = self.events_processed + max_events
        fire = self._fire
        telemetry = self.telemetry
        tick = telemetry.tick
        while heap:
            when, _seq, event = heap[0]
            if event.cancelled:
                pop(heap)
                event._sim = None
                self._cancelled_in_heap -= 1
                continue
            if until is not None and when > until:
                break
            pop(heap)
            event._sim = None
            self._now = when
            self.events_processed += 1
            fire(event)
            tick(self)
            if self.events_processed > limit:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway schedule?"
                )
        telemetry.run_end(self)

    def _peek(self) -> Optional[Event]:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            self._detach(heapq.heappop(heap)[2])
        return heap[0][2] if heap else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled_in_heap

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when idle.

        The conservative-lookahead coordinator polls this between windows
        to pick the global safe horizon (:mod:`repro.sim.partition`).
        """
        event = self._peek()
        return event.time if event is not None else None

    def advance_to(self, when: float) -> None:
        """Fire everything due at or before ``when``, then set the clock there.

        External ingestion (the replay engine) drives the clock from
        *trace* timestamps rather than scheduled events; this keeps any
        scheme timers (probe timeouts, periodic sweeps) firing in step
        with the ingested stream.  The common case — nothing pending
        before ``when`` — is a bare clock assignment, no heap traffic.
        """
        if when < self._now:
            raise ClockError(
                f"cannot advance to t={when} before current time t={self._now}"
            )
        nxt = self.next_event_time()
        if nxt is not None and nxt <= when:
            self.run(until=when)
        else:
            self._now = when

    @property
    def heap_depth(self) -> int:
        """Raw heap length, cancelled entries included (telemetry view:
        ``heap_depth - pending()`` is the lazily-deleted backlog)."""
        return len(self._heap)

    def iter_pending(self) -> Iterator[Event]:
        """Yield live queued events in firing order (for diagnostics)."""
        for _when, _seq, event in sorted(self._heap, key=lambda e: (e[0], e[1])):
            if not event.cancelled:
                yield event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending()}, "
            f"processed={self.events_processed})"
        )
