"""Frame capture — the simulator's answer to tcpdump/libpcap.

A :class:`TraceRecorder` is attached wherever frames should be observable
(links, switch ports, host NICs).  Records carry the simulated timestamp,
the capture location, direction, and the raw frame bytes, so a detector
operating on a capture sees exactly what a sniffer on a mirror port would.

Storage is a bounded ring: once ``capacity`` records are held, each new
capture evicts the oldest (like a sniffer's ring buffer) and bumps
:attr:`TraceRecorder.dropped`.  The default capacity (:data:`DEFAULT_CAPACITY`,
256 Ki records) is far above what any scenario in the suite produces, so
captures are effectively complete unless a caller opts into a tighter
bound; pass ``capacity=None`` for a truly unbounded recorder.  Live taps
always see every record regardless of eviction.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, Iterator, NamedTuple, Optional

from repro.perf import PERF

__all__ = ["TraceRecord", "TraceRecorder", "Direction", "DEFAULT_CAPACITY"]

#: Default ring size.  Large enough that every scenario shipped with the
#: repo captures losslessly (the heaviest campaign run records ~10^5
#: frames per switch), small enough to bound a runaway soak test.
DEFAULT_CAPACITY = 1 << 18


class Direction:
    """Direction of a captured frame relative to the capture point."""

    TX = "tx"
    RX = "rx"


class TraceRecord(NamedTuple):
    """One captured frame.

    A named tuple rather than a dataclass: one record is created per
    frame per capture point, so construction cost is on the wire fast
    path, and tuple ``__new__`` runs in C.
    """

    time: float
    location: str
    direction: str
    frame: bytes
    note: str = ""

    def __len__(self) -> int:
        return len(self.frame)


class TraceRecorder:
    """Accumulates :class:`TraceRecord` objects and fans out to live taps.

    Live taps (callables) receive each record as it is captured; detectors
    that need to react in simulated real time subscribe as taps, while
    offline analysis reads :attr:`records` afterwards.

    Parameters
    ----------
    capacity:
        Maximum records retained.  When full, the *oldest* record is
        evicted to admit the new one (ring-buffer semantics) and
        :attr:`dropped` is incremented.  ``None`` disables the bound.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._taps: list[Callable[[TraceRecord], None]] = []
        self._capacity = capacity
        self.dropped = 0

    @property
    def capacity(self) -> Optional[int]:
        """The configured ring size (``None`` means unbounded)."""
        return self._capacity

    def tap(self, callback: Callable[[TraceRecord], None]) -> Callable[[], None]:
        """Subscribe a live callback; returns an unsubscribe callable."""
        self._taps.append(callback)

        def unsubscribe() -> None:
            if callback in self._taps:
                self._taps.remove(callback)

        return unsubscribe

    def record(
        self,
        time: float,
        location: str,
        direction: str,
        frame: bytes,
        note: str = "",
    ) -> TraceRecord:
        """Capture one frame and notify taps."""
        rec = TraceRecord(time, location, direction, frame, note)
        records = self.records
        maxlen = records.maxlen
        if maxlen is not None and len(records) == maxlen:
            # Deque evicts the oldest on append.  The process-wide tally
            # surfaces in `# perf:` lines so a wrapped capture is never
            # mistaken for a complete one.
            self.dropped += 1
            PERF.trace_drops += 1
        records.append(rec)
        if self._taps:
            for tap in list(self._taps):
                tap(rec)
        return rec

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def since(self, index: int) -> Iterator[TraceRecord]:
        """Records from position ``index`` onward (deques don't slice)."""
        it = iter(self.records)
        for _ in range(index):
            next(it, None)
        return it

    def between(self, start: float, end: float) -> Iterable[TraceRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r.time < end]

    def at_location(self, location: str) -> Iterable[TraceRecord]:
        return [r for r in self.records if r.location == location]

    def total_bytes(self) -> int:
        """Sum of captured frame sizes (overhead accounting)."""
        return sum(len(r.frame) for r in self.records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
