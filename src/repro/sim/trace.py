"""Frame capture — the simulator's answer to tcpdump/libpcap.

A :class:`TraceRecorder` is attached wherever frames should be observable
(links, switch ports, host NICs).  Records carry the simulated timestamp,
the capture location, direction, and the raw frame bytes, so a detector
operating on a capture sees exactly what a sniffer on a mirror port would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder", "Direction"]


class Direction:
    """Direction of a captured frame relative to the capture point."""

    TX = "tx"
    RX = "rx"


@dataclass(frozen=True)
class TraceRecord:
    """One captured frame."""

    time: float
    location: str
    direction: str
    frame: bytes
    note: str = ""

    def __len__(self) -> int:
        return len(self.frame)


class TraceRecorder:
    """Accumulates :class:`TraceRecord` objects and fans out to live taps.

    Live taps (callables) receive each record as it is captured; detectors
    that need to react in simulated real time subscribe as taps, while
    offline analysis reads :attr:`records` afterwards.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.records: List[TraceRecord] = []
        self._taps: List[Callable[[TraceRecord], None]] = []
        self._capacity = capacity
        self.dropped = 0

    def tap(self, callback: Callable[[TraceRecord], None]) -> Callable[[], None]:
        """Subscribe a live callback; returns an unsubscribe callable."""
        self._taps.append(callback)

        def unsubscribe() -> None:
            if callback in self._taps:
                self._taps.remove(callback)

        return unsubscribe

    def record(
        self,
        time: float,
        location: str,
        direction: str,
        frame: bytes,
        note: str = "",
    ) -> TraceRecord:
        """Capture one frame and notify taps."""
        rec = TraceRecord(
            time=time, location=location, direction=direction, frame=frame, note=note
        )
        if self._capacity is not None and len(self.records) >= self._capacity:
            self.dropped += 1
        else:
            self.records.append(rec)
        for tap in list(self._taps):
            tap(rec)
        return rec

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def between(self, start: float, end: float) -> Iterable[TraceRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r.time < end]

    def at_location(self, location: str) -> Iterable[TraceRecord]:
        return [r for r in self.records if r.location == location]

    def total_bytes(self) -> int:
        """Sum of captured frame sizes (overhead accounting)."""
        return sum(len(r.frame) for r in self.records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
