"""Attack toolkit: ARP poisoning variants, MITM, DoS, and supporting attacks."""

from repro.attacks.arp_poison import POISON_TECHNIQUES, ArpPoisoner, PoisonTarget
from repro.attacks.arp_scan import ArpScan
from repro.attacks.base import Attack
from repro.attacks.dhcp_starvation import DhcpStarvation
from repro.attacks.dos import BlackholeDos
from repro.attacks.flow_exhaustion import FlowTableExhaustion
from repro.attacks.mac_flood import MacFlood
from repro.attacks.mitm import InterceptedPacket, MitmAttack
from repro.attacks.neighbor_exhaustion import NeighborExhaustion
from repro.attacks.port_steal import PortStealing
from repro.attacks.rogue_dhcp import RogueDhcpServer
from repro.attacks.session_hijack import FlowState, SessionHijacker

__all__ = [
    "Attack",
    "ArpPoisoner",
    "PoisonTarget",
    "POISON_TECHNIQUES",
    "ArpScan",
    "MitmAttack",
    "InterceptedPacket",
    "BlackholeDos",
    "MacFlood",
    "FlowTableExhaustion",
    "PortStealing",
    "NeighborExhaustion",
    "DhcpStarvation",
    "RogueDhcpServer",
    "SessionHijacker",
    "FlowState",
]
