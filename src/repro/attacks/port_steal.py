"""Port stealing (ettercap's "port theft" technique).

Instead of lying in ARP payloads, the attacker lies to the *switch*: it
floods frames whose Ethernet **source** is the victim's MAC, so the CAM
table re-learns the victim's address on the attacker's port and unicast
traffic for the victim is delivered to the attacker instead.  Between
bursts the attacker ARPs for the victim to hand the port back, picks up
what it captured, and steals again.

Relevance to the analysis: port stealing defeats ARP-payload defenses
(nothing in any ARP packet is false — S-ARP/TARP/DAI have nothing to
veto) and is exactly what TARP-ticket replay needs to become a full
interposition.  Port security is the defense that kills it, since the
victim's MAC appearing on a second port is the textbook violation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import AttackError
from repro.net.addresses import MacAddress
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["PortStealing"]


class PortStealing(Attack):
    """Steal the switch port of one or more victim MACs."""

    kind = "port-steal"

    def __init__(
        self,
        attacker: Host,
        victim_macs: List[MacAddress],
        burst: int = 10,
        interval: float = 0.05,
    ) -> None:
        super().__init__(attacker)
        if not victim_macs:
            raise AttackError("need at least one victim MAC")
        if burst < 1 or interval <= 0:
            raise AttackError("burst and interval must be positive")
        self.victim_macs = list(victim_macs)
        self.burst = burst
        self.interval = interval
        self._cancel = None
        self.frames_captured = 0
        self._untap = None

    def _start(self) -> None:
        # Count what lands on our NIC for the stolen MACs.
        def tap(frame: EthernetFrame, raw: bytes) -> None:
            if frame.dst in self.victim_macs:
                self.frames_captured += 1

        self.attacker.frame_taps.append(tap)
        self._untap = lambda: self.attacker.frame_taps.remove(tap)
        self._steal()
        self._cancel = self.attacker.sim.call_every(
            self.interval, self._steal, name=self.kind
        )

    def _stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None
        if self._untap is not None:
            self._untap()
            self._untap = None

    def _steal(self) -> None:
        """One burst of forged-source frames per victim.

        The forged frames are addressed to the attacker's own MAC so the
        switch delivers them straight back (real tools use a dst that
        goes nowhere); only the *source* field does the damage.
        """
        for mac in self.victim_macs:
            for _ in range(self.burst):
                frame = EthernetFrame(
                    dst=self.attacker.mac,
                    src=mac,
                    ethertype=EtherType.EXPERIMENTAL,
                    payload=b"port-steal",
                )
                self.frames_sent += 1
                self.attacker.transmit_frame(frame, origin=f"attack:{self.kind}")
