"""MAC flooding (macof-style CAM exhaustion).

Supporting attack: floods frames with random source MACs until the
switch's CAM fills and unknown traffic is flooded out every port,
degrading the switch to a hub so a passive sniffer sees everything.
The real tool (``macof``) ships ~155 000 frames/minute of small TCP SYNs
with random everything; the defaults mirror that rate.
"""

from __future__ import annotations

from repro.errors import AttackError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.tcp import TcpSegment
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["MacFlood"]


class MacFlood(Attack):
    """Flood random-source frames to exhaust the switch CAM."""

    kind = "mac-flood"

    def __init__(
        self,
        attacker: Host,
        rate_per_second: float = 2500.0,
        burst: int = 50,
    ) -> None:
        super().__init__(attacker)
        if rate_per_second <= 0 or burst < 1:
            raise AttackError("rate and burst must be positive")
        self.rate = rate_per_second
        self.burst = burst
        self._rng = attacker.sim.rng_stream(f"macflood/{attacker.name}")
        self._cancel = None

    def _start(self) -> None:
        interval = self.burst / self.rate
        self._emit_burst()
        self._cancel = self.attacker.sim.call_every(
            interval, self._emit_burst, name=self.kind
        )

    def _stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _emit_burst(self) -> None:
        for _ in range(self.burst):
            self._emit_one()

    def _emit_one(self) -> None:
        src_mac = MacAddress.random(self._rng)
        dst_mac = MacAddress.random(self._rng)
        src_ip = Ipv4Address(self._rng.getrandbits(32))
        dst_ip = Ipv4Address(self._rng.getrandbits(32))
        segment = TcpSegment.syn(
            src_port=self._rng.randrange(1024, 65536),
            dst_port=self._rng.randrange(1024, 65536),
            seq=self._rng.getrandbits(32),
        )
        packet = Ipv4Packet(
            src=src_ip, dst=dst_ip, proto=IpProto.TCP, payload=segment.encode()
        )
        frame = EthernetFrame(
            dst=dst_mac, src=src_mac, ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        self.frames_sent += 1
        self.attacker.transmit_frame(frame, origin=f"attack:{self.kind}")
