"""DHCP starvation (yersinia-style pool exhaustion).

Supporting attack: a stream of DISCOVERs with random client MACs forces
the server to offer (and, in the greedy variant, lease) every address in
its pool, denying service to legitimate clients — and setting the stage
for a rogue DHCP server.  Relevant to the ARP analysis because Dynamic
ARP Inspection trusts DHCP-snooped bindings, so the harness must show
what happens to that trust under DHCP abuse.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AttackError, CodecError
from repro.net.addresses import BROADCAST_IP, BROADCAST_MAC, MacAddress, ZERO_IP
from repro.packets.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
)
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.udp import UdpDatagram
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["DhcpStarvation"]


class DhcpStarvation(Attack):
    """Flood DISCOVERs (and optionally complete leases) under fake MACs.

    ``greedy=True`` also answers OFFERs with REQUESTs so the server
    commits real leases (full starvation); ``greedy=False`` only burns
    the offer-hold window, the lazier variant.
    """

    kind = "dhcp-starvation"

    def __init__(
        self,
        attacker: Host,
        rate_per_second: float = 50.0,
        greedy: bool = True,
    ) -> None:
        super().__init__(attacker)
        if rate_per_second <= 0:
            raise AttackError("rate must be positive")
        self.rate = rate_per_second
        self.greedy = greedy
        self._rng = attacker.sim.rng_stream(f"starve/{attacker.name}")
        self._cancel = None
        self._fake_xids: Dict[int, MacAddress] = {}
        self.leases_captured = 0

    def _start(self) -> None:
        if self.greedy:
            self.attacker.frame_taps.append(self._on_sniffed_frame)
        self._emit_discover()
        self._cancel = self.attacker.sim.call_every(
            1.0 / self.rate, self._emit_discover, name=self.kind
        )

    def _stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None
        if self._on_sniffed_frame in self.attacker.frame_taps:
            self.attacker.frame_taps.remove(self._on_sniffed_frame)

    # ------------------------------------------------------------------
    def _emit_discover(self) -> None:
        fake_mac = MacAddress.random(self._rng)
        xid = self._rng.getrandbits(32)
        self._fake_xids[xid] = fake_mac
        message = DhcpMessage.discover(chaddr=fake_mac, xid=xid)
        self._send(message, src_mac=fake_mac)

    def _on_sniffed_frame(self, frame: EthernetFrame, raw: bytes) -> None:
        """Complete the DORA for our fake clients (greedy mode)."""
        if not self.active or frame.ethertype != EtherType.IPV4:
            return
        try:
            packet = Ipv4Packet.decode(frame.payload)
            if packet.proto != IpProto.UDP:
                return
            datagram = UdpDatagram.decode(packet.payload)
            if datagram.dst_port != DHCP_CLIENT_PORT:
                return
            message = DhcpMessage.decode(datagram.payload)
        except CodecError:
            return
        fake_mac = self._fake_xids.get(message.xid)
        if fake_mac is None or message.chaddr != fake_mac:
            return
        if message.message_type == DhcpMessageType.OFFER and message.server_id:
            request = DhcpMessage.request(
                chaddr=fake_mac,
                xid=message.xid,
                requested=message.yiaddr,
                server_id=message.server_id,
            )
            self._send(request, src_mac=fake_mac)
        elif message.message_type == DhcpMessageType.ACK:
            self.leases_captured += 1
            del self._fake_xids[message.xid]

    def _send(self, message: DhcpMessage, src_mac: MacAddress) -> None:
        datagram = UdpDatagram(
            src_port=DHCP_CLIENT_PORT,
            dst_port=DHCP_SERVER_PORT,
            payload=message.encode(),
        )
        packet = Ipv4Packet(
            src=ZERO_IP, dst=BROADCAST_IP, proto=IpProto.UDP,
            payload=datagram.encode(),
        )
        frame = EthernetFrame(
            dst=BROADCAST_MAC,
            src=src_mac,
            ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        self.frames_sent += 1
        self.attacker.transmit_frame(frame, origin=f"attack:{self.kind}")
