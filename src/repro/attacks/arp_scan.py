"""ARP sweep reconnaissance (netdiscover / ettercap host discovery).

Before poisoning anyone, real tools enumerate the LAN: a burst of ARP
requests walking the whole subnet, harvesting who answers.  The sweep
itself is harmless but extremely loud — a distinctive pre-attack
signature that scan-aware detectors (and the offline analyzer) flag.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AttackError, CodecError
from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["ArpScan"]


class ArpScan(Attack):
    """Sweep the subnet with ARP requests and harvest the replies.

    ``stealth=True`` paces the sweep at ``stealth_interval`` per probe
    (netdiscover's slow mode) instead of a rapid-fire burst, which is
    what rate-based scan detectors trade off against.
    """

    kind = "arp-scan"

    def __init__(
        self,
        attacker: Host,
        rate_per_second: float = 50.0,
        stealth: bool = False,
        stealth_interval: float = 2.0,
    ) -> None:
        super().__init__(attacker)
        if attacker.network is None:
            raise AttackError("scanner needs to know its subnet")
        if rate_per_second <= 0 or stealth_interval <= 0:
            raise AttackError("rates must be positive")
        self.rate = rate_per_second
        self.stealth = stealth
        self.stealth_interval = stealth_interval
        self.discovered: Dict[Ipv4Address, MacAddress] = {}
        self._targets: List[Ipv4Address] = []
        self._cancel = None
        self._untap = None

    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._targets = [
            ip
            for ip in self.attacker.network.hosts()
            if self.attacker.ip is None or ip != self.attacker.ip
        ]
        self.attacker.frame_taps.append(self._on_frame)
        self._untap = lambda: self.attacker.frame_taps.remove(self._on_frame)
        interval = self.stealth_interval if self.stealth else 1.0 / self.rate
        self._probe_next()
        self._cancel = self.attacker.sim.call_every(
            interval, self._probe_next, name=self.kind
        )

    def _stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None
        if self._untap is not None:
            self._untap()
            self._untap = None

    # ------------------------------------------------------------------
    def _probe_next(self) -> None:
        if not self._targets:
            self.stop()
            return
        target = self._targets.pop(0)
        spa = self.attacker.ip if self.attacker.ip is not None else Ipv4Address(0)
        request = ArpPacket.request(sha=self.attacker.mac, spa=spa, tpa=target)
        frame = EthernetFrame(
            dst=BROADCAST_MAC,
            src=self.attacker.mac,
            ethertype=EtherType.ARP,
            payload=request.encode(),
        )
        self.frames_sent += 1
        self.attacker.transmit_frame(frame, origin=f"attack:{self.kind}")

    def _on_frame(self, frame: EthernetFrame, raw: bytes) -> None:
        if frame.ethertype != EtherType.ARP:
            return
        try:
            arp = ArpPacket.decode(frame.payload)
        except CodecError:
            return
        if arp.is_reply and self.attacker.ip is not None and arp.tpa == self.attacker.ip:
            self.discovered[arp.spa] = arp.sha

    @property
    def complete(self) -> bool:
        return self.active is False and not self._targets and self.frames_sent > 0
