"""ARP cache poisoning — every variant the analysis distinguishes.

A :class:`PoisonTarget` says *whose cache* to poison and *which binding*
to corrupt: "make ``victim`` believe ``spoofed_ip`` lives at
``claimed_mac`` (the attacker's NIC, usually)".  Four delivery techniques
are implemented, because defenses differ exactly in which ones they stop:

``reply``
    Periodic forged *unsolicited replies* unicast to the victim.  Works
    against stacks that accept unsolicited replies (or refresh existing
    entries from them); the classic ettercap/arpspoof technique.
``request``
    Periodic forged *requests* whose sender fields carry the lie.  Works
    against stacks that update/create entries from requests (Linux-style)
    — and slips past defenses that only vet replies (Anticap's classic
    blind spot).
``gratuitous``
    Broadcast gratuitous announcements, poisoning every host that honours
    gratuitous ARP at once.
``reactive``
    Listen for the victim's genuine requests and race the true owner's
    reply.  The poisoned reply is *solicited* from the victim's point of
    view, defeating "ignore unsolicited replies" hardening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import AttackError, CodecError
from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["PoisonTarget", "ArpPoisoner", "POISON_TECHNIQUES"]

POISON_TECHNIQUES = ("reply", "request", "gratuitous", "reactive")


@dataclass(frozen=True)
class PoisonTarget:
    """One lie to tell.

    Attributes
    ----------
    victim_ip, victim_mac:
        The host whose cache is being poisoned (MAC needed to unicast the
        forgery; attackers learn it with a genuine ARP beforehand).
    spoofed_ip:
        The IP whose binding is corrupted (the gateway, typically).
    claimed_mac:
        The MAC the victim should wrongly associate with ``spoofed_ip``.
    """

    victim_ip: Ipv4Address
    victim_mac: MacAddress
    spoofed_ip: Ipv4Address
    claimed_mac: MacAddress


class ArpPoisoner(Attack):
    """Sends forged ARP traffic according to one of the four techniques."""

    def __init__(
        self,
        attacker: Host,
        targets: List[PoisonTarget],
        technique: str = "reply",
        interval: float = 1.0,
        jitter_fraction: float = 0.1,
    ) -> None:
        super().__init__(attacker)
        if technique not in POISON_TECHNIQUES:
            raise AttackError(
                f"unknown technique {technique!r}; pick one of {POISON_TECHNIQUES}"
            )
        if not targets:
            raise AttackError("need at least one poison target")
        if interval <= 0:
            raise AttackError(f"interval must be positive, got {interval}")
        self.kind = f"arp-poison/{technique}"
        self.targets = list(targets)
        self.technique = technique
        self.interval = interval
        self._rng = attacker.sim.rng_stream(f"poison/{attacker.name}")
        self._jitter_fraction = jitter_fraction
        self._cancel = None
        self._untap = None
        self.races_won = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _start(self) -> None:
        if self.technique == "reactive":
            self.attacker.frame_taps.append(self._on_sniffed_frame)
            self._untap = lambda: self.attacker.frame_taps.remove(
                self._on_sniffed_frame
            )
            self.attacker.promiscuous = True
            return
        self._volley()  # poison immediately, then keep refreshing
        self._cancel = self.attacker.sim.call_every(
            self.interval,
            self._volley,
            name=self.kind,
            jitter=lambda: self._rng.uniform(
                -self._jitter_fraction, self._jitter_fraction
            )
            * self.interval,
        )

    def _stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None
        if self._untap is not None:
            self._untap()
            self._untap = None

    # ------------------------------------------------------------------
    # Techniques
    # ------------------------------------------------------------------
    def _volley(self) -> None:
        for target in self.targets:
            if self.technique == "reply":
                self._send_forged_reply(target)
            elif self.technique == "request":
                self._send_forged_request(target)
            elif self.technique == "gratuitous":
                self._send_gratuitous(target)

    def _send_forged_reply(self, target: PoisonTarget) -> None:
        arp = ArpPacket.reply(
            sha=target.claimed_mac,
            spa=target.spoofed_ip,
            tha=target.victim_mac,
            tpa=target.victim_ip,
        )
        self._inject(arp, dst_mac=target.victim_mac)

    def _send_forged_request(self, target: PoisonTarget) -> None:
        # A request whose *sender* fields are the lie.  Asking about the
        # victim's own address maximizes the chance of a cache update.
        arp = ArpPacket.request(
            sha=target.claimed_mac,
            spa=target.spoofed_ip,
            tpa=target.victim_ip,
        )
        self._inject(arp, dst_mac=target.victim_mac)

    def _send_gratuitous(self, target: PoisonTarget) -> None:
        arp = ArpPacket.gratuitous(
            sha=target.claimed_mac, spa=target.spoofed_ip, as_reply=True
        )
        self._inject(arp, dst_mac=BROADCAST_MAC)

    def _on_sniffed_frame(self, frame: EthernetFrame, raw: bytes) -> None:
        if not self.active or frame.ethertype != EtherType.ARP:
            return
        if frame.src == self.attacker.mac:
            return  # our own traffic
        try:
            arp = ArpPacket.decode(frame.payload)
        except CodecError:
            return
        if not arp.is_request or arp.is_gratuitous:
            return
        for target in self.targets:
            if arp.tpa == target.spoofed_ip and arp.spa == target.victim_ip:
                # The victim just asked who-has the spoofed IP: answer
                # first.  Zero processing delay models a tool that wins
                # the race against the (farther/slower) true owner.
                forged = ArpPacket.reply(
                    sha=target.claimed_mac,
                    spa=target.spoofed_ip,
                    tha=arp.sha,
                    tpa=arp.spa,
                )
                self._inject(forged, dst_mac=arp.sha)
                self.races_won += 1
                # Insist: a duplicate moments later overwrites the true
                # owner's reply on stacks that refresh from late replies,
                # so losing the first race is not fatal (real tools spam).
                self.attacker.sim.schedule(
                    0.005,
                    lambda f=forged, d=arp.sha: self.active and self._inject(f, d),
                    name=f"{self.kind}.insist",
                )

    # ------------------------------------------------------------------
    def _inject(self, arp: ArpPacket, dst_mac: MacAddress) -> None:
        frame = EthernetFrame(
            dst=dst_mac,
            src=self.attacker.mac,
            ethertype=EtherType.ARP,
            payload=arp.encode(),
        )
        self.frames_sent += 1
        # The provenance origin is what scheme-alert audit trails resolve
        # back to: "this alert was caused by attack:arp-poison/reply".
        self.attacker.transmit_frame(frame, origin=f"attack:{self.kind}")
