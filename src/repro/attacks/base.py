"""Common machinery for attack tools.

Every attack is a start/stoppable component bound to an attacker host.
The experiment harness uses :attr:`Attack.active_intervals` as ground
truth when classifying scheme alerts into true/false positives.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.errors import AttackError
from repro.stack.host import Host

__all__ = ["Attack"]


class Attack(ABC):
    """Base class: lifecycle, timing ground truth, frame accounting."""

    #: Short machine-readable identifier, e.g. ``"arp-poison/reply"``.
    kind: str = "attack"

    def __init__(self, attacker: Host) -> None:
        self.attacker = attacker
        self.active = False
        self.frames_sent = 0
        self._intervals: List[Tuple[float, Optional[float]]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.active:
            raise AttackError(f"{self.kind} already running")
        self.active = True
        self._intervals.append((self.attacker.sim.now, None))
        self._start()

    def stop(self) -> None:
        if not self.active:
            return
        self.active = False
        begin, _ = self._intervals[-1]
        self._intervals[-1] = (begin, self.attacker.sim.now)
        self._stop()

    @abstractmethod
    def _start(self) -> None:
        """Begin emitting attack traffic."""

    @abstractmethod
    def _stop(self) -> None:
        """Cease emitting attack traffic."""

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    @property
    def active_intervals(self) -> List[Tuple[float, float]]:
        """Closed intervals during which the attack was running."""
        now = self.attacker.sim.now
        return [(b, e if e is not None else now) for b, e in self._intervals]

    def was_active_at(self, time: float, slack: float = 0.0) -> bool:
        """True when ``time`` falls inside (or within ``slack`` after) a run."""
        return any(b <= time <= e + slack for b, e in self.active_intervals)

    def __repr__(self) -> str:
        state = "active" if self.active else "idle"
        return f"{type(self).__name__}({self.kind}, {state}, frames={self.frames_sent})"
