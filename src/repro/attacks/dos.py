"""Denial of service through ARP poisoning (blackholing).

Instead of interposing, the attacker binds the target IP (typically the
gateway) to a nonexistent MAC in the victims' caches: their frames sail
into the void and connectivity dies.  The analysis separates this from
MITM because some schemes detect interposition (a live rogue MAC answers
probes) but are blind to blackholes (nothing answers at all).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.net.addresses import Ipv4Address, MacAddress
from repro.attacks.arp_poison import ArpPoisoner, PoisonTarget
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["BlackholeDos"]


class BlackholeDos(Attack):
    """Poison victims so ``target_ip`` resolves to a dead MAC."""

    kind = "dos/blackhole"

    def __init__(
        self,
        attacker: Host,
        victims: List[Host],
        target_ip: Ipv4Address,
        dead_mac: Optional[MacAddress] = None,
        technique: str = "reply",
        interval: float = 1.0,
    ) -> None:
        super().__init__(attacker)
        rng = attacker.sim.rng_stream(f"dos/{attacker.name}")
        self.dead_mac = dead_mac or MacAddress.random(rng)
        self.kind = f"dos/blackhole/{technique}"
        targets = []
        for victim in victims:
            if victim.ip is None:
                continue
            targets.append(
                PoisonTarget(
                    victim_ip=victim.ip,
                    victim_mac=victim.mac,
                    spoofed_ip=target_ip,
                    claimed_mac=self.dead_mac,
                )
            )
        self.poisoner = ArpPoisoner(
            attacker, targets, technique=technique, interval=interval
        )

    def _start(self) -> None:
        self.poisoner.start()

    def _stop(self) -> None:
        self.poisoner.stop()

    @property
    def frames_sent(self) -> int:  # type: ignore[override]
        return self.poisoner.frames_sent

    @frames_sent.setter
    def frames_sent(self, value: int) -> None:
        # Attack.__init__ assigns 0; delegate the real count to the poisoner.
        pass
