"""A rogue DHCP server (gateway-spoofing follow-up to starvation).

Once the legitimate server's pool is starved (or simply by answering
faster), the attacker leases addresses that name *itself* as the default
gateway — every off-link flow from the duped clients then transits the
attacker.  This is the DHCP-based cousin of ARP-poisoning MITM and the
canonical thing DHCP snooping's trusted-port model prevents.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AttackError
from repro.net.addresses import Ipv4Address, Ipv4Network
from repro.stack.dhcp_server import DhcpServer
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["RogueDhcpServer"]


class RogueDhcpServer(Attack):
    """Run a DHCP server on the attacker that hands out a poisoned gateway.

    The advertised router defaults to the attacker's own IP; clients that
    bind to a rogue lease will ARP for the attacker when they want the
    gateway, no cache poisoning needed.
    """

    kind = "rogue-dhcp"

    def __init__(
        self,
        attacker: Host,
        network: Ipv4Network,
        pool_start: int,
        pool_end: int,
        rogue_router: Optional[Ipv4Address] = None,
        lease_time: float = 600.0,
    ) -> None:
        super().__init__(attacker)
        if attacker.ip is None:
            raise AttackError("rogue DHCP attacker needs an IP")
        self.network = network
        self.pool_start = pool_start
        self.pool_end = pool_end
        self.rogue_router = rogue_router or attacker.ip
        self.lease_time = lease_time
        self.server: Optional[DhcpServer] = None

    def _start(self) -> None:
        self.server = DhcpServer(
            host=self.attacker,
            network=self.network,
            pool_start=self.pool_start,
            pool_end=self.pool_end,
            router=self.rogue_router,
            lease_time=self.lease_time,
        )
        # The attacker will happily forward its victims' traffic onward so
        # the dupe goes unnoticed.
        self.attacker.ip_forward = True

    def _stop(self) -> None:
        if self.server is not None:
            self.attacker.udp_unbind(67)
            self.server = None

    @property
    def victims_captured(self) -> int:
        return self.server.acks_sent if self.server is not None else 0
