"""Full-duplex man-in-the-middle built on ARP poisoning.

The attacker poisons both parties (classically: a user host and the
gateway), turns on IP forwarding so the session keeps flowing, and taps —
optionally tampers with — everything relayed.  Interception statistics
from this class feed the reproduced Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.net.addresses import Ipv4Address
from repro.packets.ipv4 import Ipv4Packet
from repro.attacks.arp_poison import ArpPoisoner, PoisonTarget
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["InterceptedPacket", "MitmAttack"]


@dataclass(frozen=True)
class InterceptedPacket:
    """One relayed datagram, as seen (and possibly altered) in transit."""

    time: float
    src: Ipv4Address
    dst: Ipv4Address
    proto: int
    length: int
    tampered: bool


class MitmAttack(Attack):
    """Poison ``victim_a`` <-> ``victim_b`` and relay their traffic.

    Parameters
    ----------
    attacker:
        The attacking host (forwarding is enabled while active).
    victim_a, victim_b:
        The two endpoints to interpose between.  ``victim_b`` is usually
        the gateway.
    technique, interval:
        Passed through to the underlying :class:`ArpPoisoner`.
    tamper:
        Optional hook: receives each relayed :class:`Ipv4Packet`; return a
        replacement packet to tamper, or ``None`` to pass through intact.
    """

    kind = "mitm"

    def __init__(
        self,
        attacker: Host,
        victim_a: Host,
        victim_b: Host,
        technique: str = "reply",
        interval: float = 1.0,
        tamper: Optional[Callable[[Ipv4Packet], Optional[Ipv4Packet]]] = None,
    ) -> None:
        super().__init__(attacker)
        if victim_a.ip is None or victim_b.ip is None:
            raise ValueError("MITM victims need configured IPs")
        self.victim_a = victim_a
        self.victim_b = victim_b
        self.tamper = tamper
        self.kind = f"mitm/{technique}"
        targets = [
            PoisonTarget(
                victim_ip=victim_a.ip,
                victim_mac=victim_a.mac,
                spoofed_ip=victim_b.ip,
                claimed_mac=attacker.mac,
            ),
            PoisonTarget(
                victim_ip=victim_b.ip,
                victim_mac=victim_b.mac,
                spoofed_ip=victim_a.ip,
                claimed_mac=attacker.mac,
            ),
        ]
        self.poisoner = ArpPoisoner(
            attacker, targets, technique=technique, interval=interval
        )
        self.intercepted: List[InterceptedPacket] = []
        self._saved_forwarding: Optional[bool] = None

    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._saved_forwarding = self.attacker.ip_forward
        self.attacker.ip_forward = True
        self.attacker.forward_taps.append(self._on_forward)
        self.poisoner.start()

    def _stop(self) -> None:
        self.poisoner.stop()
        if self._on_forward in self.attacker.forward_taps:
            self.attacker.forward_taps.remove(self._on_forward)
        if self._saved_forwarding is not None:
            self.attacker.ip_forward = self._saved_forwarding

    # ------------------------------------------------------------------
    def _on_forward(self, packet: Ipv4Packet) -> None:
        pair = {packet.src, packet.dst}
        if pair != {self.victim_a.ip, self.victim_b.ip} and not (
            self.victim_a.ip in pair or self.victim_b.ip in pair
        ):
            return
        replacement = None
        if self.tamper is not None:
            replacement = self.tamper(packet)
        self.intercepted.append(
            InterceptedPacket(
                time=self.attacker.sim.now,
                src=packet.src,
                dst=packet.dst,
                proto=packet.proto,
                length=packet.total_length,
                tampered=replacement is not None,
            )
        )
        return replacement

    # ------------------------------------------------------------------
    @property
    def frames_relayed(self) -> int:
        return len(self.intercepted)

    def intercepted_between(self, start: float, end: float) -> List[InterceptedPacket]:
        return [p for p in self.intercepted if start <= p.time < end]
