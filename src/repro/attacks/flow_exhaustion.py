"""Flow-table exhaustion (the SDN-era cousin of MAC flooding).

Against an SDN-mode switch, every frame with a never-seen source MAC
aimed at a *known* destination forces a packet-in and an exact-match
flow install; a sustained stream of random sources fills the bounded
flow table, driving LRU evictions (``flow_table_evictions_total``) that
churn out legitimate conversations' flows, while the packet-in queue
saturates toward its drop/backpressure limits.  Against a plain
learning switch the same stream degrades gracefully into CAM
exhaustion, i.e. classic MAC flooding.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.base import Attack
from repro.errors import AttackError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.udp import UdpDatagram
from repro.stack.host import Host

__all__ = ["FlowTableExhaustion"]


class FlowTableExhaustion(Attack):
    """Flood random-source frames at a known target to churn the flow table."""

    kind = "flow-table-exhaustion"

    def __init__(
        self,
        attacker: Host,
        target_mac: Optional[MacAddress] = None,
        rate_per_second: float = 500.0,
        burst: int = 25,
    ) -> None:
        """``target_mac=None`` resolves the attacker's gateway at start —
        the destination must already be known to the controller (or CAM)
        or the frames would merely be flooded without installing state.
        """
        super().__init__(attacker)
        if rate_per_second <= 0 or burst < 1:
            raise AttackError("rate and burst must be positive")
        self.rate = rate_per_second
        self.burst = burst
        self.target_mac = target_mac
        self._rng = attacker.sim.rng_stream(f"flowexhaust/{attacker.name}")
        self._cancel = None

    def _start(self) -> None:
        if self.target_mac is not None:
            self._begin(self.target_mac)
            return
        if self.attacker.gateway is None:
            raise AttackError(f"{self.kind}: no target_mac and no gateway to resolve")
        # Resolve the gateway like any host would; bursts begin once the
        # (legitimate) resolution lands.
        self.attacker.resolve(self.attacker.gateway, on_resolved=self._begin)

    def _begin(self, target: MacAddress) -> None:
        if not self.active or self._cancel is not None:
            return  # stopped before resolution finished, or started twice
        self.target_mac = target
        interval = self.burst / self.rate
        self._emit_burst()
        self._cancel = self.attacker.sim.call_every(
            interval, self._emit_burst, name=self.kind
        )

    def _stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _emit_burst(self) -> None:
        for _ in range(self.burst):
            self._emit_one()

    def _emit_one(self) -> None:
        # Every frame: fresh source MAC, fixed known destination — a new
        # exact-match flow per frame, never a hit on an existing one.
        datagram = UdpDatagram(
            src_port=self._rng.randrange(1024, 65536),
            dst_port=self._rng.randrange(1024, 65536),
            payload=b"flowx",
        )
        packet = Ipv4Packet(
            src=Ipv4Address(self._rng.getrandbits(32)),
            dst=Ipv4Address(self._rng.getrandbits(32)),
            proto=IpProto.UDP,
            payload=datagram.encode(),
        )
        frame = EthernetFrame(
            dst=self.target_mac,
            src=MacAddress.random(self._rng),
            ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        self.frames_sent += 1
        self.attacker.transmit_frame(frame, origin=f"attack:{self.kind}")
