"""Neighbor-table exhaustion (ARP cache flooding DoS).

The host-side cousin of CAM flooding: spray gratuitous announcements
for thousands of never-used addresses so the victims' bounded neighbor
tables evict the bindings they actually need (gateway, peers).  Every
eviction forces a fresh resolution — churn an attacker can race — and
on stacks with aggressive tables it is a plain DoS.

Only stacks that create entries from unsolicited traffic are
vulnerable, which is another row in the cache-policy ablation.
"""

from __future__ import annotations

from repro.errors import AttackError
from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.packets.arp import ArpPacket
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.attacks.base import Attack
from repro.stack.host import Host

__all__ = ["NeighborExhaustion"]


class NeighborExhaustion(Attack):
    """Flood gratuitous ARP for random in-subnet addresses."""

    kind = "neighbor-exhaustion"

    def __init__(
        self,
        attacker: Host,
        rate_per_second: float = 200.0,
        burst: int = 20,
        spoof_sources: bool = True,
    ) -> None:
        super().__init__(attacker)
        if attacker.network is None:
            raise AttackError("exhaustion attacker needs to know the subnet")
        if rate_per_second <= 0 or burst < 1:
            raise AttackError("rate and burst must be positive")
        self.rate = rate_per_second
        self.burst = burst
        self.spoof_sources = spoof_sources
        self._rng = attacker.sim.rng_stream(f"exhaust/{attacker.name}")
        self._cancel = None

    def _start(self) -> None:
        self._emit_burst()
        self._cancel = self.attacker.sim.call_every(
            self.burst / self.rate, self._emit_burst, name=self.kind
        )

    def _stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def _emit_burst(self) -> None:
        network = self.attacker.network
        assert network is not None
        for _ in range(self.burst):
            fake_ip = network.host(self._rng.randrange(1, network.num_hosts + 1))
            fake_mac = (
                MacAddress.random(self._rng)
                if self.spoof_sources
                else self.attacker.mac
            )
            announcement = ArpPacket.gratuitous(sha=fake_mac, spa=fake_ip)
            frame = EthernetFrame(
                dst=BROADCAST_MAC,
                src=fake_mac if self.spoof_sources else self.attacker.mac,
                ethertype=EtherType.ARP,
                payload=announcement.encode(),
            )
            self.frames_sent += 1
            self.attacker.transmit_frame(frame, origin=f"attack:{self.kind}")
