"""TCP session hijacking on top of an ARP-poisoning MITM.

The paper's introduction motivates poisoning with exactly this: once in
the middle, the attacker holds live sequence/acknowledgement numbers
for every relayed connection and can speak *as* either endpoint.  Two
classic moves are implemented:

* ``inject(payload)`` — forge a data segment from the server to the
  client with the right seq/ack: the victim's application accepts
  attacker-chosen bytes as genuine server output (and the real stream
  desynchronizes, as in real hijacks);
* ``reset()`` — forge an RST and tear the connection down.

The injector needs no luck: as the MITM relay it *is* the channel, so
the numbers are simply read off the relayed segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import AttackError, CodecError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.ethernet import EtherType, EthernetFrame
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.tcp import TcpFlags, TcpSegment
from repro.attacks.base import Attack
from repro.attacks.mitm import MitmAttack
from repro.stack.host import Host

__all__ = ["FlowState", "SessionHijacker"]


@dataclass
class FlowState:
    """Live sequence state of one observed direction of a flow."""

    src: Ipv4Address
    dst: Ipv4Address
    src_port: int
    dst_port: int
    next_seq: int  # what the src will send next
    last_ack: int  # what the src has acknowledged
    segments_seen: int = 0


class SessionHijacker(Attack):
    """Observe relayed TCP flows through a MITM and forge into them."""

    kind = "session-hijack"

    def __init__(self, mitm: MitmAttack) -> None:
        super().__init__(mitm.attacker)
        self.mitm = mitm
        #: (src, dst, sport, dport) -> FlowState for each direction seen.
        self.flows: Dict[Tuple[Ipv4Address, Ipv4Address, int, int], FlowState] = {}
        self.injections = 0
        self.resets = 0

    # ------------------------------------------------------------------
    def _start(self) -> None:
        self.attacker.forward_taps.append(self._observe)

    def _stop(self) -> None:
        if self._observe in self.attacker.forward_taps:
            self.attacker.forward_taps.remove(self._observe)

    def _observe(self, packet: Ipv4Packet) -> None:
        if packet.proto != IpProto.TCP:
            return None
        try:
            segment = TcpSegment.decode(packet.payload)
        except CodecError:
            return None
        key = (packet.src, packet.dst, segment.src_port, segment.dst_port)
        consumed = len(segment.payload)
        if segment.flags & TcpFlags.SYN or segment.flags & TcpFlags.FIN:
            consumed += 1
        state = self.flows.get(key)
        if state is None:
            state = FlowState(
                src=packet.src,
                dst=packet.dst,
                src_port=segment.src_port,
                dst_port=segment.dst_port,
                next_seq=(segment.seq + consumed) & 0xFFFFFFFF,
                last_ack=segment.ack,
            )
            self.flows[key] = state
        else:
            state.next_seq = (segment.seq + consumed) & 0xFFFFFFFF
            state.last_ack = segment.ack
        state.segments_seen += 1
        return None

    # ------------------------------------------------------------------
    def flow_toward(
        self, victim_ip: Ipv4Address, victim_port: Optional[int] = None
    ) -> Optional[FlowState]:
        """The observed flow whose *destination* is the victim."""
        candidates = [
            state
            for state in self.flows.values()
            if state.dst == victim_ip
            and (victim_port is None or state.dst_port == victim_port)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.segments_seen)

    def _victim_mac(self, victim_ip: Ipv4Address) -> MacAddress:
        mac = self.attacker.arp_cache.get(victim_ip, self.attacker.sim.now)
        if mac is None:
            raise AttackError(f"no MAC known for {victim_ip}; relay first")
        return mac

    def inject(self, victim_ip: Ipv4Address, payload: bytes) -> bool:
        """Forge a data segment into the victim's most active flow.

        Returns False when no flow toward the victim has been observed.
        The forged segment impersonates the true peer at L3 *and* uses
        the exact expected sequence number, so the victim's stack
        delivers the payload to the application.
        """
        state = self.flow_toward(victim_ip)
        if state is None:
            return False
        forged = TcpSegment(
            src_port=state.src_port,
            dst_port=state.dst_port,
            seq=state.next_seq,
            ack=state.last_ack,
            flags=TcpFlags.ACK | TcpFlags.PSH,
            payload=payload,
        )
        self._transmit(state, forged, victim_ip)
        # The victim will advance rcv_nxt past our bytes: the genuine
        # stream is now desynchronized (the real hijack's side effect).
        state.next_seq = (state.next_seq + len(payload)) & 0xFFFFFFFF
        self.injections += 1
        return True

    def reset(self, victim_ip: Ipv4Address) -> bool:
        """Forge an RST that tears the victim's connection down."""
        state = self.flow_toward(victim_ip)
        if state is None:
            return False
        forged = TcpSegment(
            src_port=state.src_port,
            dst_port=state.dst_port,
            seq=state.next_seq,
            ack=state.last_ack,
            flags=TcpFlags.RST,
        )
        self._transmit(state, forged, victim_ip)
        self.resets += 1
        return True

    def _transmit(
        self, state: FlowState, segment: TcpSegment, victim_ip: Ipv4Address
    ) -> None:
        packet = Ipv4Packet(
            src=state.src,  # impersonate the true peer
            dst=victim_ip,
            proto=IpProto.TCP,
            payload=segment.encode(),
        )
        frame = EthernetFrame(
            dst=self._victim_mac(victim_ip),
            src=self.attacker.mac,
            ethertype=EtherType.IPV4,
            payload=packet.encode(),
        )
        self.frames_sent += 1
        self.attacker.transmit_frame(frame, origin=f"attack:{self.kind}")
