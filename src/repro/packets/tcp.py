"""TCP segments (header-accurate, connection logic simplified).

The evaluation needs TCP for two things: realistic victim traffic for the
MITM to intercept, and the SYN-probe used by some active detectors (a TCP
SYN to a claimed binding elicits SYN-ACK or RST from the true IP owner).
Segments carry real headers with checksums; full congestion/retransmission
machinery is intentionally out of scope.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import ChecksumError, CodecError
from repro.net.addresses import Ipv4Address
from repro.packets.base import Reader, internet_checksum
from repro.perf import PERF

__all__ = ["TcpFlags", "TcpSegment"]

_HEADER = struct.Struct("!HHIIBBHHH")
_PSEUDO = struct.Struct("!BBH")


class TcpFlags:
    """TCP flag bits."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20

    @classmethod
    def describe(cls, flags: int) -> str:
        names = []
        for bit, name in (
            (cls.SYN, "SYN"),
            (cls.ACK, "ACK"),
            (cls.FIN, "FIN"),
            (cls.RST, "RST"),
            (cls.PSH, "PSH"),
            (cls.URG, "URG"),
        ):
            if flags & bit:
                names.append(name)
        return "|".join(names) if names else "none"


def _pseudo_header(src: Ipv4Address, dst: Ipv4Address, length: int) -> bytes:
    return src.packed + dst.packed + _PSEUDO.pack(0, 6, length)


@dataclass(frozen=True)
class TcpSegment:
    """A TCP segment with a 20-byte header (no options)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload: bytes = b""
    window: int = 0xFFFF

    def __post_init__(self) -> None:
        for label, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise CodecError(f"tcp: {label} port out of range: {port}")
        if not 0 <= self.seq <= 0xFFFFFFFF or not 0 <= self.ack <= 0xFFFFFFFF:
            raise CodecError("tcp: sequence/ack out of range")
        if not 0 <= self.flags <= 0xFF:
            raise CodecError("tcp: flags out of range")
        if not 0 <= self.window <= 0xFFFF:
            raise CodecError("tcp: window out of range")

    @property
    def length(self) -> int:
        return 20 + len(self.payload)

    def _header(self, checksum: int) -> bytes:
        return _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            5 << 4,  # data offset 5 words
            self.flags,
            self.window,
            checksum,
            0,  # urgent pointer
        )

    def encode(
        self,
        src_ip: Optional[Ipv4Address] = None,
        dst_ip: Optional[Ipv4Address] = None,
    ) -> bytes:
        if src_ip is None or dst_ip is None:
            # The zero-checksum form is a pure function of the (frozen)
            # segment, so it memoizes like the argument-less codecs do;
            # the pseudo-header form depends on the IPs and is rebuilt.
            wire = self.__dict__.get("_wire")
            if wire is None:
                wire = self._header(0) + self.payload
                object.__setattr__(self, "_wire", wire)
                PERF.packet_encodes += 1
            else:
                PERF.encodes_avoided += 1
            return wire
        pseudo = _pseudo_header(src_ip, dst_ip, self.length)
        checksum = internet_checksum(pseudo + self._header(0) + self.payload)
        PERF.packet_encodes += 1
        return self._header(checksum) + self.payload

    @classmethod
    def decode(
        cls,
        data: bytes,
        src_ip: Optional[Ipv4Address] = None,
        dst_ip: Optional[Ipv4Address] = None,
    ) -> "TcpSegment":
        reader = Reader(data, context="tcp")
        src_port = reader.u16()
        dst_port = reader.u16()
        seq = reader.u32()
        ack = reader.u32()
        offset_byte = reader.u8()
        flags = reader.u8()
        window = reader.u16()
        checksum = reader.u16()
        reader.u16()  # urgent pointer
        offset = offset_byte >> 4
        if offset < 5:
            raise CodecError(f"tcp: data offset {offset} below minimum")
        if offset > 5:
            reader.take((offset - 5) * 4)  # skip options
        payload = reader.rest()
        if checksum != 0 and src_ip is not None and dst_ip is not None:
            pseudo = _pseudo_header(src_ip, dst_ip, len(data))
            if internet_checksum(pseudo + data) != 0:
                raise ChecksumError("tcp: checksum mismatch")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=payload,
            window=window,
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def syn(cls, src_port: int, dst_port: int, seq: int) -> "TcpSegment":
        return cls(src_port, dst_port, seq, 0, TcpFlags.SYN)

    @classmethod
    def syn_ack(cls, src_port: int, dst_port: int, seq: int, ack: int) -> "TcpSegment":
        return cls(src_port, dst_port, seq, ack, TcpFlags.SYN | TcpFlags.ACK)

    @classmethod
    def rst(cls, src_port: int, dst_port: int, seq: int) -> "TcpSegment":
        return cls(src_port, dst_port, seq, 0, TcpFlags.RST)

    def summary(self) -> str:
        return (
            f"tcp {self.src_port} -> {self.dst_port} "
            f"[{TcpFlags.describe(self.flags)}] seq={self.seq} len={len(self.payload)}"
        )
