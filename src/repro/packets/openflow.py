"""OpenFlow-1.0-flavored control messages for the simulated SDN plane.

The :mod:`repro.sdn` controller and switch agents speak a deliberately
small dialect of OpenFlow 1.0 over a dedicated control channel: a switch
reports a table miss (or a snoop-worthy packet) with :class:`PacketIn`,
the controller programs forwarding state with :class:`FlowMod`, and
:class:`BarrierRequest`/:class:`BarrierReply` provide the round-trip the
controller uses both for ordering and as a keepalive/RTT probe.

Every message starts with a one-byte type tag so a single buffer can be
dispatched by :func:`decode_message`.  Like the real protocol's
``miss_send_len``, a packet-in carries at most :data:`MISS_SEND_LEN`
bytes of the triggering frame (enough for Ethernet + ARP or a full DHCP
message) plus the original length, keeping control frames inside the
Ethernet payload budget.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import CodecError
from repro.net.addresses import MacAddress
from repro.packets.base import Reader, memoized_encode

__all__ = [
    "OfType",
    "FlowAction",
    "FlowModCommand",
    "PacketInReason",
    "FlowMatch",
    "FlowMod",
    "PacketIn",
    "PacketOut",
    "BarrierRequest",
    "BarrierReply",
    "decode_message",
    "MISS_SEND_LEN",
    "NO_BUFFER",
]

#: Longest prefix of the triggering frame a packet-in carries.
MISS_SEND_LEN = 512
#: ``buffer_id`` meaning "frame not buffered at the switch".
NO_BUFFER = 0xFFFFFFFF


class OfType:
    """Leading type tag of every control message."""

    PACKET_IN = 1
    FLOW_MOD = 2
    BARRIER_REQUEST = 3
    BARRIER_REPLY = 4
    PACKET_OUT = 5


class PacketInReason:
    """Why a switch punted a frame to the controller."""

    NO_MATCH = 0  # flow-table miss
    ACTION = 1    # an installed flow's send-to-controller copy (snooping)


class FlowModCommand:
    """What a :class:`FlowMod` does to the table."""

    ADD = 0
    DELETE = 1


class FlowAction:
    """What happens to a frame that matches (or is released)."""

    OUTPUT = 0  # forward out ``out_port``
    FLOOD = 1   # flood all ports but the ingress
    DROP = 2


_ZERO_MAC_WIRE = b"\x00" * 6

# wildcard bitmap | in_port | src | dst | ethertype
_MATCH = struct.Struct("!BH6s6sH")
_W_IN_PORT = 0x1
_W_SRC = 0x2
_W_DST = 0x4
_W_ETHERTYPE = 0x8

_PACKET_IN = struct.Struct("!BIHHB")
_FLOW_MOD = struct.Struct("!BBBHHHHI")
_BARRIER = struct.Struct("!BI")
_PACKET_OUT = struct.Struct("!BIHBH")


@dataclass(frozen=True)
class FlowMatch:
    """A wildcardable match over ingress port and Ethernet header fields.

    ``None`` in any field is a wildcard.  ARP traffic is distinguished by
    ``ethertype`` — fine-grained ARP policy (the guard's per-sender drop
    rules) pins ``src`` and ``in_port`` as well, which is exactly the
    granularity the POX-style mitigation installs.
    """

    in_port: Optional[int] = None
    src: Optional[MacAddress] = None
    dst: Optional[MacAddress] = None
    ethertype: Optional[int] = None

    def __post_init__(self) -> None:
        if self.in_port is not None and not 0 <= self.in_port <= 0xFFFF:
            raise CodecError(f"flow match in_port {self.in_port} out of range")
        if self.ethertype is not None and not 0 <= self.ethertype <= 0xFFFF:
            raise CodecError(
                f"flow match ethertype 0x{self.ethertype:x} out of range"
            )

    def matches(
        self, in_port: int, src: MacAddress, dst: MacAddress, ethertype: int
    ) -> bool:
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return self.ethertype is None or ethertype == self.ethertype

    def encode(self) -> bytes:
        wildcards = 0
        if self.in_port is None:
            wildcards |= _W_IN_PORT
        if self.src is None:
            wildcards |= _W_SRC
        if self.dst is None:
            wildcards |= _W_DST
        if self.ethertype is None:
            wildcards |= _W_ETHERTYPE
        return _MATCH.pack(
            wildcards,
            self.in_port or 0,
            self.src.packed if self.src is not None else _ZERO_MAC_WIRE,
            self.dst.packed if self.dst is not None else _ZERO_MAC_WIRE,
            self.ethertype or 0,
        )

    @classmethod
    def decode(cls, reader: Reader) -> "FlowMatch":
        wildcards, in_port, src, dst, ethertype = _MATCH.unpack(
            reader.take(_MATCH.size)
        )
        return cls(
            in_port=None if wildcards & _W_IN_PORT else in_port,
            src=None if wildcards & _W_SRC else MacAddress.from_wire(src),
            dst=None if wildcards & _W_DST else MacAddress.from_wire(dst),
            ethertype=None if wildcards & _W_ETHERTYPE else ethertype,
        )


@dataclass(frozen=True)
class PacketIn:
    """Switch → controller: a frame that missed the table (or was snooped).

    ``frame`` is the first :data:`MISS_SEND_LEN` bytes of the triggering
    frame; ``total_len`` preserves the original length.  ``buffer_id``
    identifies the copy parked in the switch's bounded in-flight queue
    (:data:`NO_BUFFER` when the switch could not buffer it).
    """

    buffer_id: int
    in_port: int
    reason: int
    frame: bytes
    total_len: int = -1  # -1: default to len(frame) below

    def __post_init__(self) -> None:
        if not 0 <= self.buffer_id <= 0xFFFFFFFF:
            raise CodecError(f"packet-in buffer_id {self.buffer_id} out of range")
        if not 0 <= self.in_port <= 0xFFFF:
            raise CodecError(f"packet-in in_port {self.in_port} out of range")
        if self.reason not in (PacketInReason.NO_MATCH, PacketInReason.ACTION):
            raise CodecError(f"unknown packet-in reason {self.reason}")
        if len(self.frame) > MISS_SEND_LEN:
            raise CodecError(
                f"packet-in carries {len(self.frame)} bytes > {MISS_SEND_LEN}"
            )
        if self.total_len < 0:
            object.__setattr__(self, "total_len", len(self.frame))
        if self.total_len < len(self.frame) or self.total_len > 0xFFFF:
            raise CodecError(f"packet-in total_len {self.total_len} invalid")

    @classmethod
    def for_frame(
        cls, buffer_id: int, in_port: int, reason: int, data: bytes
    ) -> "PacketIn":
        """Build a packet-in for wire bytes, truncating like miss_send_len."""
        return cls(
            buffer_id=buffer_id,
            in_port=in_port,
            reason=reason,
            frame=data[:MISS_SEND_LEN],
            total_len=len(data),
        )

    @memoized_encode
    def encode(self) -> bytes:
        return (
            _PACKET_IN.pack(
                OfType.PACKET_IN,
                self.buffer_id,
                self.total_len,
                self.in_port,
                self.reason,
            )
            + self.frame
        )

    @classmethod
    def decode(cls, data: bytes) -> "PacketIn":
        reader = Reader(data, context="openflow.packet_in")
        tag, buffer_id, total_len, in_port, reason = _PACKET_IN.unpack(
            reader.take(_PACKET_IN.size)
        )
        if tag != OfType.PACKET_IN:
            raise CodecError(f"not a packet-in (type {tag})")
        return cls(
            buffer_id=buffer_id,
            in_port=in_port,
            reason=reason,
            frame=reader.rest(),
            total_len=total_len,
        )


@dataclass(frozen=True)
class FlowMod:
    """Controller → switch: add or delete a flow entry.

    ``idle_timeout``/``hard_timeout`` are whole simulated seconds
    (OpenFlow's u16 granularity); zero means "never expires".
    ``buffer_id`` releases the parked frame through the new entry's
    action, closing the packet-in round trip.
    """

    match: FlowMatch
    action: int = FlowAction.DROP
    out_port: int = 0
    command: int = FlowModCommand.ADD
    priority: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    buffer_id: int = NO_BUFFER

    def __post_init__(self) -> None:
        if self.command not in (FlowModCommand.ADD, FlowModCommand.DELETE):
            raise CodecError(f"unknown flow-mod command {self.command}")
        if self.action not in (
            FlowAction.OUTPUT,
            FlowAction.FLOOD,
            FlowAction.DROP,
        ):
            raise CodecError(f"unknown flow action {self.action}")
        for label, value, bound in (
            ("out_port", self.out_port, 0xFFFF),
            ("priority", self.priority, 0xFFFF),
            ("idle_timeout", self.idle_timeout, 0xFFFF),
            ("hard_timeout", self.hard_timeout, 0xFFFF),
            ("buffer_id", self.buffer_id, 0xFFFFFFFF),
        ):
            if not 0 <= value <= bound:
                raise CodecError(f"flow-mod {label} {value} out of range")

    @memoized_encode
    def encode(self) -> bytes:
        return (
            _FLOW_MOD.pack(
                OfType.FLOW_MOD,
                self.command,
                self.action,
                self.out_port,
                self.priority,
                self.idle_timeout,
                self.hard_timeout,
                self.buffer_id,
            )
            + self.match.encode()
        )

    @classmethod
    def decode(cls, data: bytes) -> "FlowMod":
        reader = Reader(data, context="openflow.flow_mod")
        (tag, command, action, out_port, priority, idle, hard, buffer_id) = (
            _FLOW_MOD.unpack(reader.take(_FLOW_MOD.size))
        )
        if tag != OfType.FLOW_MOD:
            raise CodecError(f"not a flow-mod (type {tag})")
        return cls(
            match=FlowMatch.decode(reader),
            action=action,
            out_port=out_port,
            command=command,
            priority=priority,
            idle_timeout=idle,
            hard_timeout=hard,
            buffer_id=buffer_id,
        )


@dataclass(frozen=True)
class PacketOut:
    """Controller → switch: apply an action to one frame, installing nothing.

    This is how the controller releases a buffered packet-in without
    programming the table — the guard uses it for every *validated* ARP
    so that the next ARP from the same sender is validated again rather
    than riding a cached flow.  ``frame`` carries the wire bytes when the
    switch could not buffer the original (``buffer_id == NO_BUFFER``).
    """

    buffer_id: int
    in_port: int
    action: int
    out_port: int = 0
    frame: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.buffer_id <= 0xFFFFFFFF:
            raise CodecError(f"packet-out buffer_id {self.buffer_id} out of range")
        if not 0 <= self.in_port <= 0xFFFF:
            raise CodecError(f"packet-out in_port {self.in_port} out of range")
        if not 0 <= self.out_port <= 0xFFFF:
            raise CodecError(f"packet-out out_port {self.out_port} out of range")
        if self.action not in (
            FlowAction.OUTPUT,
            FlowAction.FLOOD,
            FlowAction.DROP,
        ):
            raise CodecError(f"unknown packet-out action {self.action}")

    @memoized_encode
    def encode(self) -> bytes:
        return (
            _PACKET_OUT.pack(
                OfType.PACKET_OUT,
                self.buffer_id,
                self.in_port,
                self.action,
                self.out_port,
            )
            + self.frame
        )

    @classmethod
    def decode(cls, data: bytes) -> "PacketOut":
        reader = Reader(data, context="openflow.packet_out")
        tag, buffer_id, in_port, action, out_port = _PACKET_OUT.unpack(
            reader.take(_PACKET_OUT.size)
        )
        if tag != OfType.PACKET_OUT:
            raise CodecError(f"not a packet-out (type {tag})")
        return cls(
            buffer_id=buffer_id,
            in_port=in_port,
            action=action,
            out_port=out_port,
            frame=reader.rest(),
        )


@dataclass(frozen=True)
class BarrierRequest:
    """Controller → switch ordering fence, doubling as a keepalive probe."""

    xid: int

    def __post_init__(self) -> None:
        if not 0 <= self.xid <= 0xFFFFFFFF:
            raise CodecError(f"barrier xid {self.xid} out of range")

    @memoized_encode
    def encode(self) -> bytes:
        return _BARRIER.pack(OfType.BARRIER_REQUEST, self.xid)

    @classmethod
    def decode(cls, data: bytes) -> "BarrierRequest":
        reader = Reader(data, context="openflow.barrier_request")
        tag, xid = _BARRIER.unpack(reader.take(_BARRIER.size))
        if tag != OfType.BARRIER_REQUEST:
            raise CodecError(f"not a barrier request (type {tag})")
        return cls(xid=xid)


@dataclass(frozen=True)
class BarrierReply:
    """Switch → controller: all prior messages on this channel are applied."""

    xid: int

    def __post_init__(self) -> None:
        if not 0 <= self.xid <= 0xFFFFFFFF:
            raise CodecError(f"barrier xid {self.xid} out of range")

    @memoized_encode
    def encode(self) -> bytes:
        return _BARRIER.pack(OfType.BARRIER_REPLY, self.xid)

    @classmethod
    def decode(cls, data: bytes) -> "BarrierReply":
        reader = Reader(data, context="openflow.barrier_reply")
        tag, xid = _BARRIER.unpack(reader.take(_BARRIER.size))
        if tag != OfType.BARRIER_REPLY:
            raise CodecError(f"not a barrier reply (type {tag})")
        return cls(xid=xid)


OfMessage = Union[PacketIn, FlowMod, PacketOut, BarrierRequest, BarrierReply]

_DECODERS = {
    OfType.PACKET_IN: PacketIn.decode,
    OfType.FLOW_MOD: FlowMod.decode,
    OfType.BARRIER_REQUEST: BarrierRequest.decode,
    OfType.BARRIER_REPLY: BarrierReply.decode,
    OfType.PACKET_OUT: PacketOut.decode,
}


def decode_message(data: bytes) -> OfMessage:
    """Dispatch on the leading type byte; raises CodecError on garbage."""
    if not data:
        raise CodecError("empty OpenFlow message")
    decoder = _DECODERS.get(data[0])
    if decoder is None:
        raise CodecError(f"unknown OpenFlow message type {data[0]}")
    return decoder(data)
