"""IPv4 headers (RFC 791) with real header checksums.

Options and fragmentation are encoded but not reassembled — nothing in the
evaluation fragments — yet the fields are carried so traces look like real
traffic and the checksum actually protects the header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import ChecksumError, CodecError
from repro.net.addresses import Ipv4Address
from repro.packets.base import Reader, internet_checksum, memoized_encode

__all__ = ["IpProto", "Ipv4Packet"]

_HEADER = struct.Struct("!BBHHHBBH4s4s")
_CHECKSUM = struct.Struct("!H")


class IpProto:
    """IP protocol numbers used in the simulation."""

    ICMP = 1
    TCP = 6
    UDP = 17

    @classmethod
    def name(cls, value: int) -> str:
        return {1: "icmp", 6: "tcp", 17: "udp"}.get(value, f"proto{value}")


@dataclass(frozen=True)
class Ipv4Packet:
    """An IPv4 datagram (20-byte header, no options)."""

    src: Ipv4Address
    dst: Ipv4Address
    proto: int
    payload: bytes
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    dont_fragment: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 255:
            raise CodecError(f"TTL out of range: {self.ttl}")
        if not 0 <= self.identification <= 0xFFFF:
            raise CodecError(f"identification out of range: {self.identification}")
        if not 0 <= self.proto <= 255:
            raise CodecError(f"protocol out of range: {self.proto}")

    @property
    def header_length(self) -> int:
        return 20

    @property
    def total_length(self) -> int:
        return self.header_length + len(self.payload)

    @memoized_encode
    def encode(self) -> bytes:
        flags_frag = (0x4000 if self.dont_fragment else 0) & 0xFFFF
        buffer = bytearray(_HEADER.size + len(self.payload))
        _HEADER.pack_into(
            buffer,
            0,
            (4 << 4) | 5,  # version 4, IHL 5 words
            self.dscp << 2,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src.packed,
            self.dst.packed,
        )
        _CHECKSUM.pack_into(buffer, 10, internet_checksum(memoryview(buffer)[:20]))
        buffer[20:] = self.payload
        return bytes(buffer)

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "Ipv4Packet":
        if len(data) < 20:
            raise CodecError("ipv4: header shorter than 20 bytes")
        (
            version_ihl,
            dscp_ecn,
            total_length,
            identification,
            flags_frag,
            ttl,
            proto,
            _checksum,  # verified over the raw header below
            src,
            dst,
        ) = _HEADER.unpack_from(data)
        version = version_ihl >> 4
        ihl = version_ihl & 0x0F
        if version != 4:
            raise CodecError(f"ipv4: version field is {version}")
        if ihl < 5:
            raise CodecError(f"ipv4: IHL {ihl} below minimum")
        reader = Reader(data, context="ipv4")
        reader.take(20)
        if ihl > 5:
            reader.take((ihl - 5) * 4)  # skip options
        if verify_checksum and internet_checksum(data[: ihl * 4]) != 0:
            raise ChecksumError("ipv4: header checksum mismatch")
        if total_length < ihl * 4:
            raise CodecError("ipv4: total length smaller than header")
        payload_length = total_length - ihl * 4
        payload = reader.take(min(payload_length, reader.remaining))
        return cls(
            src=Ipv4Address.from_wire(src),
            dst=Ipv4Address.from_wire(dst),
            proto=proto,
            payload=payload,
            ttl=ttl,
            identification=identification,
            dscp=dscp_ecn >> 2,
            dont_fragment=bool(flags_frag & 0x4000),
        )

    def decremented(self) -> "Ipv4Packet":
        """A copy with TTL reduced by one (what a router does)."""
        if self.ttl == 0:
            raise CodecError("cannot decrement TTL below zero")
        return Ipv4Packet(
            src=self.src,
            dst=self.dst,
            proto=self.proto,
            payload=self.payload,
            ttl=self.ttl - 1,
            identification=self.identification,
            dscp=self.dscp,
            dont_fragment=self.dont_fragment,
        )

    def summary(self) -> str:
        return (
            f"ip {self.src} -> {self.dst} {IpProto.name(self.proto)} "
            f"ttl={self.ttl} len={self.total_length}"
        )
