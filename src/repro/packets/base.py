"""Shared codec machinery: checksums, buffer readers, packet protocol.

All codecs in :mod:`repro.packets` follow one convention: an ``encode()``
method producing the exact wire bytes, and a ``decode(data)`` classmethod
that parses them back, raising :class:`repro.errors.CodecError` subclasses
on malformed input.  ``decode(encode())`` round-trips for every packet —
the property-based test suite enforces this.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import Callable, Protocol, TypeVar, runtime_checkable

from repro.errors import TruncatedPacketError
from repro.perf import PERF

__all__ = ["Wire", "internet_checksum", "Reader", "memoized_encode"]


@runtime_checkable
class Wire(Protocol):
    """Anything that encodes itself to wire bytes."""

    def encode(self) -> bytes:  # pragma: no cover - protocol definition
        ...


@lru_cache(maxsize=512)
def _word_struct(count: int) -> struct.Struct:
    """Precompiled big-endian 16-bit word unpacker for ``count`` words."""
    return struct.Struct(f"!{count}H")


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over ``data``.

    Odd-length buffers are treated as zero-padded on the right, per the
    RFC — without materializing a padded copy of the input: the even
    prefix is summed in place and the trailing byte is folded in as the
    high half of a final word.
    """
    length = len(data)
    even = length & ~1
    total = sum(_word_struct(even // 2).unpack_from(data))
    if length & 1:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


_T = TypeVar("_T")


def memoized_encode(build: Callable[[_T], bytes]) -> Callable[[_T], bytes]:
    """Decorator: cache a frozen packet's serialization on the instance.

    Packet objects are immutable, so their wire bytes are a pure function
    of the instance — a frame built once and transmitted N times (floods,
    retries, periodic announcements) only pays for serialization once.
    The cache rides in the instance ``__dict__`` under ``_wire``, so it is
    invisible to dataclass equality/repr and is not carried across
    ``dataclasses.replace``.
    """

    def encode(self: _T) -> bytes:
        wire = self.__dict__.get("_wire")
        if wire is None:
            wire = build(self)
            object.__setattr__(self, "_wire", wire)
            PERF.packet_encodes += 1
        else:
            PERF.encodes_avoided += 1
        return wire

    encode.__doc__ = build.__doc__
    encode.__name__ = build.__name__
    return encode


class Reader:
    """A bounds-checked cursor over a byte buffer.

    Raises :class:`TruncatedPacketError` instead of silently returning
    short slices, which is how decode bugs were historically masked.
    """

    __slots__ = ("_data", "_pos", "_context")

    def __init__(self, data: bytes, context: str = "packet") -> None:
        self._data = data
        self._pos = 0
        self._context = context

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def take(self, count: int) -> bytes:
        """Consume exactly ``count`` bytes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.remaining < count:
            raise TruncatedPacketError(
                f"{self._context}: needed {count} bytes at offset {self._pos}, "
                f"only {self.remaining} remain"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("!I", self.take(4))[0]

    def rest(self) -> bytes:
        """Consume and return everything left."""
        chunk = self._data[self._pos :]
        self._pos = len(self._data)
        return chunk

    def peek(self, count: int) -> bytes:
        """Look ahead without consuming; may return fewer bytes at the end."""
        return self._data[self._pos : self._pos + count]
