"""Shared codec machinery: checksums, buffer readers, packet protocol.

All codecs in :mod:`repro.packets` follow one convention: an ``encode()``
method producing the exact wire bytes, and a ``decode(data)`` classmethod
that parses them back, raising :class:`repro.errors.CodecError` subclasses
on malformed input.  ``decode(encode())`` round-trips for every packet —
the property-based test suite enforces this.
"""

from __future__ import annotations

import struct
from typing import Protocol, runtime_checkable

from repro.errors import TruncatedPacketError

__all__ = ["Wire", "internet_checksum", "Reader"]


@runtime_checkable
class Wire(Protocol):
    """Anything that encodes itself to wire bytes."""

    def encode(self) -> bytes:  # pragma: no cover - protocol definition
        ...


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over ``data``.

    Odd-length buffers are zero-padded on the right, per the RFC.
    """
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


class Reader:
    """A bounds-checked cursor over a byte buffer.

    Raises :class:`TruncatedPacketError` instead of silently returning
    short slices, which is how decode bugs were historically masked.
    """

    __slots__ = ("_data", "_pos", "_context")

    def __init__(self, data: bytes, context: str = "packet") -> None:
        self._data = data
        self._pos = 0
        self._context = context

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def take(self, count: int) -> bytes:
        """Consume exactly ``count`` bytes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.remaining < count:
            raise TruncatedPacketError(
                f"{self._context}: needed {count} bytes at offset {self._pos}, "
                f"only {self.remaining} remain"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("!I", self.take(4))[0]

    def rest(self) -> bytes:
        """Consume and return everything left."""
        chunk = self._data[self._pos :]
        self._pos = len(self._data)
        return chunk

    def peek(self, count: int) -> bytes:
        """Look ahead without consuming; may return fewer bytes at the end."""
        return self._data[self._pos : self._pos + count]
