"""Ethernet II framing.

Frames are what actually travel over simulated links: every higher-layer
packet is encoded into the payload of an :class:`EthernetFrame`, and every
device (switch, NIC, detector) works from the decoded frame exactly as a
real implementation would work from wire bytes.

The 8-byte preamble and the 4-byte FCS are not carried — like libpcap, the
capture starts at the destination MAC — but minimum-frame padding *is*
applied (payloads are padded to 46 bytes), because real ARP packets arrive
padded and detectors must cope.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CodecError
from repro.net.addresses import MacAddress
from repro.packets.base import Reader

__all__ = ["EtherType", "EthernetFrame", "MIN_PAYLOAD", "MAX_PAYLOAD"]

MIN_PAYLOAD = 46
MAX_PAYLOAD = 1500


class EtherType:
    """EtherType registry constants used by the simulation."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    #: Experimental ethertype used by the TARP ticket-distribution channel.
    EXPERIMENTAL = 0x88B5

    _NAMES = {0x0800: "IPv4", 0x0806: "ARP", 0x8100: "VLAN", 0x88B5: "EXP"}

    @classmethod
    def name(cls, value: int) -> str:
        return cls._NAMES.get(value, f"0x{value:04x}")


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame (dst, src, ethertype, payload)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        if not 0x0600 <= self.ethertype <= 0xFFFF:
            raise CodecError(
                f"ethertype 0x{self.ethertype:04x} is not a valid Ethernet II type"
            )
        if len(self.payload) > MAX_PAYLOAD:
            raise CodecError(
                f"payload of {len(self.payload)} bytes exceeds Ethernet MTU"
            )

    def encode(self) -> bytes:
        """Wire bytes, padded to the 60-byte minimum frame size (sans FCS)."""
        payload = self.payload
        if len(payload) < MIN_PAYLOAD:
            payload = payload + b"\x00" * (MIN_PAYLOAD - len(payload))
        return (
            self.dst.packed
            + self.src.packed
            + struct.pack("!H", self.ethertype)
            + payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        reader = Reader(data, context="ethernet")
        dst = MacAddress(reader.take(6))
        src = MacAddress(reader.take(6))
        ethertype = reader.u16()
        if ethertype < 0x0600:
            raise CodecError(
                "802.3 length field encountered; this simulation speaks Ethernet II"
            )
        return cls(dst=dst, src=src, ethertype=ethertype, payload=reader.rest())

    @property
    def wire_length(self) -> int:
        """Frame size on the wire (header + padded payload)."""
        return 14 + max(len(self.payload), MIN_PAYLOAD)

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast

    def summary(self) -> str:
        """One-line human-readable description (used in traces/logs)."""
        return (
            f"{self.src} -> {self.dst} {EtherType.name(self.ethertype)} "
            f"len={self.wire_length}"
        )
