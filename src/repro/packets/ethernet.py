"""Ethernet II framing.

Frames are what actually travel over simulated links: every higher-layer
packet is encoded into the payload of an :class:`EthernetFrame`, and every
device (switch, NIC, detector) works from the decoded frame exactly as a
real implementation would work from wire bytes.

The 8-byte preamble and the 4-byte FCS are not carried — like libpcap, the
capture starts at the destination MAC — but minimum-frame padding *is*
applied (payloads are padded to 46 bytes), because real ARP packets arrive
padded and detectors must cope.

Two parse paths exist:

* :meth:`EthernetFrame.decode` — eager, materializes the payload; used by
  offline analysis where the whole frame will be inspected anyway.
* :meth:`EthernetFrame.lazy` — returns a :class:`FrameView` that parses
  only the 14-byte header and defers the payload copy until a handler
  actually reads it.  A host dropping a foreign unicast (or a switch
  forwarding by MAC alone) never touches the body.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Union

from repro.errors import CodecError, TruncatedPacketError
from repro.net.addresses import MacAddress
from repro.packets.base import memoized_encode
from repro.perf import PERF

__all__ = ["EtherType", "EthernetFrame", "FrameView", "MIN_PAYLOAD", "MAX_PAYLOAD"]

MIN_PAYLOAD = 46
MAX_PAYLOAD = 1500

_HEADER = struct.Struct("!6s6sH")
_HEADER_LEN = _HEADER.size  # 14


class EtherType:
    """EtherType registry constants used by the simulation."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    #: Experimental ethertype used by the TARP ticket-distribution channel.
    EXPERIMENTAL = 0x88B5

    _NAMES = {0x0800: "IPv4", 0x0806: "ARP", 0x8100: "VLAN", 0x88B5: "EXP"}

    @classmethod
    def name(cls, value: int) -> str:
        return cls._NAMES.get(value, f"0x{value:04x}")


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame (dst, src, ethertype, payload)."""

    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        if not 0x0600 <= self.ethertype <= 0xFFFF:
            raise CodecError(
                f"ethertype 0x{self.ethertype:04x} is not a valid Ethernet II type"
            )
        if len(self.payload) > MAX_PAYLOAD:
            raise CodecError(
                f"payload of {len(self.payload)} bytes exceeds Ethernet MTU"
            )

    @memoized_encode
    def encode(self) -> bytes:
        """Wire bytes, padded to the 60-byte minimum frame size (sans FCS)."""
        payload = self.payload
        if len(payload) < MIN_PAYLOAD:
            payload = payload + b"\x00" * (MIN_PAYLOAD - len(payload))
        return (
            _HEADER.pack(self.dst.packed, self.src.packed, self.ethertype) + payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        if len(data) < _HEADER_LEN:
            raise TruncatedPacketError(
                f"ethernet: needed {_HEADER_LEN} bytes at offset 0, "
                f"only {len(data)} remain"
            )
        dst, src, ethertype = _HEADER.unpack_from(data)
        if ethertype < 0x0600:
            raise CodecError(
                "802.3 length field encountered; this simulation speaks Ethernet II"
            )
        PERF.eager_decodes += 1
        return cls(
            dst=MacAddress.from_wire(dst),
            src=MacAddress.from_wire(src),
            ethertype=ethertype,
            payload=data[_HEADER_LEN:],
        )

    @classmethod
    def lazy(cls, data: bytes) -> "FrameView":
        """A zero-copy lazy view over ``data`` (see :class:`FrameView`)."""
        return FrameView(data)

    @property
    def wire_length(self) -> int:
        """Frame size on the wire (header + padded payload)."""
        return _HEADER_LEN + max(len(self.payload), MIN_PAYLOAD)

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast

    def summary(self) -> str:
        """One-line human-readable description (used in traces/logs)."""
        return (
            f"{self.src} -> {self.dst} {EtherType.name(self.ethertype)} "
            f"len={self.wire_length}"
        )


class FrameView:
    """A lazily decoded Ethernet frame over a received wire buffer.

    The 14-byte header (dst, src, ethertype) is parsed eagerly — that is
    all a forwarding or filtering decision needs — while the payload is
    materialized only on first access.  API-compatible with
    :class:`EthernetFrame` for every read path (attributes, ``summary``,
    ``encode``, equality), so handlers written against decoded frames work
    on views unchanged.
    """

    __slots__ = ("_data", "dst", "src", "ethertype", "_payload")

    def __init__(self, data: bytes) -> None:
        if len(data) < _HEADER_LEN:
            raise TruncatedPacketError(
                f"ethernet: needed {_HEADER_LEN} bytes at offset 0, "
                f"only {len(data)} remain"
            )
        dst, src, ethertype = _HEADER.unpack_from(data)
        if ethertype < 0x0600:
            raise CodecError(
                "802.3 length field encountered; this simulation speaks Ethernet II"
            )
        self._data = data
        self.dst = MacAddress.from_wire(dst)
        self.src = MacAddress.from_wire(src)
        self.ethertype = ethertype
        self._payload: Union[bytes, None] = None
        PERF.lazy_frames += 1

    @property
    def payload(self) -> bytes:
        """The frame body (materialized and cached on first access)."""
        payload = self._payload
        if payload is None:
            payload = self._payload = self._data[_HEADER_LEN:]
            PERF.payload_decodes += 1
        return payload

    @property
    def payload_materialized(self) -> bool:
        """True once :attr:`payload` has been read (introspection/tests)."""
        return self._payload is not None

    def encode(self) -> bytes:
        """The original wire bytes (padded to minimum frame size if short)."""
        data = self._data
        short = _HEADER_LEN + MIN_PAYLOAD - len(data)
        if short > 0:
            return data + b"\x00" * short
        PERF.encodes_avoided += 1
        return data

    def materialize(self) -> EthernetFrame:
        """An eager :class:`EthernetFrame` with the same contents."""
        return EthernetFrame(
            dst=self.dst, src=self.src, ethertype=self.ethertype,
            payload=self.payload,
        )

    @property
    def wire_length(self) -> int:
        return _HEADER_LEN + max(len(self._data) - _HEADER_LEN, MIN_PAYLOAD)

    @property
    def is_broadcast(self) -> bool:
        return self.dst.is_broadcast

    def summary(self) -> str:
        return (
            f"{self.src} -> {self.dst} {EtherType.name(self.ethertype)} "
            f"len={self.wire_length}"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (FrameView, EthernetFrame)):
            return (
                self.dst == other.dst
                and self.src == other.src
                and self.ethertype == other.ethertype
                and self.payload == other.payload
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.dst, self.src, self.ethertype, self.payload))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameView(dst={self.dst}, src={self.src}, "
            f"ethertype=0x{self.ethertype:04x}, len={len(self._data)})"
        )
