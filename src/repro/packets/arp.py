"""ARP (RFC 826) packets, including the authenticated extensions.

The 28-byte Ethernet/IPv4 ARP body is encoded exactly as on the wire.
S-ARP and TARP both extend classic ARP by appending authentication
material after the standard body (S-ARP appends a signed header; TARP
appends a ticket) so unmodified hosts still parse the leading body.  We
model that faithfully with a tagged trailing extension:

``| standard 28-byte ARP | magic(4) | length(2) | extension bytes |``

Minimum-frame zero padding cannot be confused with an extension because
the magic values are non-zero.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import CodecError
from repro.net.addresses import Ipv4Address, MacAddress
from repro.packets.base import Reader, memoized_encode

__all__ = ["ArpOp", "ArpExtension", "ArpPacket", "SARP_MAGIC", "TARP_MAGIC"]

SARP_MAGIC = b"SARP"
TARP_MAGIC = b"TARP"
_KNOWN_MAGICS = (SARP_MAGIC, TARP_MAGIC)

_HTYPE_ETHERNET = 1
_PTYPE_IPV4 = 0x0800

_BODY = struct.Struct("!HHBBH6s4s6s4s")
_EXT_LEN = struct.Struct("!H")


class ArpOp:
    """ARP operation codes."""

    REQUEST = 1
    REPLY = 2

    @classmethod
    def name(cls, value: int) -> str:
        return {1: "request", 2: "reply"}.get(value, f"op{value}")


@dataclass(frozen=True)
class ArpExtension:
    """Authentication material appended after the standard ARP body."""

    magic: bytes
    payload: bytes

    def __post_init__(self) -> None:
        if self.magic not in _KNOWN_MAGICS:
            raise CodecError(f"unknown ARP extension magic {self.magic!r}")
        if len(self.payload) > 0xFFFF:
            raise CodecError("ARP extension payload too large")

    def encode(self) -> bytes:
        return self.magic + _EXT_LEN.pack(len(self.payload)) + self.payload


@dataclass(frozen=True)
class ArpPacket:
    """An Ethernet/IPv4 ARP request or reply.

    ``sha``/``spa`` are the sender hardware/protocol addresses, ``tha``/
    ``tpa`` the target ones — the same abbreviations RFC 826 uses.
    """

    op: int
    sha: MacAddress
    spa: Ipv4Address
    tha: MacAddress
    tpa: Ipv4Address
    extension: Optional[ArpExtension] = None

    def __post_init__(self) -> None:
        if self.op not in (ArpOp.REQUEST, ArpOp.REPLY):
            raise CodecError(f"unsupported ARP op {self.op}")

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    @memoized_encode
    def encode(self) -> bytes:
        body = _BODY.pack(
            _HTYPE_ETHERNET,
            _PTYPE_IPV4,
            6,
            4,
            self.op,
            self.sha.packed,
            self.spa.packed,
            self.tha.packed,
            self.tpa.packed,
        )
        if self.extension is not None:
            body += self.extension.encode()
        return body

    @classmethod
    def decode(cls, data: bytes) -> "ArpPacket":
        reader = Reader(data, context="arp")
        body = reader.take(_BODY.size)
        htype, ptype, hlen, plen, op, sha, spa, tha, tpa = _BODY.unpack(body)
        if htype != _HTYPE_ETHERNET or ptype != _PTYPE_IPV4:
            raise CodecError(
                f"unsupported ARP htype/ptype {htype}/0x{ptype:04x}"
            )
        if hlen != 6 or plen != 4:
            raise CodecError(f"unsupported ARP address lengths {hlen}/{plen}")
        if op not in (ArpOp.REQUEST, ArpOp.REPLY):
            raise CodecError(f"unsupported ARP op {op}")
        extension = cls._decode_extension(reader)
        return cls(
            op=op,
            sha=MacAddress.from_wire(sha),
            spa=Ipv4Address.from_wire(spa),
            tha=MacAddress.from_wire(tha),
            tpa=Ipv4Address.from_wire(tpa),
            extension=extension,
        )

    @staticmethod
    def _decode_extension(reader: Reader) -> Optional[ArpExtension]:
        if reader.remaining < 6:
            return None
        magic = reader.peek(4)
        if magic not in _KNOWN_MAGICS:
            return None  # minimum-frame padding or garbage; classic ARP
        reader.take(4)
        length = reader.u16()
        payload = reader.take(length)
        return ArpExtension(magic=bytes(magic), payload=payload)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    @property
    def is_request(self) -> bool:
        return self.op == ArpOp.REQUEST

    @property
    def is_reply(self) -> bool:
        return self.op == ArpOp.REPLY

    @property
    def is_gratuitous(self) -> bool:
        """Gratuitous ARP: the sender announces its own binding.

        Covers both gratuitous requests and gratuitous replies (spa == tpa).
        """
        return self.spa == self.tpa and not self.spa.is_unspecified

    @property
    def is_probe(self) -> bool:
        """An RFC 5227 address probe (spa == 0.0.0.0 request)."""
        return self.is_request and self.spa.is_unspecified

    def binding(self) -> tuple[Ipv4Address, MacAddress]:
        """The ``(IP, MAC)`` claim this packet asserts about its sender."""
        return (self.spa, self.sha)

    def summary(self) -> str:
        kind = ArpOp.name(self.op)
        if self.is_gratuitous:
            kind = f"gratuitous-{kind}"
        base = f"arp {kind} {self.spa} is-at {self.sha} (asking {self.tpa})"
        if self.extension is not None:
            base += f" +{self.extension.magic.decode()}"
        return base

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def request(
        cls,
        sha: MacAddress,
        spa: Ipv4Address,
        tpa: Ipv4Address,
        extension: Optional[ArpExtension] = None,
    ) -> "ArpPacket":
        """A who-has request for ``tpa`` (tha is zero, per convention)."""
        from repro.net.addresses import ZERO_MAC

        return cls(
            op=ArpOp.REQUEST, sha=sha, spa=spa, tha=ZERO_MAC, tpa=tpa,
            extension=extension,
        )

    @classmethod
    def reply(
        cls,
        sha: MacAddress,
        spa: Ipv4Address,
        tha: MacAddress,
        tpa: Ipv4Address,
        extension: Optional[ArpExtension] = None,
    ) -> "ArpPacket":
        """An is-at reply asserting that ``spa`` is at ``sha``."""
        return cls(
            op=ArpOp.REPLY, sha=sha, spa=spa, tha=tha, tpa=tpa,
            extension=extension,
        )

    @classmethod
    def gratuitous(
        cls,
        sha: MacAddress,
        spa: Ipv4Address,
        as_reply: bool = True,
        extension: Optional[ArpExtension] = None,
    ) -> "ArpPacket":
        """A gratuitous announcement of ``spa`` at ``sha``."""
        from repro.net.addresses import BROADCAST_MAC, ZERO_MAC

        if as_reply:
            return cls(
                op=ArpOp.REPLY, sha=sha, spa=spa, tha=BROADCAST_MAC, tpa=spa,
                extension=extension,
            )
        return cls(
            op=ArpOp.REQUEST, sha=sha, spa=spa, tha=ZERO_MAC, tpa=spa,
            extension=extension,
        )
