"""IEEE 802.1Q VLAN tagging.

A tagged Ethernet frame carries ethertype ``0x8100`` followed by the
16-bit TCI (PCP/DEI/VID) and then the original ethertype + payload.
VLAN segmentation is one of the blunt-but-effective ARP mitigations the
analysis mentions: ARP is a broadcast protocol, so shrinking the
broadcast domain shrinks the blast radius of a poisoner.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CodecError
from repro.packets.ethernet import EtherType, EthernetFrame

__all__ = ["VlanTag", "tag_frame", "untag_frame", "vlan_of"]

MAX_VID = 4094


@dataclass(frozen=True)
class VlanTag:
    """The 802.1Q tag control information."""

    vid: int
    priority: int = 0
    dei: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.vid <= MAX_VID:
            raise CodecError(f"VLAN id out of range: {self.vid}")
        if not 0 <= self.priority <= 7:
            raise CodecError(f"VLAN priority out of range: {self.priority}")

    def encode(self) -> bytes:
        tci = (self.priority << 13) | (int(self.dei) << 12) | self.vid
        return struct.pack("!H", tci)

    @classmethod
    def decode(cls, data: bytes) -> "VlanTag":
        if len(data) < 2:
            raise CodecError("802.1Q: TCI truncated")
        (tci,) = struct.unpack("!H", data[:2])
        vid = tci & 0x0FFF
        if vid == 0:
            raise CodecError("802.1Q: priority-tagged frames (VID 0) unsupported")
        return cls(vid=vid, priority=tci >> 13, dei=bool(tci >> 12 & 1))


def tag_frame(frame: EthernetFrame, vid: int, priority: int = 0) -> EthernetFrame:
    """Wrap ``frame`` in an 802.1Q tag (refuses double-tagging)."""
    if frame.ethertype == EtherType.VLAN:
        raise CodecError("frame is already 802.1Q-tagged")
    tag = VlanTag(vid=vid, priority=priority)
    payload = tag.encode() + struct.pack("!H", frame.ethertype) + frame.payload
    return EthernetFrame(
        dst=frame.dst, src=frame.src, ethertype=EtherType.VLAN, payload=payload
    )


def untag_frame(frame: EthernetFrame) -> tuple[VlanTag, EthernetFrame]:
    """Strip the 802.1Q tag; returns ``(tag, inner frame)``."""
    if frame.ethertype != EtherType.VLAN:
        raise CodecError("frame is not 802.1Q-tagged")
    if len(frame.payload) < 4:
        raise CodecError("802.1Q: header truncated")
    tag = VlanTag.decode(frame.payload[:2])
    (inner_type,) = struct.unpack("!H", frame.payload[2:4])
    inner = EthernetFrame(
        dst=frame.dst,
        src=frame.src,
        ethertype=inner_type,
        payload=frame.payload[4:],
    )
    return tag, inner


def vlan_of(frame: EthernetFrame) -> int | None:
    """The frame's VLAN id, or ``None`` when untagged."""
    if frame.ethertype != EtherType.VLAN:
        return None
    return VlanTag.decode(frame.payload[:2]).vid
