"""DHCP messages (RFC 2131/2132): BOOTP framing plus the option TLVs.

DHCP matters to this reproduction twice over: the DHCP-snooping binding
table is what Dynamic ARP Inspection validates ARP against, and DHCP
starvation / rogue-server attacks are the supporting attacks the defense
schemes must not be confused by.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import CodecError
from repro.net.addresses import Ipv4Address, MacAddress, ZERO_IP
from repro.packets.base import Reader

__all__ = ["DhcpMessageType", "DhcpOption", "DhcpMessage", "DHCP_MAGIC",
           "DHCP_SERVER_PORT", "DHCP_CLIENT_PORT"]

DHCP_MAGIC = b"\x63\x82\x53\x63"
DHCP_SERVER_PORT = 67
DHCP_CLIENT_PORT = 68

_BOOTREQUEST = 1
_BOOTREPLY = 2


class DhcpMessageType:
    """Option 53 message-type values."""

    DISCOVER = 1
    OFFER = 2
    REQUEST = 3
    DECLINE = 4
    ACK = 5
    NAK = 6
    RELEASE = 7
    INFORM = 8

    @classmethod
    def name(cls, value: int) -> str:
        return {
            1: "discover", 2: "offer", 3: "request", 4: "decline",
            5: "ack", 6: "nak", 7: "release", 8: "inform",
        }.get(value, f"type{value}")


class DhcpOption:
    """RFC 2132 option codes used here."""

    PAD = 0
    SUBNET_MASK = 1
    ROUTER = 3
    DNS = 6
    REQUESTED_IP = 50
    LEASE_TIME = 51
    MESSAGE_TYPE = 53
    SERVER_ID = 54
    CLIENT_ID = 61
    END = 255


@dataclass(frozen=True)
class DhcpMessage:
    """One DHCP message (a BOOTP packet with options).

    ``options`` maps option code to raw option bytes; convenience
    properties decode the ones the simulation uses.
    """

    op: int
    xid: int
    chaddr: MacAddress
    ciaddr: Ipv4Address = ZERO_IP
    yiaddr: Ipv4Address = ZERO_IP
    siaddr: Ipv4Address = ZERO_IP
    giaddr: Ipv4Address = ZERO_IP
    flags: int = 0
    secs: int = 0
    options: Dict[int, bytes] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in (_BOOTREQUEST, _BOOTREPLY):
            raise CodecError(f"dhcp: bad op {self.op}")
        if not 0 <= self.xid <= 0xFFFFFFFF:
            raise CodecError("dhcp: xid out of range")

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        head = struct.pack(
            "!BBBBIHH4s4s4s4s",
            self.op,
            1,  # htype ethernet
            6,  # hlen
            0,  # hops
            self.xid,
            self.secs,
            self.flags,
            self.ciaddr.packed,
            self.yiaddr.packed,
            self.siaddr.packed,
            self.giaddr.packed,
        )
        chaddr = self.chaddr.packed + b"\x00" * 10
        sname = b"\x00" * 64
        file_ = b"\x00" * 128
        opts = bytearray(DHCP_MAGIC)
        for code in sorted(self.options):
            value = self.options[code]
            if code in (DhcpOption.PAD, DhcpOption.END):
                raise CodecError("dhcp: PAD/END are framing, not options")
            if len(value) > 255:
                raise CodecError(f"dhcp: option {code} longer than 255 bytes")
            opts.append(code)
            opts.append(len(value))
            opts.extend(value)
        opts.append(DhcpOption.END)
        return head + chaddr + sname + file_ + bytes(opts)

    @classmethod
    def decode(cls, data: bytes) -> "DhcpMessage":
        reader = Reader(data, context="dhcp")
        op = reader.u8()
        htype = reader.u8()
        hlen = reader.u8()
        reader.u8()  # hops
        xid = reader.u32()
        secs = reader.u16()
        flags = reader.u16()
        ciaddr = Ipv4Address(reader.take(4))
        yiaddr = Ipv4Address(reader.take(4))
        siaddr = Ipv4Address(reader.take(4))
        giaddr = Ipv4Address(reader.take(4))
        chaddr_raw = reader.take(16)
        reader.take(64)  # sname
        reader.take(128)  # file
        if htype != 1 or hlen != 6:
            raise CodecError(f"dhcp: unsupported htype/hlen {htype}/{hlen}")
        if reader.take(4) != DHCP_MAGIC:
            raise CodecError("dhcp: missing magic cookie")
        options: Dict[int, bytes] = {}
        while reader.remaining:
            code = reader.u8()
            if code == DhcpOption.END:
                break
            if code == DhcpOption.PAD:
                continue
            length = reader.u8()
            options[code] = reader.take(length)
        return cls(
            op=op,
            xid=xid,
            chaddr=MacAddress(chaddr_raw[:6]),
            ciaddr=ciaddr,
            yiaddr=yiaddr,
            siaddr=siaddr,
            giaddr=giaddr,
            flags=flags,
            secs=secs,
            options=options,
        )

    # ------------------------------------------------------------------
    # Option accessors
    # ------------------------------------------------------------------
    @property
    def message_type(self) -> Optional[int]:
        raw = self.options.get(DhcpOption.MESSAGE_TYPE)
        return raw[0] if raw else None

    @property
    def requested_ip(self) -> Optional[Ipv4Address]:
        raw = self.options.get(DhcpOption.REQUESTED_IP)
        return Ipv4Address(raw) if raw and len(raw) == 4 else None

    @property
    def server_id(self) -> Optional[Ipv4Address]:
        raw = self.options.get(DhcpOption.SERVER_ID)
        return Ipv4Address(raw) if raw and len(raw) == 4 else None

    @property
    def lease_time(self) -> Optional[int]:
        raw = self.options.get(DhcpOption.LEASE_TIME)
        return struct.unpack("!I", raw)[0] if raw and len(raw) == 4 else None

    @property
    def router(self) -> Optional[Ipv4Address]:
        raw = self.options.get(DhcpOption.ROUTER)
        return Ipv4Address(raw[:4]) if raw and len(raw) >= 4 else None

    @property
    def is_request_op(self) -> bool:
        return self.op == _BOOTREQUEST

    @property
    def is_reply_op(self) -> bool:
        return self.op == _BOOTREPLY

    def summary(self) -> str:
        kind = DhcpMessageType.name(self.message_type or 0)
        return f"dhcp {kind} xid=0x{self.xid:08x} chaddr={self.chaddr} yiaddr={self.yiaddr}"

    # ------------------------------------------------------------------
    # Builders — the DORA handshake plus release
    # ------------------------------------------------------------------
    @classmethod
    def discover(cls, chaddr: MacAddress, xid: int) -> "DhcpMessage":
        return cls(
            op=_BOOTREQUEST,
            xid=xid,
            chaddr=chaddr,
            options={DhcpOption.MESSAGE_TYPE: bytes([DhcpMessageType.DISCOVER])},
        )

    @classmethod
    def offer(
        cls,
        chaddr: MacAddress,
        xid: int,
        yiaddr: Ipv4Address,
        server_id: Ipv4Address,
        lease_time: int,
        netmask: Ipv4Address,
        router: Ipv4Address,
    ) -> "DhcpMessage":
        return cls(
            op=_BOOTREPLY,
            xid=xid,
            chaddr=chaddr,
            yiaddr=yiaddr,
            siaddr=server_id,
            options={
                DhcpOption.MESSAGE_TYPE: bytes([DhcpMessageType.OFFER]),
                DhcpOption.SERVER_ID: server_id.packed,
                DhcpOption.LEASE_TIME: struct.pack("!I", lease_time),
                DhcpOption.SUBNET_MASK: netmask.packed,
                DhcpOption.ROUTER: router.packed,
            },
        )

    @classmethod
    def request(
        cls,
        chaddr: MacAddress,
        xid: int,
        requested: Ipv4Address,
        server_id: Ipv4Address,
    ) -> "DhcpMessage":
        return cls(
            op=_BOOTREQUEST,
            xid=xid,
            chaddr=chaddr,
            options={
                DhcpOption.MESSAGE_TYPE: bytes([DhcpMessageType.REQUEST]),
                DhcpOption.REQUESTED_IP: requested.packed,
                DhcpOption.SERVER_ID: server_id.packed,
            },
        )

    @classmethod
    def ack(
        cls,
        chaddr: MacAddress,
        xid: int,
        yiaddr: Ipv4Address,
        server_id: Ipv4Address,
        lease_time: int,
        netmask: Ipv4Address,
        router: Ipv4Address,
    ) -> "DhcpMessage":
        return cls(
            op=_BOOTREPLY,
            xid=xid,
            chaddr=chaddr,
            yiaddr=yiaddr,
            siaddr=server_id,
            options={
                DhcpOption.MESSAGE_TYPE: bytes([DhcpMessageType.ACK]),
                DhcpOption.SERVER_ID: server_id.packed,
                DhcpOption.LEASE_TIME: struct.pack("!I", lease_time),
                DhcpOption.SUBNET_MASK: netmask.packed,
                DhcpOption.ROUTER: router.packed,
            },
        )

    @classmethod
    def nak(
        cls, chaddr: MacAddress, xid: int, server_id: Ipv4Address
    ) -> "DhcpMessage":
        return cls(
            op=_BOOTREPLY,
            xid=xid,
            chaddr=chaddr,
            options={
                DhcpOption.MESSAGE_TYPE: bytes([DhcpMessageType.NAK]),
                DhcpOption.SERVER_ID: server_id.packed,
            },
        )

    @classmethod
    def release(
        cls,
        chaddr: MacAddress,
        xid: int,
        ciaddr: Ipv4Address,
        server_id: Ipv4Address,
    ) -> "DhcpMessage":
        return cls(
            op=_BOOTREQUEST,
            xid=xid,
            chaddr=chaddr,
            ciaddr=ciaddr,
            options={
                DhcpOption.MESSAGE_TYPE: bytes([DhcpMessageType.RELEASE]),
                DhcpOption.SERVER_ID: server_id.packed,
            },
        )
