"""Byte-accurate packet codecs: Ethernet II, ARP, IPv4, UDP, TCP, ICMP, DHCP,
and the OpenFlow-like control messages of :mod:`repro.sdn`."""

from repro.packets.arp import ArpExtension, ArpOp, ArpPacket, SARP_MAGIC, TARP_MAGIC
from repro.packets.base import Reader, Wire, internet_checksum
from repro.packets.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
    DhcpOption,
)
from repro.packets.ethernet import EtherType, EthernetFrame, MAX_PAYLOAD, MIN_PAYLOAD
from repro.packets.icmp import IcmpMessage, IcmpType
from repro.packets.ipv4 import IpProto, Ipv4Packet
from repro.packets.openflow import (
    MISS_SEND_LEN,
    NO_BUFFER,
    BarrierReply,
    BarrierRequest,
    FlowAction,
    FlowMatch,
    FlowMod,
    FlowModCommand,
    OfType,
    PacketIn,
    PacketInReason,
    PacketOut,
    decode_message,
)
from repro.packets.tcp import TcpFlags, TcpSegment
from repro.packets.udp import UdpDatagram
from repro.packets.vlan import VlanTag, tag_frame, untag_frame, vlan_of

__all__ = [
    "ArpExtension",
    "ArpOp",
    "ArpPacket",
    "SARP_MAGIC",
    "TARP_MAGIC",
    "Reader",
    "Wire",
    "internet_checksum",
    "DhcpMessage",
    "DhcpMessageType",
    "DhcpOption",
    "DHCP_CLIENT_PORT",
    "DHCP_SERVER_PORT",
    "EtherType",
    "EthernetFrame",
    "MIN_PAYLOAD",
    "MAX_PAYLOAD",
    "IcmpMessage",
    "IcmpType",
    "IpProto",
    "Ipv4Packet",
    "OfType",
    "FlowAction",
    "FlowModCommand",
    "PacketInReason",
    "FlowMatch",
    "FlowMod",
    "PacketIn",
    "PacketOut",
    "BarrierRequest",
    "BarrierReply",
    "decode_message",
    "MISS_SEND_LEN",
    "NO_BUFFER",
    "TcpFlags",
    "TcpSegment",
    "UdpDatagram",
    "VlanTag",
    "tag_frame",
    "untag_frame",
    "vlan_of",
]
