"""ICMP messages (RFC 792): echo request/reply and destination unreachable.

Echo is the workhorse of both benign traffic and the active-probe
detection scheme (which pings a claimed binding to see who answers).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ChecksumError, CodecError
from repro.packets.base import Reader, internet_checksum, memoized_encode

__all__ = ["IcmpType", "IcmpMessage"]

_HEADER = struct.Struct("!BBHI")


class IcmpType:
    """ICMP type codes used in the simulation."""

    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11

    @classmethod
    def name(cls, value: int) -> str:
        return {
            0: "echo-reply",
            3: "dest-unreachable",
            8: "echo-request",
            11: "time-exceeded",
        }.get(value, f"type{value}")


@dataclass(frozen=True)
class IcmpMessage:
    """A generic ICMP message.

    For echo messages ``rest_of_header`` packs identifier and sequence
    number; builders below handle that.
    """

    icmp_type: int
    code: int
    rest_of_header: int
    payload: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.icmp_type <= 255 or not 0 <= self.code <= 255:
            raise CodecError("icmp: type/code out of range")
        if not 0 <= self.rest_of_header <= 0xFFFFFFFF:
            raise CodecError("icmp: rest-of-header out of range")

    @memoized_encode
    def encode(self) -> bytes:
        header = _HEADER.pack(self.icmp_type, self.code, 0, self.rest_of_header)
        checksum = internet_checksum(header + self.payload)
        header = _HEADER.pack(
            self.icmp_type, self.code, checksum, self.rest_of_header
        )
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "IcmpMessage":
        reader = Reader(data, context="icmp")
        icmp_type = reader.u8()
        code = reader.u8()
        reader.u16()  # checksum, verified over the whole buffer below
        rest = reader.u32()
        payload = reader.rest()
        if verify_checksum and internet_checksum(data) != 0:
            raise ChecksumError("icmp: checksum mismatch")
        return cls(
            icmp_type=icmp_type, code=code, rest_of_header=rest, payload=payload
        )

    # ------------------------------------------------------------------
    # Echo helpers
    # ------------------------------------------------------------------
    @classmethod
    def echo_request(
        cls, identifier: int, sequence: int, payload: bytes = b""
    ) -> "IcmpMessage":
        return cls(
            icmp_type=IcmpType.ECHO_REQUEST,
            code=0,
            rest_of_header=(identifier & 0xFFFF) << 16 | (sequence & 0xFFFF),
            payload=payload,
        )

    @classmethod
    def echo_reply(
        cls, identifier: int, sequence: int, payload: bytes = b""
    ) -> "IcmpMessage":
        return cls(
            icmp_type=IcmpType.ECHO_REPLY,
            code=0,
            rest_of_header=(identifier & 0xFFFF) << 16 | (sequence & 0xFFFF),
            payload=payload,
        )

    @property
    def identifier(self) -> int:
        return self.rest_of_header >> 16 & 0xFFFF

    @property
    def sequence(self) -> int:
        return self.rest_of_header & 0xFFFF

    @property
    def is_echo_request(self) -> bool:
        return self.icmp_type == IcmpType.ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.icmp_type == IcmpType.ECHO_REPLY

    def reply_to(self) -> "IcmpMessage":
        """Build the echo reply matching this echo request."""
        if not self.is_echo_request:
            raise CodecError("reply_to only applies to echo requests")
        return IcmpMessage.echo_reply(self.identifier, self.sequence, self.payload)

    def summary(self) -> str:
        base = f"icmp {IcmpType.name(self.icmp_type)}"
        if self.is_echo_request or self.is_echo_reply:
            base += f" id={self.identifier} seq={self.sequence}"
        return base
