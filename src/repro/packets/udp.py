"""UDP datagrams (RFC 768).

The checksum is computed over the usual IPv4 pseudo-header when the source
and destination IPs are supplied; encoding without them emits a zero
checksum (legal for IPv4 UDP), which is also what the DHCP path uses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import ChecksumError, CodecError
from repro.net.addresses import Ipv4Address
from repro.packets.base import Reader, internet_checksum
from repro.perf import PERF

__all__ = ["UdpDatagram"]

_HEADER = struct.Struct("!HHHH")
_PSEUDO = struct.Struct("!BBH")


def _pseudo_header(src: Ipv4Address, dst: Ipv4Address, length: int) -> bytes:
    return src.packed + dst.packed + _PSEUDO.pack(0, 17, length)


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram: source port, destination port, payload."""

    src_port: int
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for label, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise CodecError(f"udp: {label} port out of range: {port}")

    @property
    def length(self) -> int:
        return 8 + len(self.payload)

    def encode(
        self,
        src_ip: Optional[Ipv4Address] = None,
        dst_ip: Optional[Ipv4Address] = None,
    ) -> bytes:
        if src_ip is None or dst_ip is None:
            # Checksum-less form is a pure function of the frozen datagram.
            wire = self.__dict__.get("_wire")
            if wire is None:
                header = _HEADER.pack(self.src_port, self.dst_port, self.length, 0)
                wire = header + self.payload
                object.__setattr__(self, "_wire", wire)
                PERF.packet_encodes += 1
            else:
                PERF.encodes_avoided += 1
            return wire
        header = _HEADER.pack(self.src_port, self.dst_port, self.length, 0)
        pseudo = _pseudo_header(src_ip, dst_ip, self.length)
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:  # RFC 768: transmitted zero means "no checksum"
            checksum = 0xFFFF
        header = _HEADER.pack(
            self.src_port, self.dst_port, self.length, checksum
        )
        PERF.packet_encodes += 1
        return header + self.payload

    @classmethod
    def decode(
        cls,
        data: bytes,
        src_ip: Optional[Ipv4Address] = None,
        dst_ip: Optional[Ipv4Address] = None,
    ) -> "UdpDatagram":
        reader = Reader(data, context="udp")
        src_port = reader.u16()
        dst_port = reader.u16()
        length = reader.u16()
        checksum = reader.u16()
        if length < 8:
            raise CodecError(f"udp: length field {length} below header size")
        payload = reader.take(min(length - 8, reader.remaining))
        if checksum != 0 and src_ip is not None and dst_ip is not None:
            pseudo = _pseudo_header(src_ip, dst_ip, length)
            if internet_checksum(pseudo + data[: length]) != 0:
                raise ChecksumError("udp: checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port, payload=payload)

    def summary(self) -> str:
        return f"udp {self.src_port} -> {self.dst_port} len={self.length}"
