"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError``, ``KeyError`` from their own code, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class ClockError(SimulationError):
    """An event was scheduled in the past or the clock moved backwards."""


class AddressError(ReproError):
    """A MAC or IPv4 address (or subnet) could not be parsed or is invalid."""


class CodecError(ReproError):
    """A packet could not be encoded to or decoded from bytes."""


class TruncatedPacketError(CodecError):
    """The byte buffer ended before the structure it should contain."""


class ChecksumError(CodecError):
    """A decoded packet carried an incorrect checksum."""


class PcapError(CodecError):
    """A pcap file is malformed (bad magic, wrong linktype, truncated)."""


class ReplayError(ReproError):
    """A replay source spec or engine configuration is invalid."""


class TopologyError(ReproError):
    """Devices/ports were wired together inconsistently."""


class PortError(TopologyError):
    """A port was attached twice, or used while unattached."""


class StackError(ReproError):
    """A host network-stack operation failed."""


class ArpResolutionError(StackError):
    """An ARP resolution gave up after exhausting its retries."""


class DhcpError(StackError):
    """A DHCP transaction failed (no offer, NAK, pool exhausted...)."""


class CryptoError(ReproError):
    """Key management or signature verification failed."""


class SignatureError(CryptoError):
    """A signature did not verify."""


class KeyRegistrationError(CryptoError):
    """A public key could not be registered or looked up."""


class SchemeError(ReproError):
    """A defense scheme was configured or installed incorrectly."""


class AttackError(ReproError):
    """An attack tool was configured incorrectly."""


class ExperimentError(ReproError):
    """An experiment definition is inconsistent or cannot run."""


class CampaignError(ExperimentError):
    """A campaign spec is invalid or the campaign runner misbehaved."""


class ObsError(ReproError):
    """An observability primitive (metric, span, exporter) was misused."""


class FaultError(ReproError):
    """A fault-injection spec could not be parsed or is invalid."""
