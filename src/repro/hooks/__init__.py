"""Fault-isolated hook pipeline — the one extension surface of the data plane.

Before this subsystem every layer grew its own ad-hoc hook list: hosts
kept ``arp_guards``/``frame_taps`` lists, the switch an
``ingress_filters`` list with duplicated traced/untraced dispatch loops,
monitor schemes appended raw callables to the monitor's taps, and every
scheme kept its own ``_teardowns`` list.  A single misbehaving hook
could abort a whole simulation — fatal for long unattended campaigns —
and nothing attributed the failure to the scheme that installed it.

:class:`HookPoint` unifies those surfaces:

* **Deterministic ordering** — hooks run by ``(priority, insertion
  order)``; lower priority first.  Re-running a scenario replays hooks
  in exactly the same order.
* **One-shot removal tokens** — :meth:`HookPoint.add` returns a callable
  that removes exactly the hook it installed, is idempotent, and is safe
  to call from *inside* a dispatch (mutation during iteration never
  skips or double-runs a hook: dispatch walks a snapshot and checks
  liveness per hook).
* **Fault isolation** — an exception from a hook is caught, counted in
  :data:`repro.perf.PERF` (``hook_errors``) and the metrics registry
  (``hook_errors_total{point,scheme}``), attributed to the owning scheme
  (the ``_obs_scheme`` label set by ``Scheme._mark_hook``), and resolved
  per the hook point's policy: :data:`FAIL_OPEN` treats the hook as
  abstaining/allowing, :data:`FAIL_CLOSED` treats it as vetoing.
* **Zero cost when idle** — hot paths guard on the ``hooks`` snapshot
  tuple (``if point.hooks:``), the same cost as the old empty-list
  check, so ``repro bench --check`` stays flat with no schemes
  installed.

Dispatch modes match the calling conventions of the legacy surfaces:
:meth:`~HookPoint.emit` (notify-all: frame taps), :meth:`~HookPoint.verdict`
(first non-``None`` wins: ARP guards), :meth:`~HookPoint.allow`
(all-must-allow: ingress filters) and :meth:`~HookPoint.transform`
(value-rewriting chain: forward taps).  The batched data plane adds
opt-in batch modes — :meth:`~HookPoint.emit_batch` and
:meth:`~HookPoint.transform_batch` — which cost an idle pipeline one
truthiness check per *batch* instead of per frame, unroll per-frame
hooks transparently, and hand the whole batch to hooks registered with
``add(..., batch=True)``.  :class:`TeardownStack` gives
scheme teardown the same isolation guarantees; :class:`Pipeline` groups
the hook points of one device under its node label.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs.registry import REGISTRY
from repro.obs.trace import TRACER
from repro.perf import PERF

__all__ = [
    "FAIL_OPEN",
    "FAIL_CLOSED",
    "Hook",
    "HookPoint",
    "Pipeline",
    "TeardownStack",
    "hook_errors_counter",
    "hook_drops_counter",
]

#: A raising hook abstains/allows — the simulation sees no defense.
FAIL_OPEN = "open"
#: A raising hook vetoes — the frame/packet is dropped.
FAIL_CLOSED = "closed"

_POLICIES = (FAIL_OPEN, FAIL_CLOSED)

#: Label used for hooks whose owner could not be determined.
UNLABELED = "unlabeled"


def hook_errors_counter():
    """The ``hook_errors_total{point,scheme}`` registry counter family."""
    return REGISTRY.counter(
        "hook_errors_total",
        "Hook exceptions isolated by the pipeline, by hook point and owning scheme",
        labels=("point", "scheme"),
    )


def hook_drops_counter():
    """The ``hook_drops_total{point,scheme}`` registry counter family."""
    return REGISTRY.counter(
        "hook_drops_total",
        "Frames/packets vetoed at a hook point, by hook point and vetoing scheme",
        labels=("point", "scheme"),
    )


class Hook:
    """One installed hook: the callable plus its dispatch metadata."""

    __slots__ = ("fn", "priority", "owner", "seq", "active", "batch")

    def __init__(
        self,
        fn: Callable,
        priority: int,
        owner: Optional[str],
        seq: int,
        batch: bool = False,
    ) -> None:
        self.fn = fn
        self.priority = priority
        self.owner = owner
        self.seq = seq
        self.active = True
        #: Batch-aware hooks opt in to receiving a whole item batch in one
        #: call from the ``*_batch`` dispatch modes; per-frame hooks get an
        #: unrolled loop instead.
        self.batch = batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "removed"
        return f"Hook({self.owner or UNLABELED}, prio={self.priority}, {state})"


class HookPoint:
    """An ordered, fault-isolated list of hooks at one extension point.

    Parameters
    ----------
    name:
        The hook point's identity in metrics (``host.arp_guard``,
        ``switch.ingress``...).
    node:
        The owning device's name, used to label trace spans.
    policy:
        :data:`FAIL_OPEN` or :data:`FAIL_CLOSED` — what a raising hook
        means for the frame being judged.
    fallback_label:
        Scheme label for hooks installed without an owner (keeps the
        legacy trace span names: ``arp-guard``, ``ingress-filter``).
    """

    __slots__ = (
        "name",
        "node",
        "policy",
        "fallback_label",
        "_entries",
        "hooks",
        "_seq",
        "has_batch_hooks",
    )

    def __init__(
        self,
        name: str,
        node: Optional[str] = None,
        policy: str = FAIL_OPEN,
        fallback_label: Optional[str] = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown hook policy {policy!r}; use {_POLICIES}")
        self.name = name
        self.node = node
        self.policy = policy
        self.fallback_label = fallback_label or name
        self._entries: List[Hook] = []
        #: Snapshot tuple for hot paths: ``if point.hooks:`` is as cheap
        #: as the old empty-list check and is what dispatch iterates.
        self.hooks: Tuple[Hook, ...] = ()
        #: True when any installed hook opted into batch dispatch
        #: (precomputed so ``*_batch`` modes pick their path in O(1)).
        self.has_batch_hooks = False
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(
        self,
        fn: Callable,
        priority: int = 0,
        owner: Optional[str] = None,
        batch: bool = False,
    ) -> Callable[[], None]:
        """Install ``fn``; returns a one-shot, idempotent removal token.

        ``owner`` attributes faults/drops to a scheme; when omitted the
        ``_obs_scheme`` label applied by ``Scheme._mark_hook`` is used
        (bound methods proxy attribute reads to their function).  Lower
        ``priority`` runs earlier; ties keep insertion order.

        ``batch=True`` opts the hook into batch dispatch: the ``*_batch``
        modes call it once per batch with the whole item sequence instead
        of once per item.  Opting in trades the per-frame interleaving
        guarantee for throughput — see :meth:`emit_batch`.
        """
        if owner is None:
            owner = getattr(fn, "_obs_scheme", None)
        hook = Hook(fn, priority, owner, next(self._seq), batch=batch)
        self._entries.append(hook)
        self._entries.sort(key=lambda h: (h.priority, h.seq))
        self._rebuild()

        def remove() -> None:
            if not hook.active:
                return
            hook.active = False
            try:
                self._entries.remove(hook)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._rebuild()

        return remove

    def _rebuild(self) -> None:
        self.hooks = tuple(self._entries)
        self.has_batch_hooks = any(hook.batch for hook in self._entries)

    # -- list-compatible surface (attack tools, ad-hoc test taps) -------
    def append(self, fn: Callable) -> None:
        """``list.append`` shim: install at default priority, no owner."""
        self.add(fn)

    def remove(self, fn: Callable) -> None:
        """``list.remove`` shim: drop the first entry wrapping ``fn``."""
        for hook in self._entries:
            if hook.fn == fn:
                hook.active = False
                self._entries.remove(hook)
                self._rebuild()
                return
        raise ValueError(f"{self.name}: hook not installed: {fn!r}")

    def clear(self) -> None:
        for hook in self._entries:
            hook.active = False
        self._entries.clear()
        self._rebuild()

    def __contains__(self, fn: object) -> bool:
        return any(hook.fn == fn for hook in self._entries)

    def __iter__(self) -> Iterator[Callable]:
        return iter(hook.fn for hook in self.hooks)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self.hooks)

    def owners(self) -> List[str]:
        """Installed-hook owners, dispatch order (diagnostics)."""
        return [hook.owner or self.fallback_label for hook in self.hooks]

    # ------------------------------------------------------------------
    # Fault accounting
    # ------------------------------------------------------------------
    def _isolate(self, hook: Hook, exc: Exception) -> None:
        """Count and attribute one swallowed hook exception."""
        PERF.hook_errors += 1
        hook_errors_counter().labels(
            point=self.name, scheme=hook.owner or UNLABELED
        ).inc()
        if TRACER.enabled:
            TRACER.instant(
                "hook.error",
                point=self.name,
                node=self.node,
                scheme=hook.owner or UNLABELED,
                error=type(exc).__name__,
                policy=self.policy,
                frame=TRACER.current_frame,
            )

    def _count_drop(self, hook: Hook) -> None:
        hook_drops_counter().labels(
            point=self.name, scheme=hook.owner or self.fallback_label
        ).inc()

    # ------------------------------------------------------------------
    # Dispatch modes
    # ------------------------------------------------------------------
    def emit(self, *args) -> None:
        """Notify every hook; exceptions are isolated regardless of policy."""
        hooks = self.hooks
        if not hooks:
            return
        if TRACER.enabled:
            self._emit_traced(hooks, args)
            return
        for hook in hooks:
            if not hook.active:
                continue
            try:
                hook.fn(*args)
            except Exception as exc:
                self._isolate(hook, exc)

    def _emit_traced(self, hooks: Tuple[Hook, ...], args) -> None:
        tracer = TRACER
        fid = tracer.current_frame
        for hook in hooks:
            if not hook.active:
                continue
            if hook.owner is None:
                # Unlabeled taps (attack sniffers, test probes) are not
                # scheme inspections; call them without a span.
                try:
                    hook.fn(*args)
                except Exception as exc:
                    self._isolate(hook, exc)
                continue
            with tracer.span(
                "scheme.inspect", scheme=hook.owner, node=self.node, frame=fid
            ):
                try:
                    hook.fn(*args)
                except Exception as exc:
                    self._isolate(hook, exc)

    def verdict(self, *args) -> Optional[bool]:
        """First non-``None`` return wins (ARP-guard convention).

        A raising hook abstains under :data:`FAIL_OPEN` and returns the
        drop verdict (``False``) under :data:`FAIL_CLOSED`.
        """
        hooks = self.hooks
        if not hooks:
            return None
        if TRACER.enabled:
            return self._verdict_traced(hooks, args)
        for hook in hooks:
            if not hook.active:
                continue
            try:
                value = hook.fn(*args)
            except Exception as exc:
                self._isolate(hook, exc)
                if self.policy == FAIL_CLOSED:
                    self._count_drop(hook)
                    return False
                continue
            if value is not None:
                if value is False:
                    self._count_drop(hook)
                return value
        return None

    def _verdict_traced(self, hooks: Tuple[Hook, ...], args) -> Optional[bool]:
        tracer = TRACER
        fid = tracer.current_frame
        for hook in hooks:
            if not hook.active:
                continue
            scheme = hook.owner or self.fallback_label
            with tracer.span(
                "scheme.inspect", scheme=scheme, node=self.node, frame=fid
            ) as span:
                try:
                    value = hook.fn(*args)
                except Exception as exc:
                    self._isolate(hook, exc)
                    span.set(verdict="error")
                    if self.policy == FAIL_CLOSED:
                        self._count_drop(hook)
                        return False
                    continue
                if value is not None:
                    span.set(verdict="accept" if value else "drop")
                    if value is False:
                        self._count_drop(hook)
                    return value
        return None

    def allow(self, *args) -> Tuple[bool, Optional[str]]:
        """Every hook must allow (ingress-filter convention).

        Returns ``(allowed, vetoing scheme or None)``.  A raising hook
        allows under :data:`FAIL_OPEN` and vetoes under
        :data:`FAIL_CLOSED`.
        """
        hooks = self.hooks
        if not hooks:
            return (True, None)
        if TRACER.enabled:
            return self._allow_traced(hooks, args)
        for hook in hooks:
            if not hook.active:
                continue
            try:
                ok = hook.fn(*args)
            except Exception as exc:
                self._isolate(hook, exc)
                if self.policy == FAIL_CLOSED:
                    self._count_drop(hook)
                    return (False, hook.owner or self.fallback_label)
                continue
            if not ok:
                self._count_drop(hook)
                return (False, hook.owner or self.fallback_label)
        return (True, None)

    def _allow_traced(
        self, hooks: Tuple[Hook, ...], args
    ) -> Tuple[bool, Optional[str]]:
        tracer = TRACER
        fid = tracer.current_frame
        for hook in hooks:
            if not hook.active:
                continue
            scheme = hook.owner or self.fallback_label
            with tracer.span(
                "scheme.inspect", scheme=scheme, node=self.node, frame=fid
            ) as span:
                try:
                    ok = hook.fn(*args)
                except Exception as exc:
                    self._isolate(hook, exc)
                    span.set(verdict="error")
                    if self.policy == FAIL_CLOSED:
                        self._count_drop(hook)
                        return (False, scheme)
                    continue
                span.set(verdict="allow" if ok else "drop")
            if not ok:
                self._count_drop(hook)
                return (False, scheme)
        return (True, None)

    def transform(self, value, *args):
        """Value-rewriting chain (forward-tap convention).

        Each hook receives the current value (plus ``args``) and may
        return a replacement; ``None`` keeps the value.  A raising hook
        leaves the value unchanged under either policy (there is no
        meaningful "closed" result for a rewrite).
        """
        for hook in self.hooks:
            if not hook.active:
                continue
            try:
                replacement = hook.fn(value, *args)
            except Exception as exc:
                self._isolate(hook, exc)
                continue
            if replacement is not None:
                value = replacement
        return value

    # ------------------------------------------------------------------
    # Batch dispatch modes (the batched data plane)
    # ------------------------------------------------------------------
    def emit_batch(self, items, *args) -> None:
        """Notify hooks of a whole item batch in one dispatch.

        ``items`` is a sequence of argument tuples (one per frame); each
        hook also receives ``*args`` appended.  An idle pipeline costs
        exactly one truthiness check for the entire batch.  When no hook
        opted into batch dispatch, items are unrolled item-outer — each
        item visits every hook before the next item, byte-for-byte the
        per-frame :meth:`emit` order.  Batch-aware hooks
        (``add(..., batch=True)``) are called once with the whole batch
        at their priority position; mixing batch-aware and per-frame
        hooks switches the loop to hook-outer, which is part of what a
        hook opts into.
        """
        hooks = self.hooks
        if not hooks:
            return
        if not self.has_batch_hooks:
            emit = self.emit
            for item in items:
                emit(*item, *args)
            return
        for hook in hooks:
            if not hook.active:
                continue
            try:
                if hook.batch:
                    hook.fn(items, *args)
                else:
                    fn = hook.fn
                    for item in items:
                        fn(*item, *args)
            except Exception as exc:
                self._isolate(hook, exc)

    def transform_batch(self, values, *args):
        """Value-rewriting chain over a batch of values.

        Semantics match running :meth:`transform` on each value in order
        — per-frame hooks see one value at a time, in batch order, with
        identical fault isolation — so the fault injector's per-link
        impairments draw randomness in exactly the wire order whether or
        not frames arrive batched.  Batch-aware hooks receive (and may
        replace) the whole value list in one call.  Returns the (new)
        list of transformed values.
        """
        hooks = self.hooks
        if not hooks:
            return list(values)
        if not self.has_batch_hooks:
            transform = self.transform
            return [transform(value, *args) for value in values]
        out = list(values)
        for hook in hooks:
            if not hook.active:
                continue
            try:
                if hook.batch:
                    replacement = hook.fn(out, *args)
                    if replacement is not None:
                        out = list(replacement)
                else:
                    fn = hook.fn
                    for i, value in enumerate(out):
                        replacement = fn(value, *args)
                        if replacement is not None:
                            out[i] = replacement
            except Exception as exc:
                self._isolate(hook, exc)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HookPoint({self.name!r}, node={self.node!r}, "
            f"policy={self.policy}, hooks={len(self._entries)})"
        )


class Pipeline:
    """The named hook points of one device, under a shared node label.

    ``pipeline.point("host.arp_guard")`` returns the same
    :class:`HookPoint` on every call, creating it on first use;
    :meth:`set_policy` flips every point between fail-open and
    fail-closed at once (an operator knob: fail-closed turns a crashed
    defense into a conservative drop-everything filter instead of
    silently standing down).
    """

    __slots__ = ("node", "policy", "_points")

    def __init__(self, node: Optional[str] = None, policy: str = FAIL_OPEN) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown hook policy {policy!r}; use {_POLICIES}")
        self.node = node
        self.policy = policy
        self._points: Dict[str, HookPoint] = {}

    def point(
        self,
        name: str,
        policy: Optional[str] = None,
        fallback_label: Optional[str] = None,
    ) -> HookPoint:
        existing = self._points.get(name)
        if existing is not None:
            return existing
        created = HookPoint(
            name,
            node=self.node,
            policy=policy or self.policy,
            fallback_label=fallback_label,
        )
        self._points[name] = created
        return created

    def set_policy(self, policy: str) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown hook policy {policy!r}; use {_POLICIES}")
        self.policy = policy
        for point in self._points.values():
            point.policy = policy

    def points(self) -> List[HookPoint]:
        return [self._points[name] for name in sorted(self._points)]

    def __iter__(self) -> Iterator[HookPoint]:
        return iter(self.points())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline(node={self.node!r}, points={sorted(self._points)})"


class TeardownStack:
    """LIFO teardown registry with per-callback fault isolation.

    :meth:`close` runs every registered callback in reverse order even
    when some raise; each failure is counted in ``hook_errors_total``
    under the ``scheme.teardown`` point and attributed to the owning
    scheme.  ``close`` drains the stack, so calling it twice (idempotent
    ``uninstall``) runs nothing the second time.
    """

    __slots__ = ("owner", "_callbacks")

    def __init__(self, owner: Optional[str] = None) -> None:
        self.owner = owner
        self._callbacks: List[Tuple[Callable[[], None], Optional[str]]] = []

    def push(self, callback: Callable[[], None], owner: Optional[str] = None) -> None:
        self._callbacks.append((callback, owner or self.owner))

    def __len__(self) -> int:
        return len(self._callbacks)

    def close(self) -> int:
        """Run all teardowns (reverse order); returns the failure count."""
        callbacks = self._callbacks[::-1]
        self._callbacks.clear()
        failures = 0
        for callback, owner in callbacks:
            try:
                callback()
            except Exception as exc:
                failures += 1
                PERF.hook_errors += 1
                hook_errors_counter().labels(
                    point="scheme.teardown", scheme=owner or UNLABELED
                ).inc()
                if TRACER.enabled:
                    TRACER.instant(
                        "hook.error",
                        point="scheme.teardown",
                        scheme=owner or UNLABELED,
                        error=type(exc).__name__,
                        node=None,
                        policy=FAIL_OPEN,
                        frame=None,
                    )
        return failures

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TeardownStack(owner={self.owner!r}, pending={len(self._callbacks)})"
