"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks the ``wheel`` package needed
for PEP 660 editable wheels (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
